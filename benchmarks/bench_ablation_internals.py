"""Ablation benchmarks for the design choices called out in DESIGN.md.

Two internal choices materially affect performance and are therefore
benchmarked in isolation:

* the **arc-consistency fast path** of the existential 2-pebble game versus
  the generic k-consistency fixpoint (the fast path is what makes the
  Theorem 1 evaluator practical, since bounded-dw classes of width 1 are the
  common case);
* the **forward-checking homomorphism search** versus a naive
  generate-and-test baseline (implemented locally here), which is what keeps
  the natural evaluation algorithm and the core computation usable.
"""

from itertools import product

import pytest

from repro.hom import GeneralizedTGraph, TGraph, find_homomorphism
from repro.pebble.game import _winner_generic, _winner_two_pebbles
from repro.rdf.generators import random_graph
from repro.rdf.namespace import EX
from repro.rdf.terms import Variable
from repro.sparql.mappings import Mapping
from repro.workloads.families import kk_tgraph

EDGE = EX.term("edge").value


def _pebble_inputs(num_vars: int, graph_size: int, seed: int):
    triples = [(f"?v{i}", EDGE, f"?v{i + 1}") for i in range(num_vars - 1)]
    source = GeneralizedTGraph.of(triples, [])
    graph = random_graph(graph_size, graph_size * 4, predicates=("edge",), seed=seed)
    existential = sorted(source.existential_variables(), key=lambda v: v.name)
    domain_values = sorted(graph.domain(), key=str)
    return list(source.triples()), {}, existential, domain_values, graph


@pytest.mark.parametrize("graph_size", [8, 16])
def bench_pebble_fast_path(benchmark, graph_size):
    triples, fixed, existential, domain_values, graph = _pebble_inputs(5, graph_size, seed=1)
    fast = benchmark(
        lambda: _winner_two_pebbles(triples, fixed, existential, domain_values, graph, None)
    )
    generic = _winner_generic(triples, fixed, existential, domain_values, graph, 2, None)
    assert fast == generic


@pytest.mark.parametrize("graph_size", [8, 16])
def bench_pebble_generic_fixpoint(benchmark, graph_size):
    triples, fixed, existential, domain_values, graph = _pebble_inputs(5, graph_size, seed=1)
    benchmark.pedantic(
        lambda: _winner_generic(triples, fixed, existential, domain_values, graph, 2, None),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )


def _naive_homomorphism(source: TGraph, graph) -> bool:
    """Generate-and-test baseline: try every total assignment."""
    variables = sorted(source.variables(), key=lambda v: v.name)
    values = sorted(graph.domain(), key=str)
    for assignment in product(values, repeat=len(variables)):
        mapping = dict(zip(variables, assignment))
        if all(t.substitute(mapping) in graph for t in source):
            return True
    return False


@pytest.mark.parametrize("k", [3, 4])
def bench_hom_search_forward_checking(benchmark, k):
    source = TGraph.of(*kk_tgraph(k, predicate=EDGE))
    graph = random_graph(8, 50, predicates=("edge",), seed=k)
    result = benchmark(lambda: find_homomorphism(source, graph) is not None)
    assert result == _naive_homomorphism(source, graph)


@pytest.mark.parametrize("k", [3, 4])
def bench_hom_search_naive_baseline(benchmark, k):
    source = TGraph.of(*kk_tgraph(k, predicate=EDGE))
    graph = random_graph(8, 50, predicates=("edge",), seed=k)
    benchmark.pedantic(lambda: _naive_homomorphism(source, graph), rounds=1, iterations=1, warmup_rounds=0)
