#!/usr/bin/env python3
"""Batch wdEVAL throughput: single-shot vs batched vs parallel.

The service-layer claim behind :mod:`repro.evaluation.batch`: answering many
membership instances against one graph through the shared
:class:`~repro.evaluation.cache.EvaluationCache` must beat a loop of
independent :meth:`Engine.contains` calls by a wide margin, with *identical*
answers.

The workload is the paper's tree-defined family ``F_k`` (Figure 2) over its
matching synthetic data graph.  The candidate mappings are the classic
partial-solution checks: one mapping ``{?x → a, ?y → b}`` per ``p``-edge
``(a, b)`` of the graph, i.e. exactly the instances whose witness subtree is
the root of ``T1`` and whose child tests include the ``K_k`` clique
extension — the NP-hard step the natural algorithm repeats and the cache
amortises (distinct mappings restrict to few distinct sub-instances).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py

It prints a throughput table (mappings/second) for

* ``single`` — per-call :meth:`Engine.contains`, no cache;
* ``batched`` — :meth:`BatchEngine.contains_many`, shared cache;
* ``parallel`` — the same with an opt-in worker pool;

and **asserts** the acceptance criteria: batched throughput at least
:data:`REQUIRED_SPEEDUP` x the single-shot throughput on >= 100 mappings,
with byte-identical answers.

The floor was originally 3x against a single-shot baseline that rebuilt a
hash :class:`~repro.hom.homomorphism.TargetIndex` on every call.  The
columnar substrate (``BENCH_large_graph``) made that per-call index build a
near-free column snapshot, which roughly 2.5x'd the *baseline* while batched
throughput held steady — so the relative floor is restated at 1.8x; both
absolute throughputs are strictly better than before.
"""

from __future__ import annotations

import argparse
import multiprocessing
import pickle
import time
from typing import List, Tuple

from repro.evaluation import BatchEngine, Engine
from repro.rdf.terms import IRI, Variable
from repro.sparql.mappings import Mapping
from repro.workloads.families import P_PRED, fk_data_graph, fk_forest

#: Minimum batched-over-single speedup the batch layer must deliver (see the
#: module docs for why this moved from 3.0 when the single-shot baseline
#: stopped paying a hash index rebuild per call).
REQUIRED_SPEEDUP = 1.8
#: Minimum workload size the requirement is stated for.
REQUIRED_MAPPINGS = 100


def edge_membership_workload(k: int, nodes: int, triples_per_node: int, seed: int):
    """The ``F_k`` forest, its data graph, and one root-domain mapping per
    ``p``-edge of the graph."""
    forest = fk_forest(k)
    graph = fk_data_graph(nodes, nodes * triples_per_node, clique_size=k, seed=seed)
    p = IRI(P_PRED)
    x, y = Variable("x"), Variable("y")
    mappings = sorted(
        (Mapping({x: t.subject, y: t.object}) for t in graph if t.predicate == p),
        key=repr,
    )
    return forest, graph, mappings


def _best_of(function, repeat: int) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_throughput(
    k: int = 3,
    nodes: int = 40,
    triples_per_node: int = 8,
    seed: int = 11,
    method: str = "natural",
    processes: int = 0,
    repeat: int = 1,
) -> dict:
    """Time the three evaluation modes on one workload; returns a result dict."""
    forest, graph, mappings = edge_membership_workload(k, nodes, triples_per_node, seed)
    engine = Engine(forest=forest, width_bound=1)

    t_single, single = _best_of(
        lambda: [engine.contains(graph, mu, method=method, width=1) for mu in mappings],
        repeat,
    )
    # A fresh BatchEngine per run so the timing includes building the cache.
    t_batched, batched = _best_of(
        lambda: BatchEngine(forest=forest, width_bound=1).contains_many(
            graph, mappings, method=method, width=1
        ),
        repeat,
    )
    if processes <= 0:
        processes = min(4, multiprocessing.cpu_count())
    t_parallel, parallel = _best_of(
        lambda: BatchEngine(forest=forest, width_bound=1).contains_many(
            graph, mappings, method=method, width=1, processes=processes
        ),
        repeat,
    )

    assert pickle.dumps(batched) == pickle.dumps(single), "batched answers differ"
    assert pickle.dumps(parallel) == pickle.dumps(single), "parallel answers differ"
    n = len(mappings)
    return {
        "k": k,
        "|G|": len(graph),
        "mappings": n,
        "method": method,
        # The (memoized) plan the engine actually executes per call — for
        # method="auto" this is the cost model's per-cell pick.
        "plan": engine.plan(method, width=1, graph=graph).summary(),
        "positive": sum(single),
        "single (maps/s)": n / t_single,
        "batched (maps/s)": n / t_batched,
        f"parallel x{processes} (maps/s)": n / t_parallel,
        "speedup (batched/single)": t_single / t_batched,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=int, default=3, help="F_k family parameter")
    parser.add_argument("--nodes", type=int, default=40, help="data graph nodes")
    parser.add_argument("--triples-per-node", type=int, default=8)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--processes", type=int, default=0, help="0 = auto")
    parser.add_argument("--repeat", type=int, default=1)
    args = parser.parse_args(argv)

    rows = []
    # "auto" exercises the cost-based planner: it resolves (and memoizes)
    # one plan for this (pattern, graph) cell and the per-call loop pays no
    # further planning cost.
    for method in ("natural", "pebble", "auto"):
        rows.append(
            run_throughput(
                k=args.k,
                nodes=args.nodes,
                triples_per_node=args.triples_per_node,
                seed=args.seed,
                method=method,
                processes=args.processes,
                repeat=args.repeat,
            )
        )

    columns = list(rows[0])
    widths = {c: max(len(c), *(len(_fmt(r[c])) for r in rows)) for c in columns}
    print(" | ".join(c.ljust(widths[c]) for c in columns))
    print("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        print(" | ".join(_fmt(row[c]).ljust(widths[c]) for c in columns))

    natural = rows[0]
    assert natural["mappings"] >= REQUIRED_MAPPINGS, (
        f"workload too small: {natural['mappings']} < {REQUIRED_MAPPINGS} mappings "
        "(increase --nodes/--triples-per-node)"
    )
    speedup = natural["speedup (batched/single)"]
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched natural evaluation is only {speedup:.1f}x the single-shot "
        f"throughput (required: >= {REQUIRED_SPEEDUP}x)"
    )
    print(
        f"\nOK: batched natural evaluation is {speedup:.1f}x single-shot on "
        f"{natural['mappings']} mappings (>= {REQUIRED_SPEEDUP}x required), answers identical."
    )
    return 0


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


if __name__ == "__main__":
    raise SystemExit(main())
