"""E9 — the Theorem 3 frontier: bounded versus unbounded domination width.

Two series over growing query parameter k on comparable data graphs:

* the bounded-dw family ``F_k`` evaluated with the Theorem 1 algorithm —
  membership cost stays essentially flat in k;
* the unbounded-dw family ``Q_k`` evaluated with the exact natural algorithm —
  the child extension test degenerates into k-clique search and its cost
  climbs with k.

The crossover between the two series is the empirical shape of the paper's
dichotomy (who is polynomial, who is not).
"""

import pytest

from repro.evaluation import forest_contains, forest_contains_pebble, forest_solutions
from repro.patterns import WDPatternForest
from repro.sparql import Mapping
from repro.rdf.namespace import EX
from repro.rdf.terms import Variable
from repro.workloads.clique_instances import random_host_graph
from repro.workloads.families import clique_query_data_graph, fk_data_graph, fk_forest, hard_clique_tree

GRAPH_SIZE = 14


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def bench_bounded_family_membership(benchmark, k):
    forest = fk_forest(k)
    graph = fk_data_graph(GRAPH_SIZE, GRAPH_SIZE * 6, clique_size=k, seed=k)
    queries = sorted(forest_solutions(forest, graph), key=repr)[:3]
    if not queries:
        pytest.skip("no solutions on this data graph")
    answers = benchmark(lambda: [forest_contains_pebble(forest, graph, mu, 1) for mu in queries])
    assert answers == [forest_contains(forest, graph, mu) for mu in queries]


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def bench_unbounded_family_membership(benchmark, k):
    tree = hard_clique_tree(k)
    forest = WDPatternForest([tree])
    host = random_host_graph(GRAPH_SIZE, 0.5, seed=k)
    graph = clique_query_data_graph(host)
    anchor = EX.term("anchor")
    targets = sorted(
        (t.object for t in graph.matches(next(iter(tree.pat(0))))), key=str
    )
    queries = [Mapping({Variable("x"): anchor, Variable("y"): target}) for target in targets[:3]]
    benchmark(lambda: [forest_contains(forest, graph, mu) for mu in queries])
