"""E1 — Figure 1 / Example 3: core treewidth versus treewidth.

Regenerates the series ``ctw(S, X) = k − 1`` and ``ctw(S', X) = 1`` while
``tw(S', X) = k − 1``, and times the core/treewidth computations as the
clique parameter k grows.
"""

import pytest

from repro.hom import core_of, ctw, tw
from repro.workloads.families import example3_gtgraphs


@pytest.mark.parametrize("k", [2, 4, 6, 8])
def bench_ctw_of_s(benchmark, k):
    s, _ = example3_gtgraphs(k)
    result = benchmark(lambda: ctw(s))
    assert result == k - 1


@pytest.mark.parametrize("k", [2, 4, 6, 8])
def bench_ctw_of_s_prime(benchmark, k):
    _, s_prime = example3_gtgraphs(k)
    result = benchmark(lambda: ctw(s_prime))
    assert result == 1


@pytest.mark.parametrize("k", [2, 4, 6])
def bench_tw_of_s_prime(benchmark, k):
    _, s_prime = example3_gtgraphs(k)
    result = benchmark(lambda: tw(s_prime))
    assert result == k - 1


@pytest.mark.parametrize("k", [4, 8])
def bench_core_computation(benchmark, k):
    _, s_prime = example3_gtgraphs(k)
    core = benchmark(lambda: core_of(s_prime))
    assert len(core.triples()) == 4
