"""E2 — Figure 2 / Examples 4-5: domination width of the forest F_k.

Regenerates the series ``dw(F_k) = 1`` and ``local width(F_k) = k − 1`` and
times the width computations (the recognition problem) as k grows.
"""

import pytest

from repro.width import domination_width, local_width_of_forest
from repro.workloads.families import fk_forest


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def bench_domination_width_fk(benchmark, k):
    forest = fk_forest(k)
    result = benchmark(lambda: domination_width(forest))
    assert result == 1


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def bench_local_width_fk(benchmark, k):
    forest = fk_forest(k)
    result = benchmark(lambda: local_width_of_forest(forest))
    assert result == k - 1


@pytest.mark.parametrize("k", [3, 5])
def bench_wdpf_translation(benchmark, k):
    from repro.patterns import wdpf
    from repro.workloads.families import fk_pattern

    pattern = fk_pattern(k)
    forest = benchmark(lambda: wdpf(pattern))
    assert len(forest) == 3
