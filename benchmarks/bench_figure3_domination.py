"""E3 — Figure 3 / Example 4: the GtG sets and the domination relation.

Regenerates the content of Figure 3: ``GtG(T1[r1]) = {S_Δ1, S_Δ2}`` with core
treewidths 1 and k − 1, and times the construction of GtG together with the
1-domination check.
"""

import pytest

from repro.hom import ctw, maps_to
from repro.patterns.gtg import gtg, valid_children_assignments
from repro.workloads.families import fk_forest


@pytest.mark.parametrize("k", [2, 3, 4])
def bench_gtg_of_root_subtree(benchmark, k):
    forest = fk_forest(k)
    subtree = forest[0].root_subtree()
    members = benchmark(lambda: gtg(forest, subtree))
    assert len(members) == 2
    assert sorted(ctw(member) for member in members) == [1, max(1, k - 1)]


@pytest.mark.parametrize("k", [3, 4, 5])
def bench_domination_check(benchmark, k):
    forest = fk_forest(k)
    members = sorted(gtg(forest, forest[0].root_subtree()), key=ctw)

    def dominated() -> bool:
        low, high = members[0], members[-1]
        return maps_to(low, high)

    assert benchmark(dominated)


@pytest.mark.parametrize("k", [3, 5])
def bench_valid_children_assignments(benchmark, k):
    forest = fk_forest(k)
    subtree = forest[0].root_subtree()
    result = benchmark(lambda: list(valid_children_assignments(forest, subtree)))
    assert len(result) == 2
