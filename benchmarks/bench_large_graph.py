#!/usr/bin/env python3
"""Large-graph substrate throughput: columnar bulk loads, scans and indexes.

The claim behind the interned columnar triple store (:mod:`repro.rdf.graph`):
the substrate must load and query graphs in the 10^5–10^6 triple range at
in-memory speeds, and the sorted-column representation must make

* **bulk loads** (:meth:`RDFGraph.from_triples`) decisively faster than
  feeding the same triples through the incremental per-``add`` path — one
  sort per permutation instead of repeated buffer merges;
* **target-index construction**
  (:class:`~repro.hom.homomorphism.ColumnarTargetIndex`) a near-free column
  snapshot instead of the hash :class:`~repro.hom.homomorphism.TargetIndex`'s
  seven dictionary entries per triple — this is the cost the evaluation
  cache pays again after *every* graph mutation;

while answering membership probes, pattern scans and index joins with the
exact same results as the retained hash-indexed
:class:`~repro.rdf.reference.ReferenceRDFGraph` (checked here on every run).

The workload is a power-law graph (Zipf endpoints — a few heavy hubs, a long
sparse tail), the degree profile of real RDF data sets and the stress case
for range scans.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_large_graph.py [--smoke]

``--smoke`` loads 10^5 distinct triples (the CI tier); the default run loads
10^6.  Either way it prints a throughput table, **asserts** the acceptance
criteria — at least :data:`REQUIRED_TRIPLES` distinct triples loaded, bulk
load at least :data:`REQUIRED_BULK_SPEEDUP` x the incremental per-add rate,
columnar index build at least :data:`REQUIRED_INDEX_SPEEDUP` x the hash
index build, with identical query answers — and writes a machine-readable
perf record to ``BENCH_large_graph.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from itertools import accumulate, islice
from typing import List, Tuple

from repro.hom.homomorphism import ColumnarTargetIndex, TargetIndex, target_index
from repro.rdf.graph import RDFGraph
from repro.rdf.namespace import EX
from repro.rdf.reference import ReferenceRDFGraph
from repro.rdf.terms import IRI, Variable
from repro.rdf.triples import Triple, TriplePattern

#: Minimum number of distinct triples the benchmark graph must contain.
REQUIRED_TRIPLES = 100_000
#: Minimum bulk-load speedup over the incremental per-``add`` rate.
REQUIRED_BULK_SPEEDUP = 1.5
#: Minimum columnar-over-hash target-index build speedup.
REQUIRED_INDEX_SPEEDUP = 5.0
#: Zipf exponent of the endpoint distribution (1.1 ~ web-like degree skew).
ZIPF_EXPONENT = 1.1
#: Per-add baselines are timed on at most this many triples (rates compare).
BASELINE_CAP = 100_000
#: Membership probes per store (half present, half absent).
PROBES = 2_000
#: Index-join bindings enumerated per index for the latency row.
JOIN_LIMIT = 50_000


def power_law_triples(num_triples: int, num_nodes: int, seed: int) -> List[Triple]:
    """Exactly *num_triples* **distinct** Zipf-endpoint triples in a
    deterministic order (duplicate draws are dropped; extra batches are
    drawn until the target is met)."""
    rng = random.Random(seed)
    nodes = [EX.term(f"node{i}") for i in range(num_nodes)]
    preds = [EX.term(p) for p in ("p", "q", "r")]
    cum_weights = list(accumulate((i + 1) ** -ZIPF_EXPONENT for i in range(num_nodes)))
    triples: List[Triple] = []
    seen = set()
    while len(triples) < num_triples:
        batch = max(num_triples - len(triples), 1024)
        subjects = rng.choices(nodes, cum_weights=cum_weights, k=batch)
        objects = rng.choices(nodes, cum_weights=cum_weights, k=batch)
        chosen = rng.choices(preds, k=batch)
        for s, p, o in zip(subjects, chosen, objects):
            t = Triple(s, p, o)
            if t not in seen:
                seen.add(t)
                triples.append(t)
    return triples[:num_triples]


def _best(fn, repeat: int) -> Tuple[float, object]:
    """Minimum wall time of *fn* over *repeat* runs, with its last result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(triples: List[Triple], repeat: int, seed: int) -> dict:
    """Time loads, probes, scans and index builds; cross-check every answer
    against the reference store; return the perf record rows."""
    n = len(triples)
    baseline = triples[: min(n, BASELINE_CAP)]

    # --- loads ----------------------------------------------------------
    t_bulk, graph = _best(lambda: RDFGraph.from_triples(triples), repeat)

    def incremental() -> RDFGraph:
        g = RDFGraph()
        for t in baseline:
            g.add(t)
        return g

    t_incr, _ = _best(incremental, repeat)
    t_ref, reference = _best(lambda: ReferenceRDFGraph.from_triples(triples), repeat)
    assert len(graph) == n and len(reference) == n
    bulk_rate = n / t_bulk
    incr_rate = len(baseline) / t_incr
    ref_rate = n / t_ref

    # --- membership probes ---------------------------------------------
    rng = random.Random(seed + 1)
    present = rng.sample(triples, min(PROBES // 2, n))
    absent = [
        Triple(t.object, IRI(str(t.predicate) + "-absent"), t.subject) for t in present
    ]
    probes = present + absent

    def probe(g) -> int:
        return sum(1 for t in probes if t in g)

    t_probe_col, hits_col = _best(lambda: probe(graph), repeat)
    t_probe_ref, hits_ref = _best(lambda: probe(reference), repeat)
    assert hits_col == hits_ref == len(present), "membership answers differ"

    # --- hub range scan -------------------------------------------------
    # node0 carries the most Zipf mass, so this is the longest prefix run.
    hub_pattern = TriplePattern(EX.term("node0"), Variable("hp"), Variable("ho"))
    t_scan_col, scanned_col = _best(
        lambda: sum(1 for _ in graph.matches(hub_pattern)), repeat
    )
    t_scan_ref, scanned_ref = _best(
        lambda: sum(1 for _ in reference.matches(hub_pattern)), repeat
    )
    assert scanned_col == scanned_ref, "hub scan answers differ"
    assert frozenset(graph.matches(hub_pattern)) == frozenset(
        reference.matches(hub_pattern)
    ), "hub scan triples differ"

    # --- target-index build and index join ------------------------------
    frozen = graph.triples()  # materialised outside the timed region
    t_idx_col, columnar_index = _best(lambda: target_index(graph), repeat)
    assert isinstance(columnar_index, ColumnarTargetIndex)
    t_idx_hash, hash_index = _best(lambda: TargetIndex(frozen), repeat)

    join_pattern = TriplePattern(Variable("x"), EX.term("p"), Variable("y"))

    def join(index) -> int:
        return sum(1 for _ in islice(index.pattern_solutions(join_pattern), JOIN_LIMIT))

    t_join_col, joined_col = _best(lambda: join(columnar_index), repeat)
    t_join_hash, joined_hash = _best(lambda: join(hash_index), repeat)
    assert joined_col == joined_hash, "index join answers differ"
    assert joined_col > 0, "index join pattern matched nothing"

    return {
        "triples": n,
        "distinct_terms": len(graph.domain()),
        "bulk_load_triples_per_sec": bulk_rate,
        "incremental_load_triples_per_sec": incr_rate,
        "reference_load_triples_per_sec": ref_rate,
        "bulk_speedup": bulk_rate / incr_rate,
        "bulk_load_ms": t_bulk * 1000.0,
        "membership_probes_per_sec": len(probes) / t_probe_col,
        "reference_probes_per_sec": len(probes) / t_probe_ref,
        "hub_scan_triples": scanned_col,
        "hub_scan_triples_per_sec": scanned_col / t_scan_col if t_scan_col else 0.0,
        "reference_scan_triples_per_sec": scanned_ref / t_scan_ref if t_scan_ref else 0.0,
        "index_build_ms": t_idx_col * 1000.0,
        "hash_index_build_ms": t_idx_hash * 1000.0,
        "index_build_speedup": t_idx_hash / t_idx_col,
        "join_bindings": joined_col,
        "join_bindings_per_sec": joined_col / t_join_col if t_join_col else 0.0,
        "hash_join_bindings_per_sec": joined_hash / t_join_hash if t_join_hash else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--triples", type=int, default=1_000_000)
    parser.add_argument(
        "--nodes", type=int, default=None, help="default: triples // 10"
    )
    parser.add_argument("--seed", type=int, default=20)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload: 10^5 triples (still asserts the criteria)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_large_graph.json",
        help="where to write the JSON perf record",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.triples = min(args.triples, REQUIRED_TRIPLES)
    if args.nodes is None:
        args.nodes = max(args.triples // 10, 10)

    triples = power_law_triples(args.triples, args.nodes, args.seed)
    row = run(triples, args.repeat, args.seed)

    columns = list(row)
    width = max(len(c) for c in columns)
    for column in columns:
        print(f"{column.ljust(width)} : {_fmt(row[column])}")

    record = {
        "benchmark": "large_graph",
        "smoke": bool(args.smoke),
        "nodes": args.nodes,
        "zipf_exponent": ZIPF_EXPONENT,
        "required_triples": REQUIRED_TRIPLES,
        "required_bulk_speedup": REQUIRED_BULK_SPEEDUP,
        "required_index_speedup": REQUIRED_INDEX_SPEEDUP,
        **row,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.output}")

    assert row["triples"] >= REQUIRED_TRIPLES, (
        f"workload too small: {row['triples']} < {REQUIRED_TRIPLES} triples"
    )
    assert row["bulk_speedup"] >= REQUIRED_BULK_SPEEDUP, (
        f"bulk load is only {row['bulk_speedup']:.2f}x the incremental rate "
        f"(required: >= {REQUIRED_BULK_SPEEDUP}x)"
    )
    assert row["index_build_speedup"] >= REQUIRED_INDEX_SPEEDUP, (
        f"columnar index build is only {row['index_build_speedup']:.2f}x the "
        f"hash index build (required: >= {REQUIRED_INDEX_SPEEDUP}x)"
    )
    print(
        f"OK: loaded {row['triples']} triples at "
        f"{row['bulk_load_triples_per_sec']:,.0f} triples/s "
        f"({row['bulk_speedup']:.1f}x incremental, >= {REQUIRED_BULK_SPEEDUP}x "
        f"required); index build {row['index_build_speedup']:.1f}x hash "
        f"(>= {REQUIRED_INDEX_SPEEDUP}x required); all answers match the "
        "reference store."
    )
    return 0


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}"
    return str(value)


if __name__ == "__main__":
    raise SystemExit(main())
