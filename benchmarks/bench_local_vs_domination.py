"""E8 — the tractability gap between local tractability and domination width.

The families F_k and T'_k have local width k − 1 (so the locally-tractable
algorithmics degrade with k) but constant domination width / branch
treewidth; the OPT-chain control family is bounded in both senses.  The
benchmark regenerates this table and times evaluation on the gap families
with the Theorem 1 algorithm, whose cost is insensitive to k's growth in the
local width.
"""

import pytest

from repro.evaluation import forest_contains_pebble, forest_solutions
from repro.patterns import WDPatternForest
from repro.width import branch_treewidth, domination_width, local_width, local_width_of_forest
from repro.workloads.families import (
    chain_tree,
    fk_data_graph,
    fk_forest,
    tprime_tree,
)


@pytest.mark.parametrize("k", [2, 3, 4])
def bench_width_gap_fk(benchmark, k):
    forest = fk_forest(k)
    dw, local = benchmark(lambda: (domination_width(forest), local_width_of_forest(forest)))
    assert dw == 1 and local == k - 1


@pytest.mark.parametrize("k", [2, 4, 6])
def bench_width_gap_tprime(benchmark, k):
    tree = tprime_tree(k)
    bw, local = benchmark(lambda: (branch_treewidth(tree), local_width(tree)))
    assert bw == 1 and local == k - 1


@pytest.mark.parametrize("depth", [2, 4])
def bench_control_family_chain(benchmark, depth):
    tree = chain_tree(depth)
    forest = WDPatternForest([tree])
    dw, local = benchmark(lambda: (domination_width(forest), local_width(tree)))
    assert dw == 1 and local == 1


@pytest.mark.parametrize("k", [2, 4, 6])
def bench_evaluation_insensitive_to_local_width(benchmark, k):
    """Membership cost of the Theorem 1 algorithm on F_k stays flat as the
    local width k - 1 grows (the fixed data graph is the control variable)."""
    forest = fk_forest(k)
    graph = fk_data_graph(15, 90, clique_size=k, seed=1)
    queries = sorted(forest_solutions(forest, graph), key=repr)[:3]
    if not queries:
        pytest.skip("no solutions on this data graph")
    answers = benchmark(lambda: [forest_contains_pebble(forest, graph, mu, 1) for mu in queries])
    assert all(answers)
