#!/usr/bin/env python3
"""Consistency-kernel throughput: precomputed pebble game vs per-call rebuild.

The claim behind :mod:`repro.pebble.kernel`: answering many distinct
mappings against one pebble instance ``(S, X)`` through a shared
:class:`~repro.pebble.kernel.ConsistencyKernel` must beat the per-call
implementation (which rebuilds constraint groups, domains and binary
supports from scratch on every invocation) by a wide margin, with
*identical* verdicts.

The workload is the paper's tree-defined family ``F_k`` (Figure 2): the
instance is the Theorem 1 child test of ``T1``'s root against its clique
child ``n12`` — ``({(?x,p,?y), (?y,r,?o1)} ∪ K_k, {?x, ?y})`` — and the
mappings are one ``{?x → a, ?y → b}`` per ``p``-edge of a synthetic data
graph, i.e. exactly the distinct-mapping stream the PR 1 verdict cache
cannot help with (its pebble key includes µ).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_pebble_kernel.py [--smoke]

It prints a throughput table (mappings/second) for

* ``naive``  — :func:`repro.pebble.game.reference_pebble_game_winner`,
  full per-call reconstruction;
* ``kernel`` — one :class:`ConsistencyKernel` built once (build time is
  charged to the kernel side), then one restriction + propagation per
  mapping;

**asserts** the acceptance criteria — kernel throughput at least 3x the
per-call throughput across >= 50 distinct mappings on the 2-pebble row,
with bitwise-identical verdicts — and writes a machine-readable perf record
to ``BENCH_pebble_kernel.json`` (mappings/sec, kernel-build ms, speedup).
"""

from __future__ import annotations

import argparse
import json
import pickle
import time
from typing import List

from repro.hom.tgraph import GeneralizedTGraph
from repro.pebble.game import reference_pebble_game_winner
from repro.pebble.kernel import ConsistencyKernel
from repro.rdf.terms import IRI, Variable
from repro.sparql.mappings import Mapping
from repro.workloads.families import P_PRED, R_PRED, fk_data_graph, kk_tgraph

#: Minimum kernel-over-naive speedup the 2-pebble row must deliver.
REQUIRED_SPEEDUP = 3.0
#: Minimum number of distinct mappings the requirement is stated for.
REQUIRED_MAPPINGS = 50


def pebble_workload(k: int, nodes: int, triples_per_node: int, seed: int):
    """The ``F_k`` T1 root-vs-clique-child instance, its data graph, and one
    distinguished mapping per ``p``-edge of the graph."""
    graph = fk_data_graph(nodes, nodes * triples_per_node, clique_size=k, seed=seed)
    triples = [("?x", P_PRED, "?y"), ("?y", R_PRED, "?o1")] + kk_tgraph(k)
    extended = GeneralizedTGraph.of(triples, ["x", "y"])
    p = IRI(P_PRED)
    x, y = Variable("x"), Variable("y")
    mappings = sorted(
        {Mapping({x: t.subject, y: t.object}) for t in graph if t.predicate == p},
        key=repr,
    )
    return extended, graph, mappings


def run_row(extended, graph, mappings: List[Mapping], pebbles: int, repeat: int) -> dict:
    """Time per-call reconstruction vs one shared kernel for one pebble count."""
    t_naive = float("inf")
    naive = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        naive = [reference_pebble_game_winner(extended, graph, mu, pebbles) for mu in mappings]
        t_naive = min(t_naive, time.perf_counter() - start)

    t_build = float("inf")
    t_solve = float("inf")
    fast = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        kernel = ConsistencyKernel(extended, graph, pebbles)
        t_build = min(t_build, time.perf_counter() - start)
        start = time.perf_counter()
        fast = [kernel.winner(mu) for mu in mappings]
        t_solve = min(t_solve, time.perf_counter() - start)

    assert pickle.dumps(fast) == pickle.dumps(naive), "kernel verdicts differ from per-call"
    n = len(mappings)
    t_kernel = t_build + t_solve
    return {
        "pebbles": pebbles,
        "mappings": n,
        "positive": sum(naive),
        "naive_mappings_per_sec": n / t_naive,
        "kernel_mappings_per_sec": n / t_kernel,
        "kernel_build_ms": t_build * 1000.0,
        "speedup": t_naive / t_kernel,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=int, default=3, help="F_k family parameter")
    parser.add_argument("--nodes", type=int, default=40, help="data graph nodes")
    parser.add_argument("--triples-per-node", type=int, default=8)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller CI-sized workload (still asserts the speedup criteria)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_pebble_kernel.json",
        help="where to write the JSON perf record",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.nodes = min(args.nodes, 30)
        args.triples_per_node = min(args.triples_per_node, 8)

    extended, graph, mappings = pebble_workload(
        args.k, args.nodes, args.triples_per_node, args.seed
    )
    rows = [
        run_row(extended, graph, mappings, pebbles=2, repeat=args.repeat),
        # The generic (k >= 3) fixpoint path, reported but not asserted: the
        # fixpoint itself dominates there, so the setup/solve split helps less.
        run_row(
            extended,
            graph,
            mappings[: max(REQUIRED_MAPPINGS, len(mappings) // 4)],
            pebbles=3,
            repeat=args.repeat,
        ),
    ]

    columns = list(rows[0])
    widths = {c: max(len(c), *(len(_fmt(r[c])) for r in rows)) for c in columns}
    print(" | ".join(c.ljust(widths[c]) for c in columns))
    print("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        print(" | ".join(_fmt(row[c]).ljust(widths[c]) for c in columns))

    asserted = rows[0]
    record = {
        "benchmark": "pebble_kernel",
        "smoke": bool(args.smoke),
        "k": args.k,
        "graph_triples": len(graph),
        "mappings": asserted["mappings"],
        "naive_mappings_per_sec": asserted["naive_mappings_per_sec"],
        "kernel_mappings_per_sec": asserted["kernel_mappings_per_sec"],
        "kernel_build_ms": asserted["kernel_build_ms"],
        "speedup": asserted["speedup"],
        "required_speedup": REQUIRED_SPEEDUP,
        "rows": rows,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.output}")

    assert asserted["mappings"] >= REQUIRED_MAPPINGS, (
        f"workload too small: {asserted['mappings']} < {REQUIRED_MAPPINGS} mappings "
        "(increase --nodes/--triples-per-node)"
    )
    assert asserted["speedup"] >= REQUIRED_SPEEDUP, (
        f"kernel evaluation is only {asserted['speedup']:.1f}x the per-call "
        f"throughput (required: >= {REQUIRED_SPEEDUP}x)"
    )
    print(
        f"OK: kernel-backed 2-pebble evaluation is {asserted['speedup']:.1f}x per-call "
        f"reconstruction on {asserted['mappings']} distinct mappings "
        f"(>= {REQUIRED_SPEEDUP}x required), verdicts identical."
    )
    return 0


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


if __name__ == "__main__":
    raise SystemExit(main())
