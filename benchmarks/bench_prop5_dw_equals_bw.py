"""E6 — Proposition 5: dw(P) = bw(P) for UNION-free patterns.

Times the two width computations on random UNION-free wdPTs and on the
paper's UNION-free families, asserting that they coincide (the proposition)
on every instance.
"""

import pytest

from repro.patterns import WDPatternForest
from repro.width import branch_treewidth, domination_width
from repro.workloads.families import hard_clique_tree, tprime_tree
from repro.workloads.random_patterns import random_wd_tree


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def bench_dw_vs_bw_random_trees(benchmark, seed):
    tree = random_wd_tree(num_nodes=4, seed=seed)
    forest = WDPatternForest([tree])

    def both():
        return domination_width(forest), branch_treewidth(tree)

    dw, bw = benchmark(both)
    assert dw == bw


@pytest.mark.parametrize("k", [2, 3, 4])
def bench_dw_vs_bw_tprime(benchmark, k):
    tree = tprime_tree(k)
    forest = WDPatternForest([tree])
    dw, bw = benchmark(lambda: (domination_width(forest), branch_treewidth(tree)))
    assert dw == bw == 1


@pytest.mark.parametrize("k", [2, 3, 4])
def bench_dw_vs_bw_hard_family(benchmark, k):
    tree = hard_clique_tree(k)
    forest = WDPatternForest([tree])
    dw, bw = benchmark(lambda: (domination_width(forest), branch_treewidth(tree)))
    assert dw == bw == k - 1
