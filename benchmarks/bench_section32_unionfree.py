"""E5 — Section 3.2: the UNION-free family T'_k.

Regenerates the series ``bw(T'_k) = 1`` versus ``local width = k − 1`` and
times evaluation with the 2-pebble algorithm (exact here by Proposition 5 +
Theorem 1) as k and the data graph grow.
"""

import pytest

from repro.evaluation import forest_contains, forest_contains_pebble
from repro.patterns import WDPatternForest
from repro.sparql import Mapping
from repro.rdf.terms import Variable
from repro.width import branch_treewidth, local_width
from repro.workloads.families import tprime_data_graph, tprime_tree


@pytest.mark.parametrize("k", [2, 4, 6, 8])
def bench_branch_treewidth_tprime(benchmark, k):
    tree = tprime_tree(k)
    result = benchmark(lambda: branch_treewidth(tree))
    assert result == 1


@pytest.mark.parametrize("k", [2, 4, 6])
def bench_local_width_tprime(benchmark, k):
    tree = tprime_tree(k)
    result = benchmark(lambda: local_width(tree))
    assert result == k - 1


@pytest.mark.parametrize("graph_size", [10, 25])
@pytest.mark.parametrize("k", [3, 5])
def bench_pebble_membership_tprime(benchmark, k, graph_size):
    tree = tprime_tree(k)
    forest = WDPatternForest([tree])
    graph = tprime_data_graph(graph_size, graph_size * 4, seed=k)
    values = sorted(graph.domain(), key=str)[:4]
    queries = [Mapping({Variable("y"): value}) for value in values]
    answers = benchmark(lambda: [forest_contains_pebble(forest, graph, mu, 1) for mu in queries])
    exact = [forest_contains(forest, graph, mu) for mu in queries]
    assert answers == exact
