#!/usr/bin/env python3
"""Service load: closed-loop mixed traffic against one shared warm session.

The "heavy traffic" claim behind :mod:`repro.service`: a long-lived
:class:`~repro.service.QueryService` answering concurrent membership /
enumeration / mutation traffic through **one** shared warm
:class:`~repro.evaluation.session.Session` must beat a
fresh-engine-per-request baseline (a cold ``Session`` built for every
request — what naive per-request serving would do) by a wide margin, with
*identical* answers.

The harness is a Locust-style closed-loop load generator: each simulated
client thread issues its next request as soon as the previous response
arrives, drawing operations from a seeded traffic mix.  A *cell* is one
``(mix, concurrency)`` pair; per cell the harness records throughput and
p50/p95/p99 client-visible latency, in the run-table idiom (one CSV row
per cell) of the experiment-runner replications this repo borrows from.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_service_load.py [--smoke]

It sweeps mixes (read-only and read/write) across concurrency levels,
prints the run table, writes it as CSV, writes the perf record to
``BENCH_service_load.json`` — and **asserts** the acceptance criterion:
on the read-heavy assertion cell, warm shared-session service throughput
at least :data:`REQUIRED_SPEEDUP` x the fresh-engine baseline at the same
concurrency, with identical per-request answers.
"""

from __future__ import annotations

import argparse
import csv
import json
import pickle
import random
import threading
import time
from typing import Callable, Dict, List, Sequence, Tuple

from repro.evaluation.session import Session
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import IRI, Variable
from repro.sparql.mappings import Mapping
from repro.sparql.parser import parse_pattern
from repro.rdf.triples import Triple
from repro.service import QueryService, ReadWriteGate

#: Minimum warm-service-over-fresh-baseline throughput ratio on the
#: assertion cell (ISSUE 9 acceptance criterion).
REQUIRED_SPEEDUP = 2.0
#: Minimum number of requests the assertion cell must replay.
REQUIRED_REQUESTS = 60

#: Traffic mixes: name -> (check weight, solutions weight, update weight).
MIXES: Dict[str, Tuple[float, float, float]] = {
    "read-only": (0.7, 0.3, 0.0),
    "read-heavy": (0.65, 0.3, 0.05),
    "write-heavy": (0.5, 0.3, 0.2),
}

#: The query catalogue the traffic draws from: repeated ad-hoc queries over
#: one live graph — exactly the steady state the shared cache amortizes.
QUERIES = (
    "((?x knows ?y) OPT (?y email ?e))",
    "((?x knows ?y) AND (?y knows ?z))",
    "(?x knows ?y)",
    "((?x knows ?y) OPT ((?y knows ?z) OPT (?z email ?e)))",
)


def social_graph(people: int, seed: int) -> RDFGraph:
    """A deterministic social graph: a knows-ring with chords and emails."""
    rng = random.Random(seed)
    triples = []
    for i in range(people):
        triples.append(Triple.of(f"p{i}", "knows", f"p{(i + 1) % people}"))
        if rng.random() < 0.5:
            triples.append(Triple.of(f"p{i}", "knows", f"p{rng.randrange(people)}"))
        if rng.random() < 0.4:
            triples.append(Triple.of(f"p{i}", "email", f"mailto:p{i}@example.org"))
    return RDFGraph(triples)


def build_schedule(
    graph: RDFGraph, mix: Tuple[float, float, float], requests: int, seed: int
) -> List[Tuple[str, str, Tuple[Mapping, ...], Tuple[Triple, ...], Tuple[Triple, ...]]]:
    """A seeded request schedule: ``(op, query, mappings, add, remove)`` rows.

    Deterministic in (graph, mix, requests, seed), so the service run and
    the fresh-engine baseline replay the *identical* traffic.
    """
    rng = random.Random(seed)
    knows = IRI("knows")
    x, y = Variable("x"), Variable("y")
    edges = sorted(
        (t for t in graph if t.predicate == knows), key=repr
    )
    check_w, solutions_w, update_w = mix
    schedule = []
    for i in range(requests):
        roll = rng.random()
        if roll < check_w:
            batch = tuple(
                Mapping({x: t.subject, y: t.object})
                for t in rng.sample(edges, min(4, len(edges)))
            )
            schedule.append(("check", rng.choice(QUERIES), batch, (), ()))
        elif roll < check_w + solutions_w:
            schedule.append(("solutions", rng.choice(QUERIES), (), (), ()))
        else:
            # Mutations use a predicate no catalogue query mentions: they
            # exercise the write gate and the per-version cache invalidation
            # for real, but query answers stay independent of how the
            # concurrent run interleaves them — so the per-cell differential
            # check against the serial baseline stays exact.  (The
            # interleaving-*sensitive* differential testing, with answers
            # pinned per graph version, lives in tests/test_service.py.)
            triple = Triple.of(f"n{rng.randrange(10**6)}", "tag", f"t{i}")
            schedule.append(("update", "", (), (triple,), ()))
            schedule.append(("update", "", (), (), (triple,)))
    return schedule[:requests]


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(fraction * len(sorted_values))))
    return sorted_values[rank]


def run_closed_loop(
    schedule: Sequence[tuple],
    concurrency: int,
    execute: Callable[[tuple], object],
) -> dict:
    """Drive *schedule* through *execute* from *concurrency* client threads.

    Closed loop: each client issues its next request as soon as the
    previous one completes; clients claim schedule rows through a shared
    counter, so together they replay the schedule exactly once.  Returns
    wall time, per-request latencies and the per-request results (indexed
    by schedule position, so runs are comparable regardless of thread
    interleaving).
    """
    claim = {"next": 0}
    claim_lock = threading.Lock()
    latencies: List[float] = [0.0] * len(schedule)
    results: List[object] = [None] * len(schedule)
    errors: List[int] = [0] * len(schedule)

    def client() -> None:
        while True:
            with claim_lock:
                position = claim["next"]
                if position >= len(schedule):
                    return
                claim["next"] = position + 1
            started = time.perf_counter()
            try:
                results[position] = execute(schedule[position])
            except Exception as error:  # typed service errors count as errors
                results[position] = f"error:{type(error).__name__}"
                errors[position] = 1
            latencies[position] = time.perf_counter() - started

    threads = [threading.Thread(target=client) for _ in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    ordered = sorted(latencies)
    return {
        "wall_s": wall,
        "throughput_rps": len(schedule) / wall if wall else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1000.0,
        "p95_ms": _percentile(ordered, 0.95) * 1000.0,
        "p99_ms": _percentile(ordered, 0.99) * 1000.0,
        "errors": sum(errors),
        "results": results,
    }


def _canonical(results: Sequence[object]) -> bytes:
    """A canonical byte string of per-request results (order-insensitive
    within one request's answer set, order-sensitive across requests).

    Results are normalized through ``repr`` — pickling ``Mapping`` objects
    directly would compare their internal dict insertion order, which is an
    implementation detail, not an answer.
    """
    normalized = []
    for result in results:
        if isinstance(result, (set, frozenset)):
            normalized.append(tuple(sorted(repr(item) for item in result)))
        else:
            normalized.append(repr(result))
    return pickle.dumps(normalized)


def service_executor(service: QueryService) -> Callable[[tuple], object]:
    """Execute one schedule row through the shared warm service."""

    def execute(row: tuple) -> object:
        op, query, mappings, add, remove = row
        if op == "check":
            return tuple(service.check(query, list(mappings)))
        if op == "solutions":
            return service.solutions(query)
        # The add/removed counts depend on how concurrent clients interleave
        # the paired add/remove rows, so they are not differential material —
        # only that the update was applied without error.
        service.update(add=add, remove=remove)
        return "update-ok"

    return execute


def fresh_engine_executor(graph: RDFGraph, gate: ReadWriteGate) -> Callable[[tuple], object]:
    """The baseline: a cold Session (fresh engine, empty cache) per request.

    Queries and mutations go through the same reader/writer discipline the
    service applies, so the two runs differ only in what the acceptance
    criterion is about: warm shared state vs a fresh engine per request.
    """

    def execute(row: tuple) -> object:
        op, query, mappings, add, remove = row
        session = Session()  # fresh engine + empty cache every request
        if op == "check":
            pattern = parse_pattern(query)
            with gate.read():
                return tuple(session.check_many(pattern, graph, list(mappings)))
        if op == "solutions":
            pattern = parse_pattern(query)
            with gate.read():
                return session.solutions(pattern, graph)
        with gate.write():
            for triple in remove:
                if triple in graph:
                    graph.discard(triple)
            if add:
                graph.add_all(add)
        return "update-ok"

    return execute


def run_cell(
    graph_seed: int,
    people: int,
    mix_name: str,
    requests: int,
    concurrency: int,
    schedule_seed: int,
) -> dict:
    """One run-table cell: warm service vs fresh-engine baseline."""
    mix = MIXES[mix_name]
    service_graph = social_graph(people, graph_seed)
    baseline_graph = service_graph.copy()
    schedule = build_schedule(service_graph, mix, requests, schedule_seed)

    service = QueryService(
        service_graph, max_inflight=max(2, concurrency), max_pending=10_000
    )
    try:
        warm = run_closed_loop(schedule, concurrency, service_executor(service))
        stats = service.stats()
    finally:
        service.close()

    baseline = run_closed_loop(
        schedule, concurrency, fresh_engine_executor(baseline_graph, ReadWriteGate())
    )

    assert warm["errors"] == 0, f"service run had {warm['errors']} error(s)"
    assert baseline["errors"] == 0, f"baseline run had {baseline['errors']} error(s)"
    assert _canonical(warm["results"]) == _canonical(baseline["results"]), (
        f"cell ({mix_name}, c={concurrency}): service answers differ from the "
        "fresh-engine baseline"
    )
    return {
        "mix": mix_name,
        "concurrency": concurrency,
        "requests": len(schedule),
        "service_rps": warm["throughput_rps"],
        "baseline_rps": baseline["throughput_rps"],
        "speedup": warm["throughput_rps"] / baseline["throughput_rps"]
        if baseline["throughput_rps"]
        else 0.0,
        "p50_ms": warm["p50_ms"],
        "p95_ms": warm["p95_ms"],
        "p99_ms": warm["p99_ms"],
        "baseline_p50_ms": baseline["p50_ms"],
        "cache_hit_rate": round(
            stats["cache"]["hom_hits"]
            / max(1, stats["cache"]["hom_hits"] + stats["cache"]["hom_misses"]),
            3,
        ),
        "deadline_trips": stats["deadline_trips"],
        "rejected": stats["rejected_overload"],
        "peak_inflight": stats["peak_inflight"],
    }


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _print_table(rows: List[dict], columns: Sequence[str]) -> None:
    widths = {c: max(len(c), *(len(_fmt(r[c])) for r in rows)) for c in columns}
    print(" | ".join(c.ljust(widths[c]) for c in columns))
    print("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        print(" | ".join(_fmt(row[c]).ljust(widths[c]) for c in columns))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--people", type=int, default=60, help="graph size knob")
    parser.add_argument("--requests", type=int, default=200, help="requests per cell")
    parser.add_argument(
        "--concurrency",
        type=int,
        nargs="+",
        default=[1, 4, 8],
        help="client thread counts to sweep",
    )
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--smoke", action="store_true", help="smaller workload for CI smoke runs"
    )
    parser.add_argument(
        "--record",
        default="BENCH_service_load.json",
        help="where to write the JSON perf record",
    )
    parser.add_argument(
        "--table",
        default="BENCH_service_load_table.csv",
        help="where to write the run-table CSV",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.people = 30
        args.requests = 80
        args.concurrency = [2, 8]

    rows: List[dict] = []
    for mix_name in MIXES:
        for concurrency in args.concurrency:
            rows.append(
                run_cell(
                    graph_seed=args.seed,
                    people=args.people,
                    mix_name=mix_name,
                    requests=args.requests,
                    concurrency=concurrency,
                    schedule_seed=args.seed + concurrency,
                )
            )

    columns = [
        "mix",
        "concurrency",
        "requests",
        "service_rps",
        "baseline_rps",
        "speedup",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "baseline_p50_ms",
        "cache_hit_rate",
        "deadline_trips",
        "rejected",
        "peak_inflight",
    ]
    _print_table(rows, columns)

    with open(args.table, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row[c] for c in columns})
    print(f"\nwrote {args.table}")

    # The acceptance criterion is stated on the read-only cell at the
    # highest swept concurrency: warm shared session vs fresh engine per
    # request, identical answers (asserted per cell above).  Read-only is
    # where warmth is *attainable* — every graph update bumps the version
    # and (correctly) invalidates the per-version cache stores, so the
    # mixed cells measure how the service degrades under write traffic
    # (reported in the table and record), not the steady-state warm claim.
    assertion_cell = max(
        (r for r in rows if r["mix"] == "read-only"),
        key=lambda r: r["concurrency"],
    )
    record = {
        "benchmark": "service_load",
        "smoke": bool(args.smoke),
        "required_speedup": REQUIRED_SPEEDUP,
        "required_requests": REQUIRED_REQUESTS,
        "assertion_cell": {
            k: v for k, v in assertion_cell.items()
        },
        "cells": [dict(row) for row in rows],
    }
    with open(args.record, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.record}")

    assert assertion_cell["requests"] >= REQUIRED_REQUESTS, (
        f"workload too small: {assertion_cell['requests']} < {REQUIRED_REQUESTS} "
        "requests (increase --requests)"
    )
    speedup = assertion_cell["speedup"]
    assert speedup >= REQUIRED_SPEEDUP, (
        f"warm shared-session throughput is only {speedup:.2f}x the "
        f"fresh-engine baseline on the {assertion_cell['mix']} cell at "
        f"concurrency {assertion_cell['concurrency']} "
        f"(required: >= {REQUIRED_SPEEDUP}x)"
    )
    print(
        f"\nOK: warm service serves {speedup:.2f}x the fresh-engine baseline "
        f"throughput on {assertion_cell['requests']} {assertion_cell['mix']} "
        f"requests at concurrency {assertion_cell['concurrency']} "
        f"(>= {REQUIRED_SPEEDUP}x required), answers identical."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
