#!/usr/bin/env python3
"""Session enumeration throughput: batched multi-pattern vs per-pattern loop.

The claim behind :meth:`repro.evaluation.session.Session.solutions_many`
(the ROADMAP's "batched enumeration over many patterns/graphs" item):
enumerating a multi-pattern workload through one session must beat a loop of
independent per-pattern :meth:`Engine.solutions` calls by a wide margin,
with *identical* answer sets.

The workload models a production query log: a stream of pattern instances
drawn from a smaller set of distinct queries (real traffic repeats queries
heavily), evaluated against one data graph.  The session wins twice:

* **deduplication** — structurally repeated patterns are enumerated once
  and fanned back out;
* **shared cache** — distinct patterns drawn from the same vocabulary share
  the graph's target index and the memoized child extension tests of
  Lemma 1 across their enumerations.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_session_enumeration.py [--smoke]

It prints a throughput table (pattern instances/second) for

* ``looped``  — one fresh cache-less ``Engine.solutions`` call per pattern
  instance;
* ``batched`` — one ``Session.solutions_many`` call over the whole list;

plus a **warm-parent parallel** case comparing

* ``cold workers`` — parallel ``solutions_many`` with ``warm_on_fork=False``:
  every enumeration worker rebuilds its cache (index, searches) from
  scratch;
* ``warm parent``  — the same parallel call on a steady-state session whose
  cache holds every cell's recorded answer list: the cells replay
  parent-side and **never reach the pool** (the PR 5 replay
  short-circuit), which is the intended steady state of parallel serving;

plus a **return-channel** case ("second parallel batch, warm parent")
comparing, on one session,

* ``first batch``  — a parallel ``solutions_many`` over a cold parent: this
  is the run that actually exercises the warm-**fork** pool (the parent
  warms µ-independent state and the workers inherit the live session),
  and the workers ship their learned state back as ``CacheDelta``\\ s the
  parent absorbs;
* ``second batch`` — the identical parallel call again: every cell now
  replays from the parent cache (nonzero ``enum_hits``) without
  recomputing;

**asserts** the acceptance criteria — batched throughput at least 2x the
looped throughput across >= 10 pattern instances, warm-parent parallel
enumeration at least 1.5x the cold-worker baseline, and the second
(warm-parent) batch at least 2x the first — each with identical answer
sets — and writes a machine-readable perf record to
``BENCH_session_enumeration.json``.  (The warm-parent assertion needs the
``fork`` start method for its cold-worker baseline and is
reported-but-skipped elsewhere; the return-channel case runs on every
start method.)
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pickle
import time
from typing import List, Tuple

from repro.evaluation import Engine, Session
from repro.experiments.harness import time_batched_enumeration
from repro.patterns import WDPatternForest
from repro.rdf.generators import random_graph
from repro.workloads.random_patterns import random_wd_tree

#: Minimum batched-over-looped speedup the session layer must deliver.
REQUIRED_SPEEDUP = 2.0
#: Minimum workload size the requirement is stated for.
REQUIRED_PATTERNS = 10
#: Minimum warm-parent-over-cold-worker speedup for parallel enumeration.
PARALLEL_REQUIRED_SPEEDUP = 1.5
#: Minimum second-batch-over-first speedup for the CacheDelta return channel.
RETURN_CHANNEL_REQUIRED_SPEEDUP = 2.0


def query_log_workload(
    distinct: int,
    repeats: int,
    num_nodes: int,
    graph_nodes: int,
    graph_triples: int,
    seed: int,
) -> Tuple[List[WDPatternForest], object]:
    """A pattern stream of ``distinct`` random wdPTs, each appearing
    ``repeats`` times (interleaved, like a real query log), plus the shared
    data graph they are enumerated against."""
    forests = [
        WDPatternForest([random_wd_tree(num_nodes=num_nodes, seed=seed + i)])
        for i in range(distinct)
    ]
    workload = [forests[i % distinct] for i in range(distinct * repeats)]
    graph = random_graph(graph_nodes, graph_triples, seed=seed)
    return workload, graph


def _best_of(function, repeat: int):
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _canonical(answer_sets) -> bytes:
    """Order-independent byte form of a list of answer sets."""
    return pickle.dumps([sorted(map(repr, answers)) for answers in answer_sets])


def run_benchmark(
    distinct: int = 5,
    repeats: int = 4,
    num_nodes: int = 4,
    graph_nodes: int = 14,
    graph_triples: int = 90,
    seed: int = 23,
    repeat: int = 1,
) -> dict:
    workload, graph = query_log_workload(
        distinct, repeats, num_nodes, graph_nodes, graph_triples, seed
    )

    # Baseline: one fresh, cache-less engine per pattern instance.
    t_looped, looped = _best_of(
        lambda: [
            Engine(forest=forest).solutions(graph, method="natural") for forest in workload
        ],
        repeat,
    )
    # A fresh Session per run so the timing includes building the cache.
    t_batched, batched = _best_of(
        lambda: Session().solutions_many(workload, graph, method="natural"),
        repeat,
    )

    assert _canonical(batched) == _canonical(looped), "batched answer sets differ"
    n = len(workload)
    return {
        "patterns": n,
        "distinct": distinct,
        "|G|": len(graph),
        "solutions": sum(len(answers) for answers in looped),
        "looped (patterns/s)": n / t_looped,
        "batched (patterns/s)": n / t_batched,
        "looped_seconds": t_looped,
        "batched_seconds": t_batched,
        "speedup (batched/looped)": t_looped / t_batched,
    }


def run_parallel_benchmark(
    distinct: int = 8,
    repeats: int = 3,
    num_nodes: int = 5,
    graph_nodes: int = 18,
    graph_triples: int = 140,
    seed: int = 31,
    processes: int = 2,
    repeat: int = 1,
) -> dict:
    """The warm-parent case: parallel enumeration, cold workers vs replay.

    Both sides make the identical parallel call over the identical distinct
    cells.  The cold side (``warm_on_fork=False``) forks workers that
    rebuild their caches from scratch; the warm side runs on a steady-state
    session whose cache holds every cell's recorded answer list, so the
    cells replay parent-side and the pool is never created — the intended
    steady state of parallel serving.  (The warm-*fork* pool path itself —
    workers inheriting a live parent session — is what the return-channel
    case's first batch runs and times.)  Answer sets are asserted identical
    to a serial run.
    """
    workload, graph = query_log_workload(
        distinct, repeats, num_nodes, graph_nodes, graph_triples, seed
    )
    serial = Session().solutions_many(workload, graph, method="natural")

    t_cold, cold = time_batched_enumeration(
        workload, graph, method="natural", processes=processes,
        warm=False, warm_on_fork=False, repeat=repeat,
    )
    t_warm, warm = time_batched_enumeration(
        workload, graph, method="natural", processes=processes,
        warm=True, repeat=repeat,
    )

    assert _canonical(cold) == _canonical(serial), "cold-worker answer sets differ"
    assert _canonical(warm) == _canonical(serial), "warm-parent answer sets differ"
    n = len(workload)
    return {
        "patterns": n,
        "distinct": distinct,
        "|G|": len(graph),
        "processes": processes,
        "solutions": sum(len(answers) for answers in serial),
        "cold workers (patterns/s)": n / t_cold,
        "warm parent (patterns/s)": n / t_warm,
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "speedup (warm/cold)": t_cold / t_warm,
    }


def run_return_channel_benchmark(
    distinct: int = 8,
    repeats: int = 3,
    num_nodes: int = 5,
    graph_nodes: int = 18,
    graph_triples: int = 140,
    seed: int = 31,
    processes: int = 2,
) -> dict:
    """The return-channel case: second parallel batch over a warm parent.

    One session runs the identical parallel ``solutions_many`` twice.  The
    first batch's workers ship their learned state (homomorphism lists,
    complete per-tree answer lists) back as ``CacheDelta``\\ s; the parent
    absorbs them, so the second batch replays every cell from the parent
    cache (``enum_hits`` > 0) instead of recomputing — before this channel
    existed, the workers' caches died with the pool and the second batch
    repeated all the work.  Answer sets are asserted bitwise-identical
    between the two batches and against a serial run.
    """
    workload, graph = query_log_workload(
        distinct, repeats, num_nodes, graph_nodes, graph_triples, seed
    )
    serial = Session().solutions_many(workload, graph, method="natural")

    session = Session()
    start = time.perf_counter()
    first = session.solutions_many(workload, graph, method="natural", processes=processes)
    t_first = time.perf_counter() - start
    absorbed = session.cache.statistics.delta_entries
    hits_before = session.cache.statistics.enum_hits
    start = time.perf_counter()
    second = session.solutions_many(workload, graph, method="natural", processes=processes)
    t_second = time.perf_counter() - start
    enum_hits = session.cache.statistics.enum_hits - hits_before

    assert _canonical(first) == _canonical(serial), "first-batch answer sets differ"
    assert _canonical(second) == _canonical(first), "second-batch answer sets differ"
    assert absorbed > 0, "no CacheDelta entries flowed back from the workers"
    assert enum_hits > 0, "second parallel batch did not hit the parent cache"
    n = len(workload)
    return {
        "patterns": n,
        "distinct": distinct,
        "|G|": len(graph),
        "processes": processes,
        "solutions": sum(len(answers) for answers in serial),
        "absorbed delta entries": absorbed,
        "second-batch enum hits": enum_hits,
        "first batch (patterns/s)": n / t_first,
        "second batch (patterns/s)": n / t_second,
        "first_seconds": t_first,
        "second_seconds": t_second,
        "speedup (second/first)": t_first / t_second,
    }


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _print_table(row: dict) -> None:
    columns = list(row)
    widths = {c: max(len(c), len(_fmt(row[c]))) for c in columns}
    print(" | ".join(c.ljust(widths[c]) for c in columns))
    print("-+-".join("-" * widths[c] for c in columns))
    print(" | ".join(_fmt(row[c]).ljust(widths[c]) for c in columns))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--distinct", type=int, default=5, help="distinct patterns in the log")
    parser.add_argument("--repeats", type=int, default=4, help="occurrences of each pattern")
    parser.add_argument("--num-nodes", type=int, default=4, help="wdPT nodes per pattern")
    parser.add_argument("--graph-nodes", type=int, default=14)
    parser.add_argument("--graph-triples", type=int, default=90)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--repeat", type=int, default=1, help="timing repetitions (best-of)")
    parser.add_argument(
        "--processes", type=int, default=2, help="pool size for the parallel cases"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="smaller workload for CI smoke runs"
    )
    parser.add_argument(
        "--record",
        default="BENCH_session_enumeration.json",
        help="where to write the JSON perf record",
    )
    args = parser.parse_args(argv)

    # Workload flags the user explicitly changed also apply to the parallel
    # case (which has its own heavier defaults); record them before the
    # smoke tuning rewrites args.
    workload_flags = ("distinct", "repeats", "num_nodes", "graph_nodes", "graph_triples", "seed")
    user_overrides = {
        name: getattr(args, name)
        for name in workload_flags
        if getattr(args, name) != parser.get_default(name)
    }

    if args.smoke:
        args.distinct = 4
        args.repeats = 3
        args.graph_nodes = 10
        args.graph_triples = 60

    row = run_benchmark(
        distinct=args.distinct,
        repeats=args.repeats,
        num_nodes=args.num_nodes,
        graph_nodes=args.graph_nodes,
        graph_triples=args.graph_triples,
        seed=args.seed,
        repeat=args.repeat,
    )
    _print_table(row)

    fork_available = multiprocessing.get_start_method(allow_none=False) == "fork"
    parallel_row = None
    parallel_workload = dict(processes=args.processes)
    if args.smoke:
        parallel_workload.update(distinct=6, repeats=3, graph_nodes=16, graph_triples=110)
    parallel_workload.update(user_overrides)
    if fork_available:
        parallel_row = run_parallel_benchmark(repeat=args.repeat, **parallel_workload)
        print()
        _print_table(parallel_row)
    else:
        print("\n(parallel warm-parent case skipped: 'fork' start method unavailable)")

    # The return channel works on every start method (deltas are pickled
    # back); no fork gate.
    return_channel_row = run_return_channel_benchmark(**parallel_workload)
    print()
    _print_table(return_channel_row)

    record = {
        "benchmark": "session_enumeration",
        "smoke": bool(args.smoke),
        "required_speedup": REQUIRED_SPEEDUP,
        "required_patterns": REQUIRED_PATTERNS,
        "parallel_required_speedup": PARALLEL_REQUIRED_SPEEDUP,
        "return_channel_required_speedup": RETURN_CHANNEL_REQUIRED_SPEEDUP,
        **row,
        "parallel": parallel_row,
        "return_channel": return_channel_row,
    }
    with open(args.record, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.record}")

    assert row["patterns"] >= REQUIRED_PATTERNS, (
        f"workload too small: {row['patterns']} < {REQUIRED_PATTERNS} pattern "
        "instances (increase --distinct/--repeats)"
    )
    speedup = row["speedup (batched/looped)"]
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched enumeration is only {speedup:.1f}x the looped throughput "
        f"(required: >= {REQUIRED_SPEEDUP}x)"
    )
    print(
        f"OK: batched enumeration is {speedup:.1f}x looped on {row['patterns']} "
        f"pattern instances (>= {REQUIRED_SPEEDUP}x required), answer sets identical."
    )
    if parallel_row is not None:
        parallel_speedup = parallel_row["speedup (warm/cold)"]
        assert parallel_speedup >= PARALLEL_REQUIRED_SPEEDUP, (
            f"warm-parent parallel enumeration is only {parallel_speedup:.2f}x the "
            f"cold-worker baseline (required: >= {PARALLEL_REQUIRED_SPEEDUP}x)"
        )
        print(
            f"OK: warm-parent parallel enumeration (cells replay parent-side, "
            f"pool-free) is {parallel_speedup:.1f}x the "
            f"cold-worker baseline on {parallel_row['patterns']} pattern instances "
            f"x {parallel_row['processes']} workers "
            f"(>= {PARALLEL_REQUIRED_SPEEDUP}x required), answer sets identical."
        )
    return_channel_speedup = return_channel_row["speedup (second/first)"]
    assert return_channel_speedup >= RETURN_CHANNEL_REQUIRED_SPEEDUP, (
        f"the second (warm-parent) parallel batch is only "
        f"{return_channel_speedup:.2f}x the first "
        f"(required: >= {RETURN_CHANNEL_REQUIRED_SPEEDUP}x)"
    )
    print(
        f"OK: the second parallel batch over a warm parent is "
        f"{return_channel_speedup:.1f}x the first on "
        f"{return_channel_row['patterns']} pattern instances "
        f"({return_channel_row['absorbed delta entries']} delta entries absorbed, "
        f"{return_channel_row['second-batch enum hits']} cache hits; "
        f">= {RETURN_CHANNEL_REQUIRED_SPEEDUP}x required), answer sets identical."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
