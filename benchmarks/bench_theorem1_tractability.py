"""E4 — Theorem 1: the pebble-relaxation evaluator on the bounded-dw family F_k.

Times membership checking with the Theorem 1 algorithm (existential 2-pebble
game, since dw(F_k) = 1) against the exact natural algorithm on the same
instances, for growing data graphs and growing k.  The two must agree on
every query (Theorem 1 exactness), and the pebble algorithm's cost must stay
polynomial in the graph size.
"""

import pytest

from repro.evaluation import forest_contains, forest_contains_pebble, forest_solutions
from repro.sparql import Mapping
from repro.rdf.terms import IRI
from repro.workloads.families import fk_data_graph, fk_forest


def _queries(forest, graph, limit=4):
    solutions = sorted(forest_solutions(forest, graph), key=repr)[:limit]
    perturbed = []
    for mu in solutions[: limit // 2]:
        bindings = mu.as_dict()
        if bindings:
            first = sorted(bindings, key=lambda v: v.name)[0]
            bindings[first] = IRI("http://example.org/__nowhere__")
            perturbed.append(Mapping(bindings))
    return solutions + perturbed


def _setting(k, graph_size):
    forest = fk_forest(k)
    graph = fk_data_graph(graph_size, graph_size * 6, clique_size=k, seed=graph_size)
    return forest, graph, _queries(forest, graph)


@pytest.mark.parametrize("graph_size", [10, 20, 40])
@pytest.mark.parametrize("k", [2, 4])
def bench_pebble_membership_fk(benchmark, k, graph_size):
    forest, graph, queries = _setting(k, graph_size)
    answers = benchmark(lambda: [forest_contains_pebble(forest, graph, mu, 1) for mu in queries])
    exact = [forest_contains(forest, graph, mu) for mu in queries]
    assert answers == exact  # Theorem 1: exact on bounded domination width


@pytest.mark.parametrize("graph_size", [10, 20, 40])
@pytest.mark.parametrize("k", [2, 4])
def bench_natural_membership_fk(benchmark, k, graph_size):
    forest, graph, queries = _setting(k, graph_size)
    benchmark(lambda: [forest_contains(forest, graph, mu) for mu in queries])
