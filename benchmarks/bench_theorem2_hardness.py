"""E7 — Theorem 2: solving CLIQUE through the co-wdEVAL reduction.

Times the full pipeline (Lemma 3 witness -> Lemma 2 construction -> freezing
-> natural co-wdEVAL evaluation) for growing clique parameter k, asserting
that the answers match brute force.  The per-k cost grows steeply with k —
the fpt behaviour the W[1]-hardness result predicts — while the brute-force
baseline on the same tiny hosts stays negligible.
"""

import pytest

from repro.reductions import solve_clique_via_wdeval
from repro.workloads.clique_instances import (
    has_clique_bruteforce,
    plant_clique,
    random_host_graph,
)


def _host(k, planted, seed=5):
    host = random_host_graph(6, 0.3, seed=seed)
    if planted:
        host, _ = plant_clique(host, k, seed=seed)
    return host


@pytest.mark.parametrize("planted", [False, True])
@pytest.mark.parametrize("k", [2, 3])
def bench_clique_via_reduction(benchmark, k, planted):
    host = _host(k, planted)
    expected = has_clique_bruteforce(host, k)
    answer = benchmark.pedantic(
        lambda: solve_clique_via_wdeval(host, k), rounds=1, iterations=1, warmup_rounds=0
    )
    assert answer == expected


@pytest.mark.parametrize("k", [2, 3, 4])
def bench_clique_bruteforce_baseline(benchmark, k):
    host = _host(k, planted=True)
    assert benchmark(lambda: has_clique_bruteforce(host, k))
