"""Shared fixtures for the benchmark harness.

Every experiment of DESIGN.md (E1-E9) has a ``bench_*.py`` file here; running

    pytest benchmarks/ --benchmark-only

regenerates the timing series, and each benchmark asserts the paper's claim
(shape of the result) on the measured workload.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks are long-running by nature; keep the calibration modest so the
    # whole harness finishes in minutes.
    config.option.benchmark_min_rounds = min(getattr(config.option, "benchmark_min_rounds", 5), 3)
