#!/usr/bin/env python3
"""Demonstrate the Theorem 2 hardness reduction: solving CLIQUE via co-wdEVAL.

The script builds CLIQUE instances (with and without a planted clique), runs
the fpt-reduction of Theorem 2 (Lemma 3 witness + Lemma 2 construction +
variable freezing) and decides the instances by evaluating the resulting
well-designed query — then cross-checks against brute force.

Run with::

    python examples/clique_reduction_demo.py
"""

import time

from repro.patterns import WDPatternForest
from repro.reductions import clique_reduction, minimum_family_index, solve_clique_via_wdeval
from repro.workloads.clique_instances import has_clique_bruteforce, plant_clique, random_host_graph
from repro.workloads.families import hard_clique_tree


def describe_instance(host, k) -> None:
    index = minimum_family_index(k)
    forest = WDPatternForest([hard_clique_tree(index)])
    start = time.perf_counter()
    instance = clique_reduction(forest, host, k)
    build_time = time.perf_counter() - start

    start = time.perf_counter()
    answer = instance.co_wdeval_answer()
    solve_time = time.perf_counter() - start
    expected = has_clique_bruteforce(host, k)

    print(f"  host: {host.number_of_nodes()} vertices / {host.number_of_edges()} edges,  k = {k}")
    print(f"  query family member: Q_{index}  (domination width {index - 1})")
    print(f"  reduced RDF graph: {len(instance.graph)} triples,  |dom(µ)| = {len(instance.mapping)}")
    print(f"  co-wdEVAL answer (µ ∉ ⟦P⟧G): {answer}   brute-force k-clique: {expected}")
    print(f"  correct: {answer == expected}   (build {build_time:.2f}s, solve {solve_time:.2f}s)\n")


def main() -> None:
    print("Theorem 2: p-CLIQUE reduces to p-co-wdEVAL for unbounded-width classes\n")

    print("k = 2 (does the graph contain an edge?)")
    describe_instance(random_host_graph(6, 0.25, seed=3), 2)

    print("k = 3, no planted triangle (sparse random graph)")
    describe_instance(random_host_graph(6, 0.2, seed=5), 3)

    print("k = 3, with a planted triangle")
    host, members = plant_clique(random_host_graph(6, 0.2, seed=5), 3, seed=5)
    print(f"  (planted clique on vertices {members})")
    describe_instance(host, 3)

    print("Convenience wrapper: solve_clique_via_wdeval(H, k)")
    host = random_host_graph(7, 0.45, seed=11)
    start = time.perf_counter()
    answer = solve_clique_via_wdeval(host, 3)
    elapsed = time.perf_counter() - start
    print(f"  random G(7, 0.45): 3-clique = {answer} "
          f"(brute force: {has_clique_bruteforce(host, 3)}) in {elapsed:.2f}s")


if __name__ == "__main__":
    main()
