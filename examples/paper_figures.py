#!/usr/bin/env python3
"""Regenerate the paper's figures (1-3) as concrete objects and print them.

* Figure 1 / Example 3: the generalised t-graphs (S, X) and (S', X), their
  cores and core treewidths;
* Figure 2 / Example 4: the pattern forest F_k;
* Figure 3 / Example 4-5: the members of GtG(T1[r1]) and the domination
  relation between them.

Run with::

    python examples/paper_figures.py [k]
"""

import sys

from repro.hom import core_of, ctw, maps_to, tw
from repro.patterns.gtg import gtg, support, valid_children_assignments
from repro.width import domination_width, local_width_of_forest
from repro.workloads.families import example3_gtgraphs, fk_forest


def show_gtgraph(name, gtgraph) -> None:
    triples = ", ".join(str(t) for t in sorted(gtgraph.triples()))
    distinguished = ", ".join(str(v) for v in sorted(gtgraph.distinguished))
    print(f"  {name} = ({{{triples}}}, {{{distinguished}}})")


def figure1(k: int) -> None:
    print(f"=== Figure 1 / Example 3 (k = {k}) ===")
    s, s_prime = example3_gtgraphs(k)
    show_gtgraph("(S, X)", s)
    print(f"    ctw(S, X)  = {ctw(s)}   (paper: k - 1 = {k - 1})")
    show_gtgraph("(S', X)", s_prime)
    print(f"    tw(S', X)  = {tw(s_prime)}   (paper: k - 1 = {k - 1})")
    core = core_of(s_prime)
    show_gtgraph("core(S', X)", core)
    print(f"    ctw(S', X) = {ctw(s_prime)}   (paper: 1)\n")


def figure2(k: int) -> None:
    print(f"=== Figure 2 / Example 4: the wdPF F_{k} ===")
    forest = fk_forest(k)
    print(forest.pretty())
    print(f"\n  dw(F_{k}) = {domination_width(forest)}   (paper: 1)")
    print(f"  local width = {local_width_of_forest(forest)}   (paper: k - 1 = {k - 1})\n")


def figure3(k: int) -> None:
    print(f"=== Figure 3 / Examples 4-5: GtG(T1[r1]) for F_{k} ===")
    forest = fk_forest(k)
    subtree = forest[0].root_subtree()
    supp = support(forest, subtree)
    print(f"  supp(T1[r1]) = {sorted(i + 1 for i in supp)}   (paper: {{1, 2}})")
    assignments = list(valid_children_assignments(forest, subtree))
    print(f"  |VCA(T1[r1])| = {len(assignments)}   (paper: 2)")
    members = sorted(gtg(forest, subtree), key=ctw)
    for index, member in enumerate(members, start=1):
        show_gtgraph(f"S_Δ{index}", member)
        print(f"    ctw = {ctw(member)}")
    if len(members) == 2:
        print(f"  (S_Δ1, X) → (S_Δ2, X): {maps_to(members[0], members[1])}   (paper: yes — so GtG is 1-dominated)")


def main(k: int = 3) -> None:
    figure1(k)
    figure2(k)
    figure3(k)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
