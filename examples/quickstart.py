#!/usr/bin/env python3
"""Quickstart: build an RDF graph, write well-designed patterns, evaluate them,
and inspect the width measures that govern tractability.

Run with::

    python examples/quickstart.py
"""

from repro import Engine, Mapping, parse_pattern, to_text
from repro.rdf import RDFGraph, Triple
from repro.sparql import is_well_designed
from repro.width import branch_treewidth_of_pattern, domination_width_of_pattern, local_width_of_pattern


def build_graph() -> RDFGraph:
    """A tiny address book: everybody is known, some people have emails."""
    return RDFGraph(
        [
            Triple.of("alice", "knows", "bob"),
            Triple.of("alice", "knows", "carol"),
            Triple.of("bob", "knows", "carol"),
            Triple.of("bob", "email", "mailto:bob@example.org"),
            Triple.of("carol", "phone", "tel:555-0100"),
        ]
    )


def main() -> None:
    graph = build_graph()
    print(f"data graph: {len(graph)} triples")

    # An OPTIONAL query: who does ?x know, and - if available - that person's email.
    pattern = parse_pattern("((?x knows ?y) OPT (?y email ?e))")
    print(f"\nquery: {to_text(pattern)}")
    print(f"well-designed: {is_well_designed(pattern)}")

    engine = Engine(pattern, width_bound=1)
    print("\nsolutions (note the OPTIONAL semantics: maximal mappings only):")
    for mapping in sorted(engine.solutions(graph), key=repr):
        print(f"  {mapping}")

    # Membership checks: the paper's wdEVAL problem.
    mu_good = Mapping.of(x="alice", y="carol")
    mu_bad = Mapping.of(x="alice", y="bob")  # not maximal: bob's email exists
    print(f"\nµ = {mu_good} in answers?  {engine.contains(graph, mu_good)}")
    print(f"µ = {mu_bad} in answers?  {engine.contains(graph, mu_bad)}")
    print("per-method agreement:", engine.contains_all_methods(graph, mu_good))

    # The width measures that decide tractability (Theorem 3 of the paper).
    print("\nwidth measures of the query:")
    print(f"  domination width  dw(P) = {domination_width_of_pattern(pattern)}")
    print(f"  branch treewidth  bw(P) = {branch_treewidth_of_pattern(pattern)}")
    print(f"  local width            = {local_width_of_pattern(pattern)}")
    print(
        "\nBounded domination width means the membership checks above run in\n"
        "polynomial time via the existential (k+1)-pebble game (Theorem 1)."
    )


if __name__ == "__main__":
    main()
