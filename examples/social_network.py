#!/usr/bin/env python3
"""Social-network workload: OPTIONAL-heavy queries over a synthetic FOAF graph.

This is the motivating scenario for the OPTIONAL operator: contact data is
incomplete, so queries ask for friends *and, when available*, their email /
phone / city.  The example evaluates three well-designed queries over a
synthetic small-world network, compares the exact natural algorithm with the
Theorem 1 pebble algorithm, and reports their width measures.

Run with::

    python examples/social_network.py [num_people]
"""

import sys
import time

from repro import Engine, parse_pattern, to_text
from repro.rdf.generators import social_network_graph
from repro.rdf.namespace import FOAF
from repro.width import domination_width_of_pattern, local_width_of_pattern


def queries() -> dict:
    """Three well-designed AND/OPT/UNION queries over the FOAF vocabulary."""
    knows, mbox, phone, based = FOAF.knows.value, FOAF.mbox.value, FOAF.phone.value, FOAF.basedNear.value
    return {
        "friends+email": parse_pattern(f"((?x <{knows}> ?y) OPT (?y <{mbox}> ?e))"),
        "friends+email+phone": parse_pattern(
            f"(((?x <{knows}> ?y) OPT (?y <{mbox}> ?e)) OPT (?y <{phone}> ?t))"
        ),
        "reachable-or-colocated": parse_pattern(
            f"((?x <{knows}> ?y) OPT (?y <{mbox}> ?e))"
            f" UNION ((?x <{based}> ?c) AND (?y <{based}> ?c))"
        ),
    }


def main(num_people: int = 40) -> None:
    graph = social_network_graph(num_people, seed=7)
    print(f"social network: {num_people} people, {len(graph)} triples\n")

    for name, pattern in queries().items():
        engine = Engine(pattern, width_bound=1)
        start = time.perf_counter()
        solutions = engine.solutions(graph, method="natural")
        enumerate_time = time.perf_counter() - start

        sample = sorted(solutions, key=repr)[:5]
        start = time.perf_counter()
        natural = [engine.contains(graph, mu, method="natural") for mu in sample]
        natural_time = time.perf_counter() - start
        start = time.perf_counter()
        pebble = [engine.contains(graph, mu, method="pebble") for mu in sample]
        pebble_time = time.perf_counter() - start

        print(f"query '{name}':  {to_text(pattern)}")
        print(f"  domination width: {domination_width_of_pattern(pattern)}"
              f"   local width: {local_width_of_pattern(pattern)}")
        print(f"  solutions: {len(solutions)}  (enumerated in {enumerate_time:.3f}s)")
        print(f"  membership on {len(sample)} sampled solutions: "
              f"natural {natural_time:.3f}s, pebble {pebble_time:.3f}s, "
              f"agreement: {natural == pebble}")
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
