#!/usr/bin/env python3
"""Classify query families along the paper's tractability frontier.

For each family of the paper (F_k of Figure 2, T'_k of Section 3.2, the
unbounded family Q_k and an OPT-chain control), the script reports the three
width measures and the verdict Theorem 3 gives: classes of bounded domination
width are exactly the polynomial-time evaluable ones.

Run with::

    python examples/tractability_analysis.py
"""

from repro.patterns import WDPatternForest
from repro.width import branch_treewidth, domination_width, local_width, local_width_of_forest
from repro.workloads.families import chain_tree, fk_forest, hard_clique_tree, tprime_tree


def analyse_forest(name: str, forest, ks) -> None:
    print(f"family {name}")
    print(f"  {'k':>3} | {'dw':>4} | {'local width':>11} | verdict")
    print(f"  {'-' * 3}-+-{'-' * 4}-+-{'-' * 11}-+-{'-' * 30}")
    widths = []
    for k in ks:
        member = forest(k)
        if isinstance(member, WDPatternForest):
            dw = domination_width(member)
            local = local_width_of_forest(member)
        else:
            tree = member
            member = WDPatternForest([tree])
            dw = branch_treewidth(tree)
            local = local_width(tree)
        widths.append(dw)
        verdict = "tractable (bounded dw)" if dw <= widths[0] else "width grows with k"
        print(f"  {k:>3} | {dw:>4} | {local:>11} | {verdict}")
    bounded = max(widths) == min(widths)
    print(
        f"  => class has {'BOUNDED' if bounded else 'UNBOUNDED'} domination width: "
        f"{'PTIME evaluation (Theorem 1)' if bounded else 'coNP-hard tail, W[1]-hard parameterised (Theorem 2)'}\n"
    )


def main() -> None:
    print("The tractability frontier of well-designed SPARQL (Romero, PODS 2018)\n")
    analyse_forest("F_k (Figure 2: UNION of three pattern trees)", fk_forest, ks=(2, 3, 4))
    analyse_forest("T'_k (Section 3.2: self-loop root + K_k child)", tprime_tree, ks=(2, 3, 4))
    analyse_forest("OPT chain (control, locally tractable)", chain_tree, ks=(2, 3, 4))
    analyse_forest("Q_k (root edge + K_k child: unbounded width)", hard_clique_tree, ks=(2, 3, 4))
    print(
        "Note how F_k and T'_k are NOT locally tractable (local width = k-1) yet\n"
        "have constant domination width: they sit strictly inside the new\n"
        "tractable region identified by the paper."
    )


if __name__ == "__main__":
    main()
