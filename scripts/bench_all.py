#!/usr/bin/env python3
"""Run every ``BENCH_*``-writing benchmark and refresh its perf record.

The perf history of this repository lives in the ``BENCH_*.json`` records
at the repository root; each is written by one script under ``benchmarks/``
that also *asserts* its speedup claim.  This driver discovers those scripts
(by the record filename they write), runs each one — in ``--smoke`` mode by
default, so a CI box refreshes every record in seconds — and reports which
records changed.  CI runs it on every build and uploads the refreshed
records as artifacts, so the perf trajectory actually accumulates instead
of depending on someone remembering to run each benchmark by hand.

Usage::

    PYTHONPATH=src python scripts/bench_all.py [--full] [--list]

``--list`` prints the discovered benchmarks without running anything (used
by the tests to pin discovery).  ``--full`` runs the full workloads instead
of the smoke ones.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHMARKS = REPO_ROOT / "benchmarks"

#: Matches the record filename a benchmark writes (its argparse default).
_RECORD_PATTERN = re.compile(r"BENCH_[A-Za-z0-9_]+\.json")


def discover() -> List[Tuple[Path, str, bool]]:
    """Every ``(script, record, supports_smoke)`` under ``benchmarks/``.

    A script participates iff its source names a ``BENCH_*.json`` record; it
    is run with ``--smoke`` iff it advertises the flag.
    """
    found: List[Tuple[Path, str, bool]] = []
    for script in sorted(BENCHMARKS.glob("bench_*.py")):
        source = script.read_text(encoding="utf-8")
        match = _RECORD_PATTERN.search(source)
        if match is None:
            continue
        found.append((script, match.group(0), "--smoke" in source))
    return found


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true", help="run the full workloads, not the smoke ones"
    )
    parser.add_argument(
        "--list", action="store_true", help="print the discovered benchmarks and exit"
    )
    args = parser.parse_args(argv)

    benchmarks = discover()
    if args.list:
        for script, record, supports_smoke in benchmarks:
            mode = "smoke" if supports_smoke and not args.full else "full"
            print(f"{script.relative_to(REPO_ROOT)} -> {record} ({mode})")
        return 0
    if not benchmarks:
        print("error: no BENCH_*-writing benchmarks discovered", file=sys.stderr)
        return 1

    failures = []
    for script, record, supports_smoke in benchmarks:
        command = [sys.executable, str(script)]
        if supports_smoke and not args.full:
            command.append("--smoke")
        print(f"=== {script.name} -> {record}", flush=True)
        result = subprocess.run(command, cwd=REPO_ROOT)
        if result.returncode != 0:
            failures.append(script.name)
            print(f"FAILED: {script.name} (exit {result.returncode})", file=sys.stderr)

    written = [record for _, record, _ in benchmarks if (REPO_ROOT / record).exists()]
    print(f"\nrecords refreshed: {', '.join(written) if written else '(none)'}")
    if failures:
        print(f"error: {len(failures)} benchmark(s) failed: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
