#!/usr/bin/env python3
"""Documentation checks: resolve relative links, smoke-run python snippets.

Run from the repository root (CI does both as one step)::

    PYTHONPATH=src python scripts/check_docs.py

Two checks over ``README.md`` and every ``docs/*.md``:

* **link check** — every relative markdown link target (``[text](path)``)
  must exist on disk (anchors are stripped; ``http(s)``/``mailto`` links
  are not fetched);
* **snippet smoke** — every fenced ```` ```python ```` block that looks
  self-contained (no ``...`` placeholder ellipses) is executed in a fresh
  namespace, so the documentation's code can never silently rot.  Blocks
  with placeholders are skipped but counted, and the summary prints both
  numbers.

The module is importable (``check_links`` / ``run_snippets``) — the tier-1
suite runs the same checks via ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: Markdown inline links: [text](target).  Images share the syntax.
_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
#: Fenced python code blocks.
_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _doc_files(root: Path) -> List[Path]:
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_links(root: Path) -> List[str]:
    """Return one error string per broken relative link (empty = all good)."""
    errors: List[str] = []
    for path in _doc_files(root):
        for match in _LINK.finditer(path.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(root)}: broken link -> {target}")
    return errors


def run_snippets(root: Path) -> Tuple[int, int, List[str]]:
    """Execute the self-contained python snippets of every doc file.

    Returns ``(executed, skipped, errors)``; a snippet is skipped when it
    contains a ``...`` placeholder (illustrative, not runnable).
    """
    executed = 0
    skipped = 0
    errors: List[str] = []
    for path in _doc_files(root):
        for index, match in enumerate(_PYTHON_BLOCK.finditer(path.read_text(encoding="utf-8"))):
            code = match.group(1)
            if "..." in code or "…" in code:
                skipped += 1
                continue
            try:
                exec(compile(code, f"{path.name}[snippet {index}]", "exec"), {"__name__": "__doc_snippet__"})
                executed += 1
            except Exception as error:  # noqa: BLE001 - report and continue
                errors.append(f"{path.relative_to(root)} snippet {index}: {type(error).__name__}: {error}")
    return executed, skipped, errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(root / "src"))  # snippets import `repro`
    link_errors = check_links(root)
    executed, skipped, snippet_errors = run_snippets(root)
    for error in link_errors + snippet_errors:
        print(f"FAIL {error}")
    print(
        f"doc check: {len(_doc_files(root))} file(s), "
        f"{executed} snippet(s) executed, {skipped} skipped, "
        f"{len(link_errors)} broken link(s), {len(snippet_errors)} snippet failure(s)"
    )
    return 1 if link_errors or snippet_errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
