"""repro — a reproduction of "The Tractability Frontier of Well-designed
SPARQL Queries" (Miguel Romero, PODS 2018).

The library implements the full stack the paper builds on and contributes:

* an RDF substrate (:mod:`repro.rdf`);
* the AND/OPT/UNION SPARQL algebra with well-designedness checking
  (:mod:`repro.sparql`);
* well-designed pattern trees/forests and the ``GtG`` machinery
  (:mod:`repro.patterns`);
* homomorphisms, cores and treewidth (:mod:`repro.hom`);
* the existential k-pebble game (:mod:`repro.pebble`);
* the width measures — domination width, branch treewidth, local width
  (:mod:`repro.width`);
* three evaluation engines, including the Theorem 1 polynomial algorithm
  (:mod:`repro.evaluation`);
* the Theorem 2 hardness reduction from CLIQUE (:mod:`repro.reductions`);
* workload generators for the paper's example families
  (:mod:`repro.workloads`) and an experiment harness
  (:mod:`repro.experiments`).

Quick start::

    from repro import parse_pattern, Engine, Mapping
    from repro.rdf import RDFGraph, Triple

    graph = RDFGraph([Triple.of("alice", "knows", "bob")])
    pattern = parse_pattern("((?x knows ?y) OPT (?y email ?e))")
    engine = Engine(pattern)
    print(engine.solutions(graph))
"""

from .exceptions import (
    ReproError,
    RDFError,
    ParseError,
    NotWellDesignedError,
    PatternTreeError,
    EvaluationError,
    WidthComputationError,
    ReductionError,
)
from .rdf import IRI, Literal, Variable, Triple, TriplePattern, RDFGraph, Namespace
from .sparql import (
    GraphPattern,
    TriplePatternNode,
    And,
    Opt,
    Union,
    tp,
    conj,
    opt_chain,
    union_of,
    Mapping,
    parse_pattern,
    to_text,
    is_well_designed,
    check_well_designed,
)
from .hom import TGraph, GeneralizedTGraph, ctw, tw, core_of, has_homomorphism, maps_to
from .patterns import WDPatternTree, WDPatternForest, build_wdpt, wdpf
from .pebble import ConsistencyKernel, pebble_game_winner, pebble_maps_into
from .width import (
    domination_width,
    domination_width_of_pattern,
    branch_treewidth,
    branch_treewidth_of_pattern,
    local_width,
    local_width_of_pattern,
)
from .evaluation import (
    BatchEngine,
    Engine,
    EvalContext,
    EvaluationCache,
    Plan,
    Planner,
    Session,
    evaluate_pattern,
    forest_contains,
    forest_contains_pebble,
)
from .reductions import clique_reduction, solve_clique_via_wdeval

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "RDFError",
    "ParseError",
    "NotWellDesignedError",
    "PatternTreeError",
    "EvaluationError",
    "WidthComputationError",
    "ReductionError",
    # rdf
    "IRI",
    "Literal",
    "Variable",
    "Triple",
    "TriplePattern",
    "RDFGraph",
    "Namespace",
    # sparql
    "GraphPattern",
    "TriplePatternNode",
    "And",
    "Opt",
    "Union",
    "tp",
    "conj",
    "opt_chain",
    "union_of",
    "Mapping",
    "parse_pattern",
    "to_text",
    "is_well_designed",
    "check_well_designed",
    # hom
    "TGraph",
    "GeneralizedTGraph",
    "ctw",
    "tw",
    "core_of",
    "has_homomorphism",
    "maps_to",
    # patterns
    "WDPatternTree",
    "WDPatternForest",
    "build_wdpt",
    "wdpf",
    # pebble
    "pebble_game_winner",
    "pebble_maps_into",
    "ConsistencyKernel",
    # width
    "domination_width",
    "domination_width_of_pattern",
    "branch_treewidth",
    "branch_treewidth_of_pattern",
    "local_width",
    "local_width_of_pattern",
    # evaluation
    "Engine",
    "Session",
    "BatchEngine",
    "Plan",
    "Planner",
    "EvalContext",
    "EvaluationCache",
    "evaluate_pattern",
    "forest_contains",
    "forest_contains_pebble",
    # reductions
    "clique_reduction",
    "solve_clique_via_wdeval",
]
