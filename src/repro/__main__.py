"""``python -m repro`` — the command line interface (see :mod:`repro.cli`)."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
