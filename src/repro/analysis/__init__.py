"""AST-based invariant linter for the ``repro`` codebase.

``python -m repro.analysis`` (or ``repro lint``) checks the concurrency,
caching, and versioning contracts the codebase accumulated across PRs —
see :mod:`repro.analysis.framework` for the machinery and
:mod:`repro.analysis.rules` for the invariants.
"""

from __future__ import annotations

from .framework import Finding, Project, Rule, run_rules
from .rules import default_rules
from .runner import main, rule_registry

__all__ = [
    "Finding",
    "Project",
    "Rule",
    "default_rules",
    "main",
    "rule_registry",
    "run_rules",
]
