"""A project-wide call graph over the parsed :class:`Project` (PR 10).

PR 8's rules were per-file and syntactic; the concurrency rules introduced
here (RP-GUARD, RP-LOCKORDER, RP-HOLD) need to answer *interprocedural*
questions — "is this helper only ever called with the cache lock held?",
"does anything reachable from this call site acquire a second lock?".  This
module builds the one shared answer machine:

* every ``def`` in the project (module functions, methods, nested functions)
  becomes a :class:`FunctionRef` keyed by ``(relpath, dotted qualname)``,
  matching :func:`repro.analysis.framework.qualname_index`;
* call edges are resolved for the shapes that actually occur in this
  codebase: bare names (nested defs first, then module scope, then
  project-resolved imports, then class constructors → ``__init__``),
  ``self.method(...)`` (including base classes defined in the project),
  ``self.attr.method(...)`` via attribute-type inference from
  ``self.attr = ClassName(...)`` assignments, and ``local = ClassName(...)``
  followed by ``local.method(...)``;
* :meth:`CallGraph.reachable` gives bounded-depth transitive closure with
  optional edge filtering — RP-VERSION's self-call closure and RP-GUARD's
  "only called under the lock" proof are both thin wrappers over it.

The graph is deliberately *unsound where python is dynamic* (no flow
analysis through containers, no duck typing): a rule that consumes it must
treat "no edge" as "unknown", never as "proven absent".  That is the right
polarity for a linter — missing edges can only ever cause missed findings
in exotic code, not false positives in ordinary code.

Building the graph walks every file once and resolving edges is a few
dictionary probes per call site; the result is memoised per
:class:`Project` (see :func:`project_callgraph`) so the four concurrency
rules plus RP-VERSION/RP-TICK share one build.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .framework import Project, SourceFile

__all__ = [
    "FunctionRef",
    "FunctionInfo",
    "ClassInfo",
    "CallEdge",
    "CallGraph",
    "project_callgraph",
]


@dataclass(frozen=True, order=True)
class FunctionRef:
    """Stable identity of one function: file relpath + dotted qualname."""

    path: str
    qualname: str

    @property
    def name(self) -> str:
        """The bare (last-segment) name."""
        return self.qualname.rpartition(".")[2]

    def __str__(self) -> str:
        return f"{self.path}::{self.qualname}"


@dataclass
class FunctionInfo:
    """One analysed function and its lexical context."""

    ref: FunctionRef
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    file: SourceFile
    #: Nearest enclosing class, if any (methods *and* defs nested inside
    #: methods — both see the same ``self`` via closure).
    class_name: Optional[str]
    #: True when lexically nested inside another function: not addressable
    #: from outside its enclosing scope, so "all call sites" is a complete
    #: set for such functions even without a leading underscore.
    is_nested: bool


@dataclass
class ClassInfo:
    """One class definition: where it lives, its methods, its bases."""

    name: str
    path: str
    node: ast.ClassDef
    #: method name -> FunctionRef (direct defs only; see resolve_method).
    methods: Dict[str, FunctionRef] = field(default_factory=dict)
    #: base-class names as written (resolved through imports where possible).
    bases: List[str] = field(default_factory=list)


@dataclass
class CallEdge:
    """One resolved call site."""

    caller: FunctionRef
    callee: FunctionRef
    node: ast.Call
    #: True for ``self.m(...)`` calls (and calls from a method into its own
    #: nested defs): caller and callee share the same instance, so a lock
    #: attribute means the same lock object on both sides.  Cross-instance
    #: calls (``other._helper()``) must never satisfy a same-lock proof.
    via_self: bool


#: Constructor names treated as lock objects by the lock model; kept here so
#: attribute-type inference records them even though they are stdlib classes.
_STDLIB_CONSTRUCTORS = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Queue",
    "SimpleQueue",
    "LifoQueue",
    "PriorityQueue",
    "Pool",
    "Thread",
}


class _FileScope:
    """Per-file name environment: imports and module-level defs/classes."""

    def __init__(self, file: SourceFile) -> None:
        self.file = file
        #: imported name -> (resolved project relpath or None, original name)
        self.imports: Dict[str, Tuple[Optional[str], str]] = {}
        #: module-level function name -> qualname (identity here)
        self.functions: Set[str] = set()
        #: class name (local) -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}


def _module_relpath_candidates(dotted: Sequence[str]) -> List[str]:
    """Relpaths a dotted absolute module could live at (``src/`` layout)."""
    base = "/".join(dotted)
    return [f"src/{base}.py", f"src/{base}/__init__.py", f"{base}.py"]


class CallGraph:
    """The resolved call graph of one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: Dict[FunctionRef, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: (class name, attribute) -> constructor class name (last segment),
        #: from ``self.attr = ClassName(...)`` in any method of the class.
        self.attr_types: Dict[Tuple[str, str], str] = {}
        self._edges_out: Dict[FunctionRef, List[CallEdge]] = {}
        self._edges_in: Dict[FunctionRef, List[CallEdge]] = {}
        self._scopes: Dict[str, _FileScope] = {}
        self._paths: Set[str] = {f.relpath for f in project.files}
        self._build()

    # -- queries -------------------------------------------------------------

    def lookup(self, suffix: str, qualname: str) -> Optional[FunctionInfo]:
        """The function *qualname* in the module whose relpath ends with
        *suffix* (the addressing scheme registries like HOT_LOOPS use)."""
        module = self.project.module(suffix)
        if module is None:
            return None
        return self.functions.get(FunctionRef(module.relpath, qualname))

    def info(self, ref: FunctionRef) -> Optional[FunctionInfo]:
        return self.functions.get(ref)

    def callees(self, ref: FunctionRef) -> List[CallEdge]:
        return self._edges_out.get(ref, [])

    def callers(self, ref: FunctionRef) -> List[CallEdge]:
        return self._edges_in.get(ref, [])

    def attr_type(self, class_name: str, attr: str) -> Optional[str]:
        return self.attr_types.get((class_name, attr))

    def resolve_method(self, class_name: str, method: str) -> Optional[FunctionRef]:
        """*method* on *class_name*, searching project-defined bases."""
        seen: Set[str] = set()

        def search(name: str) -> Optional[FunctionRef]:
            if name in seen:
                return None  # inheritance cycle in broken input
            seen.add(name)
            info = self.classes.get(name)
            if info is None:
                return None
            if method in info.methods:
                return info.methods[method]
            for base in info.bases:
                found = search(base)
                if found is not None:
                    return found
            return None

        return search(class_name)

    def reachable(
        self,
        start: FunctionRef,
        max_depth: Optional[int] = None,
        edge_filter: Optional[Callable[[CallEdge], bool]] = None,
    ) -> Set[FunctionRef]:
        """Transitive closure of call edges from *start* (inclusive).

        Breadth-first with a visited set, so recursion and mutual recursion
        terminate; *max_depth* bounds the number of edges followed from
        *start*; *edge_filter* keeps only edges it accepts (RP-VERSION uses
        it to follow ``self.``-calls within one class).
        """
        seen: Set[FunctionRef] = {start}
        frontier: List[FunctionRef] = [start]
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            next_frontier: List[FunctionRef] = []
            for ref in frontier:
                for edge in self.callees(ref):
                    if edge_filter is not None and not edge_filter(edge):
                        continue
                    if edge.callee not in seen:
                        seen.add(edge.callee)
                        next_frontier.append(edge.callee)
            frontier = next_frontier
        return seen

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        for file in self.project.parsed():
            self._scopes[file.relpath] = self._index_file(file)
        self._resolve_import_targets()
        self._infer_attr_types()
        for file in self.project.parsed():
            self._resolve_calls(file)

    def _index_file(self, file: SourceFile) -> _FileScope:
        scope = _FileScope(file)

        def visit(node: ast.AST, prefix: str, cls: Optional[str], nested: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}.{child.name}" if prefix else child.name
                    ref = FunctionRef(file.relpath, qual)
                    self.functions[ref] = FunctionInfo(
                        ref=ref,
                        node=child,
                        file=file,
                        class_name=cls,
                        is_nested=nested,
                    )
                    if not prefix:
                        scope.functions.add(child.name)
                    if cls is not None and (
                        prefix == cls or prefix.endswith("." + cls)
                    ):
                        # direct method of the class (prefix == ...Class)
                        self.classes[cls].methods.setdefault(child.name, ref)
                    visit(child, qual, cls, True)
                elif isinstance(child, ast.ClassDef):
                    qual = f"{prefix}.{child.name}" if prefix else child.name
                    info = ClassInfo(name=child.name, path=file.relpath, node=child)
                    for base in child.bases:
                        if isinstance(base, ast.Name):
                            info.bases.append(base.id)
                        elif isinstance(base, ast.Attribute):
                            info.bases.append(base.attr)
                    # last definition wins on a (rare) project-wide name clash
                    self.classes[child.name] = info
                    scope.classes[child.name] = info
                    visit(child, qual, child.name, nested)
                else:
                    visit(child, prefix, cls, nested)

        if file.tree is not None:
            visit(file.tree, "", None, False)
            for node in file.tree.body:
                self._index_import(scope, node)
        return scope

    def _index_import(self, scope: _FileScope, node: ast.AST) -> None:
        if isinstance(node, ast.ImportFrom):
            target = self._resolve_module(scope.file.relpath, node.module, node.level)
            for alias in node.names:
                if alias.name == "*":
                    continue
                scope.imports[alias.asname or alias.name] = (target, alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                # `import a.b.c` binds `a`; only useful as a module name.
                bound = (alias.asname or alias.name).split(".")[0]
                scope.imports.setdefault(bound, (None, alias.name))

    def _resolve_module(
        self, relpath: str, module: Optional[str], level: int
    ) -> Optional[str]:
        """Map an import statement to a project file relpath, if it is one."""
        if level == 0:
            if module is None:
                return None
            for candidate in _module_relpath_candidates(module.split(".")):
                if candidate in self._paths:
                    return candidate
            return None
        parts = relpath.split("/")[:-1]  # directory of the importing file
        if level > 1:
            parts = parts[: len(parts) - (level - 1)]
        if module:
            parts = parts + module.split(".")
        for candidate in (
            "/".join(parts) + ".py",
            "/".join(parts) + "/__init__.py",
        ):
            if candidate in self._paths:
                return candidate
        return None

    def _resolve_import_targets(self) -> None:
        """Second pass: make `from .mod import Name` resolve to classes too."""
        for scope in self._scopes.values():
            for local, (target, original) in scope.imports.items():
                if target is None:
                    continue
                other = self._scopes.get(target)
                if other is None:
                    continue
                if original in other.classes and local not in scope.classes:
                    scope.classes[local] = other.classes[original]

    @staticmethod
    def _constructor_name(value: ast.AST) -> Optional[str]:
        """``ClassName`` for ``ClassName(...)`` / ``mod.ClassName(...)``,
        looking through ``a if c else b`` and ``a or b`` alternatives."""
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                return func.id
            if isinstance(func, ast.Attribute):
                return func.attr
            return None
        if isinstance(value, ast.IfExp):
            return CallGraph._constructor_name(value.body) or CallGraph._constructor_name(
                value.orelse
            )
        if isinstance(value, ast.BoolOp):
            for option in value.values:
                name = CallGraph._constructor_name(option)
                if name is not None:
                    return name
        return None

    def _infer_attr_types(self) -> None:
        for info in self.functions.values():
            if info.class_name is None:
                continue
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                type_name = self._constructor_name(value)
                if type_name is None:
                    continue
                if type_name not in self.classes and type_name not in _STDLIB_CONSTRUCTORS:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        key = (info.class_name, target.attr)
                        self.attr_types.setdefault(key, type_name)

    def _resolve_calls(self, file: SourceFile) -> None:
        scope = self._scopes[file.relpath]
        for ref, info in list(self.functions.items()):
            if ref.path != file.relpath:
                continue
            local_types = self._local_constructions(info)
            for node in self._own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                for callee, via_self in self._resolve_call(
                    scope, info, node, local_types
                ):
                    edge = CallEdge(
                        caller=ref, callee=callee, node=node, via_self=via_self
                    )
                    self._edges_out.setdefault(ref, []).append(edge)
                    self._edges_in.setdefault(callee, []).append(edge)

    @staticmethod
    def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
        """Every node inside *func* excluding nested def/lambda bodies —
        a nested function's calls happen when *it* runs, not when its
        definition is executed."""

        def walk(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                yield child
                yield from walk(child)

        yield from walk(func)

    def _local_constructions(self, info: FunctionInfo) -> Dict[str, str]:
        """local variable name -> class name, for ``x = ClassName(...)`` and
        ``x = self.attr`` (via inferred attribute types) in *info*'s body."""
        result: Dict[str, str] = {}
        for node in self._own_nodes(info.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            type_name = self._constructor_name(node.value)
            if type_name is None and (
                isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "self"
                and info.class_name is not None
            ):
                type_name = self.attr_types.get((info.class_name, node.value.attr))
            if type_name is not None:
                result.setdefault(target.id, type_name)
        return result

    def _resolve_call(
        self,
        scope: _FileScope,
        info: FunctionInfo,
        call: ast.Call,
        local_types: Dict[str, str],
    ) -> List[Tuple[FunctionRef, bool]]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(scope, info, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute_call(scope, info, func, local_types)
        return []

    def _resolve_name_call(
        self, scope: _FileScope, info: FunctionInfo, name: str
    ) -> List[Tuple[FunctionRef, bool]]:
        # nested def in an enclosing *function* scope, innermost first
        # (class bodies are not part of python's lexical lookup chain, so a
        # prefix is only considered while it still names a function)
        prefix = info.ref.qualname
        while prefix:
            candidate = FunctionRef(info.ref.path, f"{prefix}.{name}")
            if (
                FunctionRef(info.ref.path, prefix) in self.functions
                and candidate in self.functions
            ):
                return [(candidate, info.class_name is not None)]
            prefix = prefix.rpartition(".")[0]
        # module-level function in the same file
        if name in scope.functions:
            return [(FunctionRef(info.ref.path, name), False)]
        # class constructor (local or imported) -> __init__
        cls = scope.classes.get(name)
        if cls is not None:
            init = self.resolve_method(cls.name, "__init__")
            return [(init, False)] if init is not None else []
        # imported project function
        imported = scope.imports.get(name)
        if imported is not None and imported[0] is not None:
            candidate = FunctionRef(imported[0], imported[1])
            if candidate in self.functions:
                return [(candidate, False)]
        return []

    def _resolve_attribute_call(
        self,
        scope: _FileScope,
        info: FunctionInfo,
        func: ast.Attribute,
        local_types: Dict[str, str],
    ) -> List[Tuple[FunctionRef, bool]]:
        method = func.attr
        value = func.value
        # self.method(...)
        if isinstance(value, ast.Name) and value.id == "self":
            if info.class_name is not None:
                target = self.resolve_method(info.class_name, method)
                if target is not None:
                    return [(target, True)]
            return []
        # self.attr.method(...) via inferred attribute type
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and info.class_name is not None
        ):
            type_name = self.attr_types.get((info.class_name, value.attr))
            if type_name is not None and type_name in self.classes:
                target = self.resolve_method(type_name, method)
                if target is not None:
                    return [(target, False)]
            return []
        if isinstance(value, ast.Name):
            # ClassName.method(...) — unbound / static style
            if value.id in scope.classes:
                target = self.resolve_method(scope.classes[value.id].name, method)
                if target is not None:
                    return [(target, False)]
            # local = ClassName(...); local.method(...)
            type_name = local_types.get(value.id)
            if type_name is not None and type_name in self.classes:
                target = self.resolve_method(type_name, method)
                if target is not None:
                    return [(target, False)]
        return []


def project_callgraph(project: Project) -> CallGraph:
    """The (memoised) call graph of *project*.

    Rules run over the same ``Project`` instance within one lint pass;
    caching on the instance means RP-GUARD, RP-LOCKORDER, RP-HOLD,
    RP-VERSION and RP-TICK share a single build.
    """
    graph = getattr(project, "_callgraph_cache", None)
    if graph is None:
        graph = CallGraph(project)
        project._callgraph_cache = graph  # type: ignore[attr-defined]
    return graph
