"""The invariant linter's core: files, findings, rules, suppressions.

Seven PRs of growth accumulated load-bearing invariants — one version bump
per batch mutation (PR 6), ``id()``-free portable cache keys and picklable
pool payloads (PR 1/3/5), ``Budget.tick()`` in every hot loop and
monotonic-only deadline arithmetic (PR 7) — that previously lived only in
docstrings and after-the-fact regression tests.  This package encodes them
as AST rules so a violation fails CI at review time instead of surfacing as
a production race or poisoned cache.

The moving parts:

* :class:`SourceFile` / :class:`Project` — parsed views of the scanned
  tree.  ``Project.from_directory`` walks the real ``src/repro``;
  ``Project.from_sources`` builds an in-memory project for fixture tests.
* :class:`Rule` — one invariant.  A rule sees the whole project (several
  rules need cross-file context: the exception taxonomy, payload class
  definitions) and yields :class:`Finding` records.
* Suppressions — ``# repro: ignore[RULE-ID]`` on the finding's exact line
  silences that rule there; a comment naming an unknown rule id is itself
  a finding (``RP-SUPPRESS``), so typos cannot silently disable a check.
* Baseline — a checked-in JSON file of grandfathered findings, each with a
  mandatory rationale.  Baselined findings do not fail the run; a baseline
  entry that no longer fires is reported as *stale* so the file shrinks
  monotonically (see :mod:`repro.analysis.runner`).
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "SourceFile",
    "Project",
    "Rule",
    "scan_suppressions",
    "run_rules",
    "PARSE_RULE_ID",
    "SUPPRESS_RULE_ID",
]

#: Framework-level rule ids (emitted by the driver itself, not a Rule.run).
PARSE_RULE_ID = "RP-PARSE"
SUPPRESS_RULE_ID = "RP-SUPPRESS"

#: Matches ``repro: ignore[RP-FOO]`` (one or more comma-separated ids)
#: inside a comment token.
_SUPPRESSION = re.compile(r"#\s*repro:\s*ignore\[([^\]]*)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line.

    ``path`` is repo-relative with forward slashes (the format GitHub
    annotations want); ``line`` is 1-based.  The baseline matches on
    :meth:`key`, which deliberately excludes the line number so that
    unrelated edits moving a grandfathered finding do not churn the
    baseline file.
    """

    path: str
    line: int
    rule: str
    message: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def format_text(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def format_github(self) -> str:
        # GitHub workflow-command syntax: newlines and `::` would split the
        # command, so flatten the message.
        message = self.message.replace("\n", " ").replace("::", ":")
        return f"::error file={self.path},line={self.line},title={self.rule}::{message}"


class SourceFile:
    """A parsed python source file of the scanned project."""

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[Finding] = None
        try:
            self.tree = ast.parse(source, filename=self.relpath)
        except SyntaxError as error:
            self.parse_error = Finding(
                path=self.relpath,
                line=error.lineno or 1,
                rule=PARSE_RULE_ID,
                message=f"file does not parse: {error.msg}",
            )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceFile({self.relpath!r})"


class Project:
    """The set of files one analysis run looks at, parsed once."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files: List[SourceFile] = sorted(files, key=lambda f: f.relpath)
        self._by_path = {f.relpath: f for f in self.files}

    @classmethod
    def from_directory(cls, directory: Path, root: Optional[Path] = None) -> "Project":
        """Parse every ``*.py`` under *directory*.

        Paths are reported relative to *root* (default: *directory*'s
        parent's parent, i.e. the repo root when scanning ``src/repro``).
        """
        directory = directory.resolve()
        if root is None:
            root = directory.parent.parent
        root = root.resolve()
        files = []
        for path in sorted(directory.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            files.append(SourceFile(rel, path.read_text(encoding="utf-8")))
        return cls(files)

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build an in-memory project (fixture tests) from relpath → source."""
        return cls([SourceFile(relpath, text) for relpath, text in sources.items()])

    def module(self, suffix: str) -> Optional[SourceFile]:
        """The unique file whose relpath ends with *suffix* (if any)."""
        for file in self.files:
            if file.relpath == suffix or file.relpath.endswith("/" + suffix):
                return file
        return None

    def parsed(self) -> Iterator[SourceFile]:
        for file in self.files:
            if file.tree is not None:
                yield file


class Rule:
    """Base class for one invariant.

    Subclasses set :attr:`id` (``RP-*``) and :attr:`title`, and implement
    :meth:`run` over a whole :class:`Project`.  Rules must be pure readers:
    same project in, same findings out.
    """

    id: str = ""
    title: str = ""

    def run(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, file: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=file.relpath,
            line=getattr(node, "lineno", 1),
            rule=self.id,
            message=message,
        )


@dataclass
class Suppressions:
    """Per-project suppression index plus unknown-rule-id findings."""

    #: (relpath, line) -> set of suppressed rule ids on that exact line.
    by_line: Dict[Tuple[str, int], Set[str]] = field(default_factory=dict)
    errors: List[Finding] = field(default_factory=list)

    def covers(self, finding: Finding) -> bool:
        return finding.rule in self.by_line.get((finding.path, finding.line), set())


def _comment_lines(file: SourceFile) -> Iterator[Tuple[int, str]]:
    """(line, text) of every real comment token — docstrings that merely
    *mention* the suppression syntax must not activate it."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(file.source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # unparseable file; reported via the RP-PARSE finding


def scan_suppressions(project: Project, known_rule_ids: Iterable[str]) -> Suppressions:
    """Index every ``# repro: ignore[...]`` comment; flag unknown rule ids."""
    known = set(known_rule_ids) | {PARSE_RULE_ID, SUPPRESS_RULE_ID}
    result = Suppressions()
    for file in project.files:
        for lineno, text in _comment_lines(file):
            match = _SUPPRESSION.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            for rule_id in sorted(ids):
                if rule_id not in known:
                    result.errors.append(
                        Finding(
                            path=file.relpath,
                            line=lineno,
                            rule=SUPPRESS_RULE_ID,
                            message=f"suppression names unknown rule id {rule_id!r}",
                        )
                    )
            result.by_line.setdefault((file.relpath, lineno), set()).update(ids & known)
    return result


@dataclass
class RunResult:
    """Everything one pass over a project produced."""

    findings: List[Finding]
    suppressed: List[Finding]

    @property
    def clean(self) -> bool:
        return not self.findings


def run_rules(
    project: Project,
    rules: Sequence[Rule],
    timings: Optional[Dict[str, float]] = None,
) -> RunResult:
    """Run *rules* over *project*, applying line-exact suppressions.

    Parse failures and unknown-suppression-id errors surface as findings of
    the framework rules (``RP-PARSE`` / ``RP-SUPPRESS``); those two are not
    suppressible — a broken file or a typo'd suppression must always fail.

    When *timings* is given, each rule's wall time in seconds is recorded
    under its id (monotonic ``perf_counter`` deltas — the CI lint job
    prints them so a pathologically slow interprocedural rule is visible).
    """
    seen_ids: Set[str] = set()
    for rule in rules:
        if not rule.id:
            raise ValueError(f"rule {rule!r} has no id")
        if rule.id in seen_ids:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        seen_ids.add(rule.id)

    suppressions = scan_suppressions(project, seen_ids)
    findings: List[Finding] = list(suppressions.errors)
    suppressed: List[Finding] = []
    for file in project.files:
        if file.parse_error is not None:
            findings.append(file.parse_error)
    for rule in rules:
        started = time.perf_counter()
        for finding in rule.run(project):
            if suppressions.covers(finding):
                suppressed.append(finding)
            else:
                findings.append(finding)
        if timings is not None:
            timings[rule.id] = time.perf_counter() - started
    findings.sort()
    suppressed.sort()
    return RunResult(findings=findings, suppressed=suppressed)


# --- shared AST helpers used by several rules --------------------------------

def qualname_index(tree: ast.Module) -> Dict[str, ast.AST]:
    """Map dotted qualnames (``Class.method``, ``outer.inner``) to def nodes."""
    index: Dict[str, ast.AST] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                index[qual] = child
                visit(child, qual)
            else:
                visit(child, prefix)

    visit(tree, "")
    return index


def own_statements(func: ast.AST) -> Iterator[ast.AST]:
    """Every statement lexically inside *func*, excluding nested defs.

    Nested functions are separate analysis units (``_search.backtrack`` is
    registered on its own), so a rule looking at a function's loops must not
    wander into its inner ``def``/``lambda`` bodies.
    """

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield child
            yield from walk(child)

    yield from walk(func)


def contains_call_named(node: ast.AST, names: Set[str]) -> bool:
    """Is there a call ``f(...)`` / ``x.f(...)`` with ``f`` in *names*?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Name) and func.id in names:
                return True
            if isinstance(func, ast.Attribute) and func.attr in names:
                return True
    return False


def attribute_root(node: ast.AST) -> Optional[ast.AST]:
    """The innermost value of an attribute/subscript chain.

    ``self._by_s[x].add`` → the ``self`` Name; used to decide whether a
    mutator call is rooted at an instance storage attribute.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def chain_attributes(node: ast.AST) -> List[str]:
    """Attribute names along a chain, outermost first (skipping subscripts)."""
    names: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
        node = node.value
    return names
