"""The shared lock model behind the concurrency rules (PR 10).

Three reusable pieces, consumed by RP-GUARD / RP-LOCKORDER / RP-HOLD /
RP-YIELD (:mod:`repro.analysis.rules.guards` and friends):

* **Lock discovery** — every ``self.<attr> = threading.Lock() / RLock() /
  Condition() / Semaphore()`` assignment in a project class becomes a
  :class:`LockDef`.  Locks are identified name-level as ``Class.attr``
  (``EvaluationCache._lock``): all instances of a class share one
  discipline, which is exactly the granularity a lock-order or guarded-by
  contract wants.
* **Guarded-attribute mapping** — which mutable attributes a lock protects,
  declared either centrally (the ``GUARDED_BY`` registry in
  ``rules/guards.py``) or at the definition site with a
  ``# guarded-by: <lock_attr>`` comment on the attribute's assignment line
  (same comment-anchored style as RP-FORKSTATE's ``# fork-safe:``).  Stale
  or contradictory declarations are surfaced as errors, mirroring
  RP-TICK's stale-registry discipline: a typo must not silently disable a
  check.
* **Held-lock tracking** — :func:`iter_with_held` walks a function body
  yielding ``(node, frozenset of held lock attrs)``, entering
  ``with self.<lock>:`` blocks and *not* descending into nested
  ``def``/``lambda`` bodies (a nested function runs when called — possibly
  after the lock is released — so its body gets an empty held-set and must
  be justified through the call graph instead).

Only ``with self.<attr>:`` acquisitions are tracked.  Bare ``lock.acquire()``
calls and locks reached through aliases are invisible to the model; the
codebase uses context managers exclusively, and RP-LOCKORDER/RP-HOLD treat
"not tracked" as "not held" (missed findings, never false ones).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph
from .framework import Project

__all__ = [
    "LOCK_KINDS",
    "LockDef",
    "GuardMap",
    "discover_locks",
    "locks_by_class",
    "build_guard_map",
    "match_self_lock",
    "iter_with_held",
    "held_at_nodes",
]

#: Recognised lock constructors -> is the resulting lock reentrant?
#: ``Condition()`` defaults to an RLock, so re-entry is legal.
LOCK_KINDS: Dict[str, bool] = {
    "Lock": False,
    "RLock": True,
    "Condition": True,
    "Semaphore": False,
    "BoundedSemaphore": False,
}

#: ``# guarded-by: _lock`` on an attribute's assignment line.
_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass(frozen=True, order=True)
class LockDef:
    """One discovered lock attribute of one class."""

    path: str
    cls: str
    attr: str
    kind: str
    line: int

    @property
    def name(self) -> str:
        """The project-wide name of this lock (``QueryService._lock``)."""
        return f"{self.cls}.{self.attr}"

    @property
    def reentrant(self) -> bool:
        return LOCK_KINDS.get(self.kind, False)


@dataclass
class GuardMap:
    """guarded (class, attribute) -> guarding lock, plus declaration errors."""

    guarded: Dict[Tuple[str, str], LockDef] = field(default_factory=dict)
    #: (path, line, message) — converted to findings by the consuming rule.
    errors: List[Tuple[str, int, str]] = field(default_factory=list)

    def by_class(self) -> Dict[str, Dict[str, LockDef]]:
        result: Dict[str, Dict[str, LockDef]] = {}
        for (cls, attr), lock in self.guarded.items():
            result.setdefault(cls, {})[attr] = lock
        return result


def _self_attr_assignments(
    graph: CallGraph,
) -> Iterator[Tuple[str, str, ast.AST, ast.AST]]:
    """(class name, attr, assignment node, value) for every
    ``self.<attr> = ...`` in a method body across the project."""
    for info in graph.functions.values():
        if info.class_name is None:
            continue
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                targets: Sequence[ast.AST] = node.targets
                value: Optional[ast.AST] = node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield info.class_name, target.attr, node, value or node


def discover_locks(graph: CallGraph) -> Dict[Tuple[str, str], LockDef]:
    """(class, attr) -> :class:`LockDef` for every lock-constructor
    assignment in the project (memoised on the graph)."""
    cached = getattr(graph, "_locks_cache", None)
    if cached is not None:
        return cached
    locks: Dict[Tuple[str, str], LockDef] = {}
    for cls, attr, node, value in _self_attr_assignments(graph):
        kind = CallGraph._constructor_name(value)
        if kind in LOCK_KINDS:
            info = graph.classes.get(cls)
            path = info.path if info is not None else ""
            locks.setdefault(
                (cls, attr),
                LockDef(path=path, cls=cls, attr=attr, kind=kind, line=node.lineno),
            )
    graph._locks_cache = locks  # type: ignore[attr-defined]
    return locks


def locks_by_class(locks: Dict[Tuple[str, str], LockDef]) -> Dict[str, Dict[str, LockDef]]:
    result: Dict[str, Dict[str, LockDef]] = {}
    for (cls, attr), lock in locks.items():
        result.setdefault(cls, {})[attr] = lock
    return result


def _class_attribute_names(graph: CallGraph, cls: str) -> Set[str]:
    """Every ``self.<attr>`` mentioned anywhere in *cls*'s methods."""
    names: Set[str] = set()
    for info in graph.functions.values():
        if info.class_name != cls:
            continue
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                names.add(node.attr)
    return names


def build_guard_map(
    project: Project,
    graph: CallGraph,
    registry: Sequence[Tuple[str, str, str, str]],
) -> GuardMap:
    """Combine the central registry with ``# guarded-by:`` comments.

    *registry* rows are ``(module suffix, class, attribute, lock attr)``.
    A row whose module is absent from the project is skipped (fixture
    projects carry only the module under test); a row whose module is
    present but whose class / lock no longer resolves is an error.
    Contradictory declarations (registry vs. comment) are errors too.
    """
    result = GuardMap()
    locks = discover_locks(graph)
    per_class = locks_by_class(locks)

    def declare(cls: str, attr: str, lock: LockDef, path: str, line: int) -> None:
        existing = result.guarded.get((cls, attr))
        if existing is not None and existing != lock:
            result.errors.append(
                (
                    path,
                    line,
                    f"{cls}.{attr} declared guarded by both "
                    f"{existing.name} and {lock.name}; pick one",
                )
            )
            return
        result.guarded[(cls, attr)] = lock

    # definition-site comments
    for info in graph.functions.values():
        cls = info.class_name
        if cls is None:
            continue
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                targets: Sequence[ast.AST] = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            text = info.file.line_text(node.lineno)
            match = _GUARDED_BY.search(text)
            if match is None:
                continue
            lock_attr = match.group(1)
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                lock = per_class.get(cls, {}).get(lock_attr)
                if lock is None:
                    result.errors.append(
                        (
                            info.file.relpath,
                            node.lineno,
                            f"guarded-by comment names {cls}.{lock_attr}, which is "
                            "not a lock attribute of the class",
                        )
                    )
                elif (cls, target.attr) in locks:
                    result.errors.append(
                        (
                            info.file.relpath,
                            node.lineno,
                            f"{cls}.{target.attr} is itself a lock and cannot be "
                            "guarded-by another lock",
                        )
                    )
                else:
                    declare(cls, target.attr, lock, info.file.relpath, node.lineno)

    # central registry
    for suffix, cls, attr, lock_attr in registry:
        module = project.module(suffix)
        if module is None:
            continue  # fixture projects carry only the module under test
        class_info = graph.classes.get(cls)
        if class_info is None or class_info.path != module.relpath:
            result.errors.append(
                (
                    module.relpath,
                    1,
                    f"GUARDED_BY registry names class {cls!r}, not found in "
                    f"{suffix}; update repro/analysis/rules/guards.py",
                )
            )
            continue
        lock = per_class.get(cls, {}).get(lock_attr)
        if lock is None:
            result.errors.append(
                (
                    module.relpath,
                    1,
                    f"GUARDED_BY registry says {cls}.{attr} is guarded by "
                    f"{cls}.{lock_attr}, but no such lock is constructed",
                )
            )
            continue
        if attr not in _class_attribute_names(graph, cls):
            result.errors.append(
                (
                    module.relpath,
                    1,
                    f"GUARDED_BY registry names attribute {cls}.{attr}, which no "
                    "longer exists; update repro/analysis/rules/guards.py",
                )
            )
            continue
        declare(cls, attr, lock, module.relpath, 1)
    return result


def match_self_lock(expr: ast.AST, lock_attrs: Set[str]) -> Optional[str]:
    """``self.<attr>`` when *attr* is a known lock of the current class."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in lock_attrs
    ):
        return expr.attr
    return None


def iter_with_held(
    func: ast.AST, lock_attrs: Set[str]
) -> Iterator[Tuple[ast.AST, FrozenSet[str]]]:
    """Yield ``(node, held lock attrs)`` for every node lexically inside
    *func*, tracking ``with self.<lock>:`` blocks.

    Nested ``def``/``lambda`` bodies are skipped — they execute when called,
    not where they are defined, so lexical held-ness does not transfer.
    Comprehension bodies *are* included: list/dict/set comprehensions run
    eagerly at the point of appearance.  ``with`` items acquire left to
    right, so a later item's context expression already sees the earlier
    items held.
    """

    def visit(node: ast.AST, held: FrozenSet[str]) -> Iterator[Tuple[ast.AST, FrozenSet[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, (ast.With, ast.AsyncWith)):
                yield child, held
                current = held
                for item in child.items:
                    yield item.context_expr, current
                    yield from visit(item.context_expr, current)
                    if item.optional_vars is not None:
                        yield item.optional_vars, current
                        yield from visit(item.optional_vars, current)
                    attr = match_self_lock(item.context_expr, lock_attrs)
                    if attr is not None:
                        current = current | {attr}
                for statement in child.body:
                    if isinstance(
                        statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue  # a def directly under `with` is still a def
                    yield statement, current
                    yield from visit(statement, current)
            else:
                yield child, held
                yield from visit(child, held)

    yield from visit(func, frozenset())


def held_at_nodes(func: ast.AST, lock_attrs: Set[str]) -> Dict[int, FrozenSet[str]]:
    """``id(node) -> held lock attrs`` for every node in *func* — the random
    access form of :func:`iter_with_held` (used to ask "was this specific
    call site lock-held?" when proving helpers via the call graph)."""
    return {id(node): held for node, held in iter_with_held(func, lock_attrs)}
