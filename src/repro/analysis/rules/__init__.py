"""The project-specific invariant rules, one module per subject area."""

from __future__ import annotations

from typing import List

from ..framework import Rule
from .blocking import HoldWhileBlockingRule
from .budgets import MonotonicRule, TickRule
from .caching import IdKeyRule
from .exceptions_rule import ExceptionTaxonomyRule
from .forkstate import ForkStateRule
from .guards import GuardedByRule
from .lockorder import LockOrderRule
from .pickling import PoolPayloadRule
from .versioning import VersionBumpRule
from .yields import YieldUnderLockRule

__all__ = ["default_rules"]


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in reporting order."""
    return [
        VersionBumpRule(),
        PoolPayloadRule(),
        IdKeyRule(),
        TickRule(),
        MonotonicRule(),
        ExceptionTaxonomyRule(),
        ForkStateRule(),
        GuardedByRule(),
        LockOrderRule(),
        HoldWhileBlockingRule(),
        YieldUnderLockRule(),
    ]
