"""The project-specific invariant rules, one module per subject area."""

from __future__ import annotations

from typing import List

from ..framework import Rule
from .budgets import MonotonicRule, TickRule
from .caching import IdKeyRule
from .exceptions_rule import ExceptionTaxonomyRule
from .forkstate import ForkStateRule
from .pickling import PoolPayloadRule
from .versioning import VersionBumpRule

__all__ = ["default_rules"]


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in reporting order."""
    return [
        VersionBumpRule(),
        PoolPayloadRule(),
        IdKeyRule(),
        TickRule(),
        MonotonicRule(),
        ExceptionTaxonomyRule(),
        ForkStateRule(),
    ]
