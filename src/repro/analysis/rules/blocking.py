"""RP-HOLD: no blocking call while a lock is held (PR 10).

Every lock in this codebase protects micro-critical sections — a few
dictionary probes, a counter bump.  The moment a blocking operation runs
inside one, every other thread convoys behind it: the service's admission
lock waiting on an unbounded ``queue.put`` would stall `submit` fleet-wide,
a ``time.sleep`` under the cache RLock would freeze all readers.  This
rule flags, inside any ``with self.<lock>:`` region:

* ``time.sleep`` / bare ``sleep(...)``;
* ``queue.get()`` / ``queue.put(item)`` without a timeout on queue-like
  receivers (``*_nowait`` and timeout-carrying forms are fine);
* socket operations (``recv`` / ``recvfrom`` / ``recv_into`` / ``accept`` /
  ``sendall`` always; ``send`` / ``connect`` on socket-named receivers);
* ``Pool`` / ``Thread`` waits (``join`` / ``map`` / ``imap`` / ``apply`` /
  ``starmap`` on pool/thread-like receivers, timeout-less ``join``);
* ``wait`` / ``wait_for`` without a timeout — except on the held lock
  itself: ``Condition.wait`` *releases* the condition it is called on, but
  still blocks any **other** lock the thread holds;
* ``Engine`` / ``Session`` evaluation entry points (``check_many``,
  ``solutions_stream``, ...) on session/engine receivers — a full SPARQL
  evaluation under a lock is the service-level convoy;
* any call whose transitive callees (via the shared call graph) do one of
  the above — the finding is reported at the call site under the lock and
  names the blocking operation it reaches.

Receivers are classified by inferred attribute type where the call graph
has one (``self._queue = queue.Queue()``) and by name hints otherwise
("queue" / "sock" / "conn" / "pool" / "thread" / "session" / "engine"
substrings), so ``dict.get``, ``str.join`` and ``budget.check()`` do not
false-positive.  Lock *acquisitions* under a lock are deliberately not in
scope here — that is RP-LOCKORDER's domain.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..callgraph import CallGraph, FunctionRef, project_callgraph
from ..framework import Finding, Project, Rule, chain_attributes
from ..locks import discover_locks, iter_with_held, locks_by_class

__all__ = ["HoldWhileBlockingRule"]

_SOCKET_ALWAYS = {"recv", "recvfrom", "recv_into", "accept", "sendall"}
_SOCKET_HINTED = {"send", "connect"}
_POOL_METHODS = {"map", "starmap", "imap", "imap_unordered", "apply", "join"}
_WAIT_METHODS = {"wait", "wait_for"}
_EVAL_ENTRYPOINTS = {
    "check",
    "check_many",
    "check_iter",
    "contains",
    "contains_many",
    "solutions",
    "solutions_many",
    "solutions_iter",
    "solutions_stream",
    "evaluate",
    "query",
}
_QUEUE_TYPES = {"Queue", "SimpleQueue", "LifoQueue", "PriorityQueue"}
_POOL_TYPES = {"Pool", "Thread"}
_EVAL_TYPES = {"Session", "Engine", "BatchEngine"}


def _has_timeout(call: ast.Call, extra_positional: int = 0) -> bool:
    """A ``timeout=`` keyword, or more positional args than the operation's
    payload needs (``q.get(True, 5)``, ``thread.join(2.0)``)."""
    if any(keyword.arg == "timeout" for keyword in call.keywords):
        return True
    return len(call.args) > extra_positional


def _receiver_names(func: ast.Attribute) -> str:
    """Lower-cased dotted receiver text for substring hints."""
    names = chain_attributes(func.value)
    root = func.value
    while isinstance(root, (ast.Attribute, ast.Subscript)):
        root = root.value
    if isinstance(root, ast.Name):
        names.append(root.id)
    return ".".join(names).lower()


class HoldWhileBlockingRule(Rule):
    id = "RP-HOLD"
    title = "no blocking call while a lock is held"

    def run(self, project: Project) -> Iterator[Finding]:
        graph = project_callgraph(project)
        locks = discover_locks(graph)
        if not locks:
            return
        per_class = locks_by_class(locks)
        self._closure_cache: Dict[FunctionRef, Optional[Tuple[str, str, int]]] = {}

        for ref in sorted(graph.functions):
            info = graph.functions[ref]
            attrs = per_class.get(info.class_name or "", {})
            if not attrs:
                continue
            edges_by_node: Dict[int, List] = {}
            for edge in graph.callees(ref):
                edges_by_node.setdefault(id(edge.node), []).append(edge)
            reported: Set[int] = set()
            for node, held in iter_with_held(info.node, set(attrs)):
                if not held or not isinstance(node, ast.Call):
                    continue
                if node.lineno in reported:
                    continue
                reason = self._blocking_reason(graph, info.class_name, node)
                if reason is not None:
                    # Condition.wait releases the lock it is called on; only
                    # *other* held locks make it a convoy.
                    released = self._released_lock(node, held)
                    effective = held - {released} if released else held
                    if not effective:
                        continue
                    held_names = ", ".join(
                        sorted(attrs[attr].name for attr in effective)
                    )
                    reported.add(node.lineno)
                    yield Finding(
                        path=ref.path,
                        line=node.lineno,
                        rule=self.id,
                        message=f"{reason} while holding {held_names}; move the "
                        "blocking operation outside the locked region",
                    )
                    continue
                for edge in edges_by_node.get(id(node), []):
                    reached = self._blocking_closure(graph, edge.callee, set())
                    if reached is None:
                        continue
                    reason_text, where_path, where_line = reached
                    held_names = ", ".join(sorted(attrs[attr].name for attr in held))
                    reported.add(node.lineno)
                    yield Finding(
                        path=ref.path,
                        line=node.lineno,
                        rule=self.id,
                        message=f"call to {edge.callee.qualname} while holding "
                        f"{held_names} reaches blocking {reason_text} "
                        f"({where_path}:{where_line})",
                    )
                    break

    # -- classification ------------------------------------------------------

    def _blocking_reason(
        self, graph: CallGraph, class_name: Optional[str], call: ast.Call
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "sleep":
                return "sleep()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        hints = _receiver_names(func)
        receiver_type = self._receiver_type(graph, class_name, func.value)
        if method == "sleep":
            return "time.sleep()"
        if method in {"get", "put"}:
            queue_like = receiver_type in _QUEUE_TYPES or "queue" in hints
            if queue_like and not _has_timeout(call, 1 if method == "put" else 0):
                return f"queue .{method}() without a timeout"
            return None
        if method in _SOCKET_ALWAYS:
            return f"socket .{method}()"
        if method in _SOCKET_HINTED and ("sock" in hints or "conn" in hints):
            return f"socket .{method}()"
        if method in _POOL_METHODS:
            pool_like = receiver_type in _POOL_TYPES or any(
                hint in hints for hint in ("pool", "thread", "proc", "worker")
            )
            if pool_like and not (method == "join" and _has_timeout(call)):
                return f"pool/thread .{method}()"
            return None
        if method in _WAIT_METHODS:
            if _has_timeout(call, 1 if method == "wait_for" else 0):
                return None
            return f".{method}() without a timeout"
        if method in _EVAL_ENTRYPOINTS:
            eval_like = receiver_type in _EVAL_TYPES or any(
                hint in hints for hint in ("session", "engine")
            )
            if eval_like:
                return f"evaluation entry point .{method}()"
            return None
        return None

    @staticmethod
    def _released_lock(call: ast.Call, held: frozenset) -> Optional[str]:
        """``self.<cond>.wait(...)`` on a held lock releases that lock."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _WAIT_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
            and func.value.attr in held
        ):
            return func.value.attr
        return None

    @staticmethod
    def _receiver_type(
        graph: CallGraph, class_name: Optional[str], value: ast.AST
    ) -> Optional[str]:
        """Inferred constructor name of ``self.<attr>`` receivers."""
        if (
            class_name is not None
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            return graph.attr_type(class_name, value.attr)
        return None

    def _blocking_closure(
        self, graph: CallGraph, ref: FunctionRef, stack: Set[FunctionRef]
    ) -> Optional[Tuple[str, str, int]]:
        """The first blocking operation reachable from *ref* (its own body
        first, then callees breadth-last), or None."""
        if ref in self._closure_cache:
            return self._closure_cache[ref]
        if ref in stack:
            return None
        info = graph.info(ref)
        if info is None:
            return None
        stack.add(ref)
        result: Optional[Tuple[str, str, int]] = None
        for node in self._own_calls(info.node):
            reason = self._blocking_reason(graph, info.class_name, node)
            if reason is not None:
                result = (reason, ref.path, node.lineno)
                break
        hit_cycle = False
        if result is None:
            for edge in graph.callees(ref):
                if edge.callee in stack:
                    hit_cycle = True
                    continue
                result = self._blocking_closure(graph, edge.callee, stack)
                if result is not None:
                    break
        stack.discard(ref)
        if result is not None or not hit_cycle:
            # a None computed through a truncated recursion cycle is not a
            # settled answer; leave it uncached so other paths re-derive it
            self._closure_cache[ref] = result
        return result

    @staticmethod
    def _own_calls(func: ast.AST) -> Iterator[ast.Call]:
        def walk(node: ast.AST) -> Iterator[ast.Call]:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, ast.Call):
                    yield child
                yield from walk(child)

        yield from walk(func)
