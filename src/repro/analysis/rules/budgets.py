"""RP-TICK and RP-MONO: deadline discipline in hot loops (PR 7).

**RP-TICK** — the registered hot-loop functions (homomorphism backtracking,
the AC-3 worklist, naive materialisation, both enumeration streams, the
generic pebble fixpoint) must call ``tick()`` in every ``while`` loop and
every *outermost* ``for`` loop of their own body.  Inner loops are treated
as amortized by the enclosing loop's tick (the whole point of
``Budget.tick(n)``'s batched accounting), and nested ``def``\\ s are
separate units — ``_search.backtrack`` registers the inner function, not
its driver.  A registered function that no longer exists is itself a
finding: a stale registry silently un-protects a hot loop.

**RP-MONO** — deadline arithmetic uses the monotonic clock only, anywhere
in ``src/repro``: ``time.time()``, ``from time import time``, and argless
``datetime.now()`` / ``utcnow()`` / ``today()`` are flagged.  Wall-clock
timestamps jump under NTP steps and break absolute-deadline budgets that
travel across processes.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..callgraph import project_callgraph
from ..framework import Finding, Project, Rule, own_statements

__all__ = ["TickRule", "MonotonicRule", "HOT_LOOPS"]

#: (module suffix, dotted qualname) of every registered hot-loop function.
#: Extend this list when a new enumeration / propagation loop lands.
HOT_LOOPS: Tuple[Tuple[str, str], ...] = (
    ("hom/homomorphism.py", "_search.backtrack"),
    ("evaluation/naive.py", "evaluate_pattern"),
    ("evaluation/wdeval.py", "tree_solutions_stream"),
    ("evaluation/wdeval.py", "forest_solutions_stream"),
    ("pebble/kernel.py", "ConsistencyKernel._solve_two_pebbles"),
    ("pebble/kernel.py", "ConsistencyKernel._solve_generic"),
    ("service/core.py", "QueryService._serve_loop"),
)

_TICK_NAMES = {"tick"}


def _outermost_loops(func: ast.AST) -> List[ast.AST]:
    """``while`` loops (all of them) and ``for`` loops not nested in another
    loop, within *func*'s own body (nested defs excluded)."""
    loops: List[ast.AST] = []
    in_loop: Set[int] = set()

    def visit(node: ast.AST, inside_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.While):
                loops.append(child)
                visit(child, True)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                if not inside_loop:
                    loops.append(child)
                visit(child, True)
            else:
                visit(child, inside_loop)

    visit(func, False)
    return loops


def _loop_body_ticks(loop: ast.AST) -> bool:
    """Does the loop body (excluding nested defs) contain a ``tick(`` call?"""
    for statement in loop.body + getattr(loop, "orelse", []):
        for node in [statement, *own_statements(statement)]:
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in _TICK_NAMES:
                    return True
                if isinstance(func, ast.Attribute) and func.attr in _TICK_NAMES:
                    return True
    return False


class TickRule(Rule):
    id = "RP-TICK"
    title = "registered hot loops call tick() in every while / outermost for"

    def run(self, project: Project) -> Iterator[Finding]:
        graph = project_callgraph(project)
        for suffix, qualname in HOT_LOOPS:
            module = project.module(suffix)
            if module is None or module.tree is None:
                continue  # fixture projects carry only the module under test
            info = graph.lookup(suffix, qualname)
            func = info.node if info is not None else None
            if func is None or not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                yield Finding(
                    path=module.relpath,
                    line=1,
                    rule=self.id,
                    message=f"registered hot-loop function {qualname!r} not found; "
                    "update HOT_LOOPS in repro/analysis/rules/budgets.py",
                )
                continue
            for loop in _outermost_loops(func):
                if not _loop_body_ticks(loop):
                    shape = "while" if isinstance(loop, ast.While) else "for"
                    yield Finding(
                        path=module.relpath,
                        line=loop.lineno,
                        rule=self.id,
                        message=f"{qualname}: {shape} loop without a tick() call; "
                        "hot loops must stay deadline-responsive",
                    )


class MonotonicRule(Rule):
    id = "RP-MONO"
    title = "deadline arithmetic uses the monotonic clock only"

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.parsed():
            wall_time_names: Set[str] = set()
            for node in ast.walk(file.tree):
                if isinstance(node, ast.ImportFrom) and node.module == "time":
                    for alias in node.names:
                        if alias.name == "time":
                            wall_time_names.add(alias.asname or alias.name)
                            yield Finding(
                                path=file.relpath,
                                line=node.lineno,
                                rule=self.id,
                                message="`from time import time` imports the wall "
                                "clock; deadlines must use time.monotonic()",
                            )
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "time"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    yield Finding(
                        path=file.relpath,
                        line=node.lineno,
                        rule=self.id,
                        message="time.time() is wall clock; deadline/budget code "
                        "must use time.monotonic()",
                    )
                elif isinstance(func, ast.Name) and func.id in wall_time_names:
                    yield Finding(
                        path=file.relpath,
                        line=node.lineno,
                        rule=self.id,
                        message="time() (wall clock) call; deadline/budget code "
                        "must use time.monotonic()",
                    )
                elif isinstance(func, ast.Attribute) and func.attr in {
                    "utcnow",
                    "today",
                }:
                    if self._is_datetime_chain(func.value):
                        yield Finding(
                            path=file.relpath,
                            line=node.lineno,
                            rule=self.id,
                            message=f"datetime.{func.attr}() is wall clock; use "
                            "time.monotonic() for durations",
                        )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "now"
                    and not node.args
                    and not node.keywords
                    and self._is_datetime_chain(func.value)
                ):
                    yield Finding(
                        path=file.relpath,
                        line=node.lineno,
                        rule=self.id,
                        message="argless datetime.now() is wall clock; use "
                        "time.monotonic() for durations",
                    )

    @staticmethod
    def _is_datetime_chain(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id == "datetime"
        if isinstance(node, ast.Attribute):
            return node.attr == "datetime"
        return False
