"""RP-IDKEY: no process-local ``id()`` in portable cache keys (PR 1/5).

:class:`~repro.evaluation.cache.EvaluationCache` keys some entry kinds on
``id(tree)`` for speed — that is sound only because the delta export path
translates those keys to portable tree *slots* at the process boundary.
The contract this rule enforces:

* In ``evaluation/cache.py``, an insert site (``_bounded_insert``) whose
  kind literal is in ``_DELTA_KINDS`` may only build its key from ``id()``
  when the kind is also in ``_TREE_KEYED_KINDS`` (the kinds the export /
  absorb boundary translates).  An ``id()`` key on any other delta kind
  would ship a meaningless process-local address to the parent and poison
  the shared cache.
* In every other ``evaluation/`` module, no ``id()`` call may appear in the
  arguments of a ``CacheDelta(...)`` construction or an ``export_delta`` /
  ``absorb`` call — deltas are the cross-process channel and must stay
  address-free end to end.

Key expressions assigned to a local first (``key = (id(tree), ...)``) are
chased one assignment deep, which covers the codebase's idiom.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..framework import Finding, Project, Rule, SourceFile

__all__ = ["IdKeyRule"]

#: Fallbacks used when the scanned cache module does not define the sets
#: (kept in sync with evaluation/cache.py by the live-tree test).
_DEFAULT_DELTA_KINDS = frozenset({"hom", "homlist", "pebble", "subtree", "treesol"})
_DEFAULT_TREE_KEYED_KINDS = frozenset({"subtree", "treesol"})

_DELTA_CALLS = {"export_delta", "absorb"}


def _frozenset_literal(node: ast.AST) -> Optional[Set[str]]:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "frozenset"
        and len(node.args) == 1
        and isinstance(node.args[0], (ast.Set, ast.List, ast.Tuple))
    ):
        values: Set[str] = set()
        for element in node.args[0].elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                values.add(element.value)
            else:
                return None
        return values
    return None


def _kind_sets(module: SourceFile) -> Dict[str, Set[str]]:
    sets = {
        "_DELTA_KINDS": set(_DEFAULT_DELTA_KINDS),
        "_TREE_KEYED_KINDS": set(_DEFAULT_TREE_KEYED_KINDS),
    }
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id in sets:
                literal = _frozenset_literal(node.value)
                if literal is not None:
                    sets[target.id] = literal
    return sets


def _has_id_call(node: ast.AST, assignments: Dict[str, ast.AST]) -> bool:
    """Does *node* contain ``id(...)``, chasing Name refs one level?"""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "id"
        ):
            return True
        if isinstance(child, ast.Name) and child.id in assignments:
            target = assignments[child.id]
            for sub in ast.walk(target):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                ):
                    return True
    return False


def _local_assignments(func: ast.AST) -> Dict[str, ast.AST]:
    assignments: Dict[str, ast.AST] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assignments[target.id] = node.value
    return assignments


class IdKeyRule(Rule):
    id = "RP-IDKEY"
    title = "no id() reaches a portable cache key or CacheDelta entry"

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.parsed():
            if file.relpath.endswith("evaluation/cache.py"):
                yield from self._check_cache_module(file)
            elif "/evaluation/" in file.relpath:
                yield from self._check_delta_caller(file)

    def _check_cache_module(self, module: SourceFile) -> Iterator[Finding]:
        sets = _kind_sets(module)
        portable_kinds = sets["_DELTA_KINDS"] - sets["_TREE_KEYED_KINDS"]
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            assignments = _local_assignments(func)
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "_bounded_insert"
                ):
                    continue
                kind, key_expr = self._kind_and_key(node)
                if kind is None or key_expr is None:
                    continue  # dynamic kind (absorb's re-insert loop)
                if kind in portable_kinds and _has_id_call(key_expr, assignments):
                    yield Finding(
                        path=module.relpath,
                        line=node.lineno,
                        rule=self.id,
                        message=f"cache kind {kind!r} travels in CacheDelta but its "
                        "key is built from id(); only _TREE_KEYED_KINDS may use "
                        "id() keys (the export/absorb boundary translates them)",
                    )

    @staticmethod
    def _kind_and_key(call: ast.Call):
        """The kind string literal and the argument following it, if any."""
        arguments: List[ast.AST] = list(call.args)
        for index, arg in enumerate(arguments):
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                key_expr = arguments[index + 1] if index + 1 < len(arguments) else None
                return arg.value, key_expr
        return None, None

    def _check_delta_caller(self, module: SourceFile) -> Iterator[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            assignments = _local_assignments(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                name = ""
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                is_delta_site = name == "CacheDelta" or name in _DELTA_CALLS
                if not is_delta_site:
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if _has_id_call(arg, assignments):
                        yield Finding(
                            path=module.relpath,
                            line=node.lineno,
                            rule=self.id,
                            message=f"id() flows into {name}(...); CacheDelta "
                            "payloads must be free of process-local addresses",
                        )
                        break
