"""RP-EXC: every ``raise`` uses the project exception taxonomy.

Callers catch :class:`~repro.exceptions.ReproError` (and its
``EvaluationError`` / ``DeadlineExceeded`` branches) at well-defined
recovery points — the pool supervisor, the CLI, the streaming drains.  A
``raise RuntimeError`` deep in an evaluation path sails straight past all
of them, so every raise must use a taxonomy class or one of the stdlib
types the codebase deliberately lets escape (programming errors such as
``TypeError`` / ``ValueError`` on bad arguments, protocol types such as
``StopIteration`` / ``SystemExit``).

The taxonomy is discovered, not hardcoded: every class defined in an
``exceptions.py`` module is a seed, and any class in the tree that
(transitively) inherits from a taxonomy name joins it — which is how
``FaultInjected(EvaluationError)`` in ``evaluation/faults.py`` qualifies.
Bare re-raises and ``raise err`` of a variable are skipped (the original
classification already happened at the original raise site).
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, Set

from ..framework import Finding, Project, Rule

__all__ = ["ExceptionTaxonomyRule", "STDLIB_WHITELIST"]

#: Stdlib exception types allowed outside the taxonomy.
STDLIB_WHITELIST = {
    "TypeError",
    "ValueError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "NotImplementedError",
    "StopIteration",
    "SystemExit",
    "AssertionError",
}

_BUILTIN_EXCEPTIONS = {
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
}


def _terminal_name(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _taxonomy(project: Project) -> Set[str]:
    """Class names rooted in an ``exceptions.py`` module, closed over bases."""
    taxonomy: Set[str] = set()
    bases: Dict[str, Set[str]] = {}
    for file in project.parsed():
        is_seed_module = file.relpath.endswith("exceptions.py")
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                base_names = {_terminal_name(base) for base in node.bases}
                bases.setdefault(node.name, set()).update(base_names)
                if is_seed_module and (
                    base_names & ({"Exception", "BaseException"} | taxonomy)
                    or node.name == "ReproError"
                ):
                    taxonomy.add(node.name)
    changed = True
    while changed:
        changed = False
        for name, base_names in bases.items():
            if name not in taxonomy and base_names & taxonomy:
                taxonomy.add(name)
                changed = True
    return taxonomy


class ExceptionTaxonomyRule(Rule):
    id = "RP-EXC"
    title = "raises use the ReproError taxonomy or whitelisted stdlib types"

    def run(self, project: Project) -> Iterator[Finding]:
        taxonomy = _taxonomy(project)
        defined: Set[str] = set()
        for file in project.parsed():
            for node in ast.walk(file.tree):
                if isinstance(node, ast.ClassDef):
                    defined.add(node.name)
        allowed = taxonomy | STDLIB_WHITELIST
        for file in project.parsed():
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                target = exc.func if isinstance(exc, ast.Call) else exc
                name = _terminal_name(target)
                if not name or name in allowed:
                    continue
                if name in _BUILTIN_EXCEPTIONS:
                    yield Finding(
                        path=file.relpath,
                        line=node.lineno,
                        rule=self.id,
                        message=f"raise {name}: outside the ReproError taxonomy "
                        "and not a whitelisted stdlib type; recovery points "
                        "(supervisor, CLI, drains) will not catch it",
                    )
                elif name in defined:
                    yield Finding(
                        path=file.relpath,
                        line=node.lineno,
                        rule=self.id,
                        message=f"raise {name}: project exception class outside "
                        "the ReproError taxonomy; derive it from ReproError",
                    )
                # Anything else is an unresolvable variable / imported name —
                # the classification happened (or is checked) elsewhere.
