"""RP-FORKSTATE: worker-side mutation of module globals needs a guard.

The pool workers in ``evaluation/session.py`` communicate with their task
functions through module-level dicts (``_WORKER_STATE`` / ``_ENUM_STATE``)
that the pool initializer rebinds in each worker process.  That pattern is
fork-safe only under discipline: the parent must never read what a worker
wrote, and the initializer must fully overwrite whatever a fork inherited.
Because the discipline is invisible at the mutation site, this rule makes
it explicit — any module-level *mutable* global (dict/list/set literal or
constructor, ``defaultdict(...)``) that a worker-side function mutates must
carry a ``# fork-safe:`` comment at its definition explaining why the
mutation cannot leak between parent and workers.

Worker-side functions are matched by the same naming convention the pool
boundary uses (``_init_*worker``, ``_worker_*``, ``_enum_*``,
``_export_*delta``); mutation means subscript/attribute stores, mutator
method calls, or a ``global`` rebind inside such a function.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from ..framework import Finding, Project, Rule, SourceFile, attribute_root
from .pickling import WORKER_NAME

__all__ = ["ForkStateRule"]

_MUTABLE_CONSTRUCTORS = {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter"}
_MUTATOR_METHODS = {
    "update",
    "setdefault",
    "clear",
    "append",
    "extend",
    "add",
    "discard",
    "remove",
    "pop",
    "popitem",
    "insert",
}
_GUARD_MARKER = "# fork-safe:"


def _mutable_globals(module: SourceFile) -> Dict[str, int]:
    """Module-level names bound to a mutable container → definition line."""
    result: Dict[str, int] = {}
    for node in module.tree.body:
        targets = []
        value = None
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target]
            value = node.value
        if value is None or not targets:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CONSTRUCTORS
        )
        if mutable:
            for target in targets:
                result[target.id] = node.lineno
    return result


def _is_guarded(module: SourceFile, definition_line: int) -> bool:
    """A ``# fork-safe:`` comment on the definition line or anywhere in the
    contiguous comment block immediately above it."""
    if _GUARD_MARKER in module.line_text(definition_line):
        return True
    line = definition_line - 1
    while line >= 1 and module.line_text(line).lstrip().startswith("#"):
        if _GUARD_MARKER in module.line_text(line):
            return True
        line -= 1
    return False


class ForkStateRule(Rule):
    id = "RP-FORKSTATE"
    title = "worker-mutated module globals carry a fork-safety guard comment"

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.parsed():
            globals_ = _mutable_globals(file)
            if not globals_:
                continue
            for node in file.tree.body:
                if isinstance(node, ast.FunctionDef) and WORKER_NAME.match(node.name):
                    yield from self._check_worker(file, node, globals_)

    def _check_worker(
        self, module: SourceFile, func: ast.FunctionDef, globals_: Dict[str, int]
    ) -> Iterator[Finding]:
        reported: set = set()

        def report(name: str, node: ast.AST, how: str) -> Iterator[Finding]:
            if name in reported or _is_guarded(module, globals_[name]):
                return
            reported.add(name)
            yield Finding(
                path=module.relpath,
                line=node.lineno,
                rule=self.id,
                message=f"worker {func.name}() {how} module global {name} "
                "without a '# fork-safe:' comment at its definition "
                f"(line {globals_[name]})",
            )

        declared_global = {
            name
            for node in ast.walk(func)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = attribute_root(target)
                        if isinstance(root, ast.Name) and root.id in globals_:
                            yield from report(root.id, node, "writes into")
                    elif isinstance(target, ast.Name) and target.id in declared_global:
                        if target.id in globals_:
                            yield from report(target.id, node, "rebinds")
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATOR_METHODS:
                    root = attribute_root(node.func.value)
                    if isinstance(root, ast.Name) and root.id in globals_:
                        yield from report(root.id, node, "mutates")
