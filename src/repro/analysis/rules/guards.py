"""RP-GUARD: guarded attributes are only touched with their lock held (PR 10).

PR 9 made one warm :class:`~repro.evaluation.session.Session` shared across
a thread pool; the attributes that keep that safe (the cache's containers,
the service's backlog state, the stats samples, the session's resilience
counters) are each guarded by a specific lock — a contract that previously
lived in docstrings.  This rule makes it checkable:

* the :data:`GUARDED_BY` registry below (plus ``# guarded-by: <lock>``
  comments on attribute assignment lines, for classes whose guarded surface
  is wide — see ``ServiceStats``) maps each mutable attribute to its lock;
* any ``self.<attr>`` read or write of a guarded attribute that is not
  lexically inside the matching ``with self.<lock>:`` is a finding —
  *unless* the enclosing function is a private helper (or a nested def)
  that the call graph proves is only ever called with the lock held
  (``EvaluationCache._evict_tree_table`` is the canonical example: no lock
  of its own, every call site inside ``_tree_table``'s locked region).

``__init__`` is exempt: construction happens-before publication, so the
single-threaded initial assignments need no lock.  ``lambda`` bodies are
not scanned — the only lambdas near locks here are ``Condition.wait_for``
predicates, which the condition invokes with its own lock held.

The proof is deliberately narrow: only same-class call sites through
``self`` count (a lock attribute on a *different* instance is a different
lock), public methods are never proven (any external caller could appear),
and recursion without a locked entry point fails the proof.  "Cannot
prove" therefore means "finding", keeping the rule's errors one-sided.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Set, Tuple

from ..callgraph import CallGraph, FunctionRef, project_callgraph
from ..framework import Finding, Project, Rule
from ..locks import (
    LockDef,
    build_guard_map,
    discover_locks,
    held_at_nodes,
    iter_with_held,
    locks_by_class,
)

__all__ = ["GuardedByRule", "GUARDED_BY"]

#: (module suffix, class, attribute, guarding lock attribute).
#: The central declarations for the four concurrency-bearing modules;
#: classes with many guarded attributes (ServiceStats, ServiceServer)
#: declare them at the definition site with ``# guarded-by:`` comments
#: instead.  Extend this table when a new shared mutable attribute lands.
GUARDED_BY: Tuple[Tuple[str, str, str, str], ...] = (
    ("evaluation/cache.py", "EvaluationCache", "_graphs", "_lock"),
    ("evaluation/cache.py", "EvaluationCache", "_trees", "_lock"),
    ("evaluation/cache.py", "EvaluationCache", "_journal", "_lock"),
    ("evaluation/session.py", "Session", "_engines", "_memo_lock"),
    ("evaluation/session.py", "Session", "_statistics", "_memo_lock"),
    ("service/core.py", "QueryService", "_backlog", "_lock"),
    ("service/core.py", "QueryService", "_inflight", "_lock"),
    ("service/core.py", "QueryService", "_sequence", "_lock"),
    ("service/core.py", "QueryService", "_closed", "_lock"),
    ("service/core.py", "QueryService", "_patterns", "_lock"),
    ("service/gate.py", "ReadWriteGate", "_readers", "_cond"),
    ("service/gate.py", "ReadWriteGate", "_writer_active", "_cond"),
    ("service/gate.py", "ReadWriteGate", "_writers_waiting", "_cond"),
)

#: Functions whose bare name exempts their body: construction and teardown
#: happen-before/after any sharing, so their assignments need no lock.
_EXEMPT_METHODS = {"__init__", "__del__"}


class GuardedByRule(Rule):
    id = "RP-GUARD"
    title = "guarded attributes are only accessed with their lock held"

    def run(self, project: Project) -> Iterator[Finding]:
        graph = project_callgraph(project)
        guard_map = build_guard_map(project, graph, GUARDED_BY)
        for path, line, message in guard_map.errors:
            yield Finding(path=path, line=line, rule=self.id, message=message)
        guarded_by_class = guard_map.by_class()
        if not guarded_by_class:
            return
        lock_attrs_by_class = {
            cls: set(attrs) for cls, attrs in locks_by_class(discover_locks(graph)).items()
        }
        self._held_maps: Dict[FunctionRef, Dict[int, FrozenSet[str]]] = {}
        self._proofs: Dict[Tuple[FunctionRef, str], bool] = {}

        for ref in sorted(graph.functions):
            info = graph.functions[ref]
            cls = info.class_name
            if cls is None or cls not in guarded_by_class:
                continue
            if ref.name in _EXEMPT_METHODS and not info.is_nested:
                continue
            guarded = guarded_by_class[cls]
            lock_attrs = lock_attrs_by_class.get(cls, set())
            reported: Set[Tuple[int, str]] = set()
            for node, held in iter_with_held(info.node, lock_attrs):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guarded
                ):
                    continue
                lock = guarded[node.attr]
                if lock.attr in held:
                    continue
                if self._proven_lock_held(graph, lock_attrs_by_class, ref, lock, set()):
                    continue  # whole function proven entered under this lock
                key = (node.lineno, node.attr)
                if key in reported:
                    continue
                reported.add(key)
                yield Finding(
                    path=ref.path,
                    line=node.lineno,
                    rule=self.id,
                    message=f"{cls}.{node.attr} accessed without holding its "
                    f"guarding lock self.{lock.attr} ({lock.name}); hold the "
                    "lock, snapshot under it, or suppress with a rationale",
                )

    # -- "only called under the lock" proof ----------------------------------

    def _held_map(
        self,
        graph: CallGraph,
        lock_attrs_by_class: Dict[str, Set[str]],
        ref: FunctionRef,
    ) -> Dict[int, FrozenSet[str]]:
        cached = self._held_maps.get(ref)
        if cached is None:
            info = graph.functions[ref]
            attrs = lock_attrs_by_class.get(info.class_name or "", set())
            cached = held_at_nodes(info.node, attrs)
            self._held_maps[ref] = cached
        return cached

    def _proven_lock_held(
        self,
        graph: CallGraph,
        lock_attrs_by_class: Dict[str, Set[str]],
        ref: FunctionRef,
        lock: LockDef,
        stack: Set[FunctionRef],
    ) -> bool:
        """Is *ref* only ever entered with *lock* (a lock of its own class,
        on the same instance) already held?"""
        info = graph.info(ref)
        if info is None or info.class_name != lock.cls:
            return False
        name = ref.name
        private = info.is_nested or (name.startswith("_") and not name.startswith("__"))
        if not private:
            return False  # public surface: any unlocked caller could appear
        cache_key = (ref, lock.name)
        if cache_key in self._proofs:
            return self._proofs[cache_key]
        if ref in stack:
            return False  # recursive cycle with no locked entry point
        callers = graph.callers(ref)
        if not callers:
            self._proofs[cache_key] = False
            return False
        stack.add(ref)
        proven = True
        for edge in callers:
            caller_info = graph.info(edge.caller)
            if (
                not edge.via_self
                or caller_info is None
                or caller_info.class_name != lock.cls
            ):
                proven = False
                break
            held = self._held_map(graph, lock_attrs_by_class, edge.caller).get(
                id(edge.node), frozenset()
            )
            if lock.attr in held:
                continue
            if self._proven_lock_held(
                graph, lock_attrs_by_class, edge.caller, lock, stack
            ):
                continue
            proven = False
            break
        stack.discard(ref)
        self._proofs[cache_key] = proven
        return proven
