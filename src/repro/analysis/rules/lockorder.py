"""RP-LOCKORDER: lock acquisitions follow one sanctioned partial order (PR 10).

Deadlock needs two locks taken in opposite orders by two threads.  The
cheap static defence is a *global acquisition order*: every nested
acquisition — lexical (``with self._a: ... with self._b:``) or through a
call made while a lock is held (``with self._lock: self._stats.note(...)``
where ``note`` takes ``ServiceStats._lock``) — must be an edge of the
sanctioned partial order declared in :data:`LOCK_ORDER`.  The rule

* discovers every lock in the project (see :mod:`repro.analysis.locks`),
* extracts the acquisition-order graph over the named locks — the gate
  condition, the cache RLock, the session memo lock, the service and stats
  locks — following call edges from held regions through the shared call
  graph (transitively, cycle-safe),
* flags any edge outside :data:`LOCK_ORDER`, any cycle in the observed
  graph, and any re-acquisition of a non-reentrant lock (a plain ``Lock``
  taken while the *same* lock name is already held: certain deadlock on
  one instance, an ordering hazard across two).

Locks are compared name-level (``Class.attr``): two instances of one class
share a discipline, which is conservative in exactly the direction a
deadlock rule wants.  The live tree sanctions a single edge —
``QueryService._lock → ServiceStats._lock`` (admission bookkeeping inside
the admission lock); everything else must stay single-lock.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..callgraph import CallGraph, FunctionRef, project_callgraph
from ..framework import Finding, Project, Rule
from ..locks import LockDef, discover_locks, iter_with_held, locks_by_class, match_self_lock

__all__ = ["LockOrderRule", "LOCK_ORDER"]

#: The sanctioned acquisition-order edges, ``(outer lock, inner lock)`` by
#: project-wide lock name.  This is a *partial order*: an edge not listed
#: here is a finding even if it is acyclic — new nested acquisitions must
#: be reviewed and added deliberately.  Keep this table acyclic
#: (``tests/test_analysis.py`` asserts it).
LOCK_ORDER: Tuple[Tuple[str, str], ...] = (
    ("QueryService._lock", "ServiceStats._lock"),
)


class LockOrderRule(Rule):
    id = "RP-LOCKORDER"
    title = "nested lock acquisitions follow the sanctioned partial order"

    def run(self, project: Project) -> Iterator[Finding]:
        graph = project_callgraph(project)
        locks = discover_locks(graph)
        if not locks:
            return
        per_class = locks_by_class(locks)
        self._acquired_cache: Dict[FunctionRef, Set[LockDef]] = {}

        #: (outer name, inner name) -> first observed site (path, line, detail)
        edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        reentry: List[Finding] = []

        for ref in sorted(graph.functions):
            info = graph.functions[ref]
            attrs = per_class.get(info.class_name or "", {})
            edges_by_node = {
                id(edge.node): [] for edge in graph.callees(ref)
            }  # type: Dict[int, List]
            for edge in graph.callees(ref):
                edges_by_node[id(edge.node)].append(edge)
            for node, held in iter_with_held(info.node, set(attrs)):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    current = set(held)
                    for item in node.items:
                        acquired = match_self_lock(item.context_expr, set(attrs))
                        if acquired is None:
                            continue
                        inner = attrs[acquired]
                        for held_attr in current:
                            outer = attrs[held_attr]
                            if outer.name == inner.name:
                                if not inner.reentrant:
                                    reentry.append(
                                        Finding(
                                            path=ref.path,
                                            line=node.lineno,
                                            rule=self.id,
                                            message=f"{inner.name} is a non-reentrant "
                                            f"{inner.kind} re-acquired while already "
                                            "held: guaranteed deadlock",
                                        )
                                    )
                            else:
                                edges.setdefault(
                                    (outer.name, inner.name),
                                    (ref.path, node.lineno, f"in {ref.qualname}"),
                                )
                        current.add(acquired)
                elif isinstance(node, ast.Call) and held:
                    for edge in edges_by_node.get(id(node), []):
                        for inner in self._acquired_closure(
                            graph, per_class, edge.callee, set()
                        ):
                            for held_attr in held:
                                outer = attrs[held_attr]
                                if outer.name == inner.name:
                                    if not inner.reentrant:
                                        reentry.append(
                                            Finding(
                                                path=ref.path,
                                                line=node.lineno,
                                                rule=self.id,
                                                message=f"call to {edge.callee.qualname} "
                                                f"re-acquires non-reentrant {inner.name} "
                                                "while it is already held",
                                            )
                                        )
                                else:
                                    edges.setdefault(
                                        (outer.name, inner.name),
                                        (
                                            ref.path,
                                            node.lineno,
                                            f"in {ref.qualname} via "
                                            f"{edge.callee.qualname}",
                                        ),
                                    )

        yield from sorted(reentry)
        sanctioned = set(LOCK_ORDER)
        for (outer, inner), (path, line, detail) in sorted(edges.items()):
            if (outer, inner) in sanctioned:
                continue
            yield Finding(
                path=path,
                line=line,
                rule=self.id,
                message=f"lock acquisition edge {outer} -> {inner} ({detail}) is "
                "outside the sanctioned order; extend LOCK_ORDER in "
                "repro/analysis/rules/lockorder.py deliberately or restructure",
            )
        cycle = _find_cycle(set(edges))
        if cycle is not None:
            first = edges[(cycle[0], cycle[1])]
            yield Finding(
                path=first[0],
                line=first[1],
                rule=self.id,
                message="lock acquisition cycle: " + " -> ".join(cycle),
            )

    def _acquired_closure(
        self,
        graph: CallGraph,
        per_class: Dict[str, Dict[str, LockDef]],
        ref: FunctionRef,
        stack: Set[FunctionRef],
    ) -> Set[LockDef]:
        """Every lock *ref* may acquire, directly or through its callees."""
        cached = self._acquired_cache.get(ref)
        if cached is not None:
            return cached
        if ref in stack:
            return set()
        info = graph.info(ref)
        if info is None:
            return set()
        stack.add(ref)
        attrs = per_class.get(info.class_name or "", {})
        acquired: Set[LockDef] = set()
        for node, _held in iter_with_held(info.node, set(attrs)):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    attr = match_self_lock(item.context_expr, set(attrs))
                    if attr is not None:
                        acquired.add(attrs[attr])
        for edge in graph.callees(ref):
            acquired |= self._acquired_closure(graph, per_class, edge.callee, stack)
        stack.discard(ref)
        self._acquired_cache[ref] = acquired
        return acquired


def _find_cycle(edges: Set[Tuple[str, str]]) -> Optional[List[str]]:
    """One cycle in the name-level edge set, as ``[a, b, ..., a]``."""
    adjacency: Dict[str, List[str]] = {}
    for outer, inner in sorted(edges):
        adjacency.setdefault(outer, []).append(inner)
    visiting: List[str] = []
    done: Set[str] = set()

    def dfs(name: str) -> Optional[List[str]]:
        if name in visiting:
            start = visiting.index(name)
            return visiting[start:] + [name]
        if name in done:
            return None
        visiting.append(name)
        for target in adjacency.get(name, []):
            found = dfs(target)
            if found is not None:
                return found
        visiting.pop()
        done.add(name)
        return None

    for name in sorted(adjacency):
        found = dfs(name)
        if found is not None:
            return found
    return None
