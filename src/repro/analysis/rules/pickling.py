"""RP-PICKLE: pool payload classes must be explicitly picklable (PR 3/5).

The worker functions in ``evaluation/session.py`` / ``evaluation/batch.py``
are the process-pool boundary: everything their signatures name travels
through ``multiprocessing`` pickling on the spawn paths.  A payload class
must therefore define ``__reduce__`` / ``__reduce_ex__`` / ``__getstate__``
(or be a dataclass / NamedTuple, whose default pickling is structural), or
be registered below with a rationale for why pickling never happens.

``GraphPattern`` is singled out: the picklable normal form that crosses
the boundary is :class:`~repro.patterns.forest.WDPatternForest`; a raw
``GraphPattern`` in a worker signature or body is a design regression even
if it happens to pickle.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set

from ..framework import Finding, Project, Rule, SourceFile

__all__ = ["PoolPayloadRule", "WORKER_NAME"]

#: Module-level functions that run on (or initialize) pool workers.
WORKER_NAME = re.compile(r"^(_init_\w*worker|_worker_\w+|_enum_\w+|_export_\w*delta)$")

#: Files whose worker signatures define the pool boundary.
_BOUNDARY_FILES = ("evaluation/session.py", "evaluation/batch.py")

#: Annotation names that are not payload classes.
_NON_PAYLOAD = {
    "int",
    "float",
    "str",
    "bool",
    "bytes",
    "object",
    "None",
    "type",
    "Optional",
    "Union",
    "List",
    "Tuple",
    "Dict",
    "Set",
    "FrozenSet",
    "Sequence",
    "Iterable",
    "Iterator",
    "Callable",
    "Any",
}

#: Classes allowed across the boundary without pickle hooks, with the
#: reason they never actually pickle.
PICKLE_SAFE: Dict[str, str] = {
    "Session": "fork-only warm initarg passed by address; spawn and "
    "forkserver paths pass None and the worker rebuilds its own session",
}

_PICKLE_HOOKS = {"__reduce__", "__reduce_ex__", "__getstate__"}


def _annotation_names(node: Optional[ast.AST], module: SourceFile) -> Iterator[ast.AST]:
    """Terminal class-name nodes of an annotation, unwrapping typing forms."""
    if node is None:
        return
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: parse and recurse ("Session", "Optional[X]").
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return
        for name in _annotation_names(parsed, module):
            # Preserve the original position for reporting.
            ast.copy_location(name, node)
            yield name
        return
    if isinstance(node, ast.Subscript):
        yield from _annotation_names(node.slice, module)
        return
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _annotation_names(element, module)
        return
    if isinstance(node, (ast.Name, ast.Attribute)):
        yield node


def _terminal_name(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _typing_imports(module: SourceFile) -> Set[str]:
    """Names imported from ``typing`` in *module* (skipped as payloads)."""
    names: Set[str] = set()
    if module.tree is None:
        return names
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and (node.module or "").startswith("typing"):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _class_index(project: Project) -> Dict[str, ast.ClassDef]:
    index: Dict[str, ast.ClassDef] = {}
    for file in project.parsed():
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                index.setdefault(node.name, node)
    return index


def _is_picklable(cls: ast.ClassDef) -> bool:
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if item.name in _PICKLE_HOOKS:
                return True
    for decorator in cls.decorator_list:
        name = _terminal_name(decorator.func if isinstance(decorator, ast.Call) else decorator)
        if name == "dataclass":
            return True
    for base in cls.bases:
        if _terminal_name(base) in {"NamedTuple", "tuple"}:
            return True
    return False


class PoolPayloadRule(Rule):
    id = "RP-PICKLE"
    title = "pool payload classes define pickle hooks or are registered safe"

    def run(self, project: Project) -> Iterator[Finding]:
        classes = _class_index(project)
        for suffix in _BOUNDARY_FILES:
            module = project.module(suffix)
            if module is None or module.tree is None:
                continue
            typing_names = _typing_imports(module)
            for node in module.tree.body:
                if not isinstance(node, ast.FunctionDef):
                    continue
                if not WORKER_NAME.match(node.name):
                    continue
                yield from self._check_worker(module, node, classes, typing_names)

    def _check_worker(
        self,
        module: SourceFile,
        func: ast.FunctionDef,
        classes: Dict[str, ast.ClassDef],
        typing_names: Set[str],
    ) -> Iterator[Finding]:
        args = list(func.args.args) + list(func.args.kwonlyargs)
        seen: Set[str] = set()
        for arg in args:
            for name_node in _annotation_names(arg.annotation, module):
                name = _terminal_name(name_node)
                if not name or name in _NON_PAYLOAD or name in typing_names:
                    continue
                if name == "GraphPattern":
                    yield Finding(
                        path=module.relpath,
                        line=name_node.lineno,
                        rule=self.id,
                        message=f"worker {func.name}() takes a GraphPattern across "
                        "the pool boundary; ship the WDPatternForest normal form",
                    )
                    continue
                if name in seen:
                    continue
                seen.add(name)
                cls = classes.get(name)
                if cls is None:
                    continue  # not resolvable in this tree (stdlib etc.)
                if _is_picklable(cls):
                    continue
                if name in PICKLE_SAFE:
                    continue
                yield Finding(
                    path=module.relpath,
                    line=name_node.lineno,
                    rule=self.id,
                    message=f"worker {func.name}() payload class {name} defines no "
                    "__reduce__/__getstate__ and is not registered pickle-safe",
                )
        # A GraphPattern referenced in the body is the same boundary leak.
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and node.id == "GraphPattern":
                yield Finding(
                    path=module.relpath,
                    line=node.lineno,
                    rule=self.id,
                    message=f"worker {func.name}() references GraphPattern; only "
                    "the WDPatternForest normal form may cross the pool boundary",
                )
