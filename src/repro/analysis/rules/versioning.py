"""RP-VERSION: one version bump per public batch mutation (PR 6 contract).

The columnar :class:`~repro.rdf.graph.RDFGraph` and the retained
:class:`~repro.rdf.reference.ReferenceRDFGraph` promise that every public
entry point which writes the storage columns / hash indexes bumps
``_version`` **exactly once** — warm caches must be invalidated, and a bulk
load must invalidate them once, not once per triple (the PR 6 regression
class this rule exists for).

The rule builds a per-method table for each graph class: direct storage
mutations (mutator-method calls rooted at a storage attribute of ``self``,
including one-level local aliases like ``spo = self._spo``), direct
``self._version += 1`` bumps, and ``self.<method>()`` calls.  It then flags:

* a public method (including dunders) from which a storage mutation is
  reachable through the self-call closure but **zero** bumps are;
* a method with two or more direct bumps;
* a bump — or a call to a bumping method — lexically inside a ``for`` /
  ``while`` loop (the per-triple-bump shape).

``flush()`` is exempt: run-merge maintenance rearranges the representation
without changing graph content, so it is version-neutral by design.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, Set

from ..callgraph import project_callgraph
from ..framework import Finding, Project, Rule, attribute_root, chain_attributes

__all__ = ["VersionBumpRule"]

#: Classes under contract, by name.
_GRAPH_CLASSES = {"RDFGraph", "ReferenceRDFGraph"}

#: Instance attributes that hold triple storage (columns / hash indexes).
_STORAGE_ATTRS = {
    "_spo",
    "_pos",
    "_osp",
    "_triples",
    "_by_s",
    "_by_p",
    "_by_o",
    "_by_sp",
    "_by_po",
    "_by_so",
}

#: Method names that mutate a container in place when called on storage.
_MUTATORS = {
    "add",
    "discard",
    "remove",
    "extend_sorted",
    "extend",
    "update",
    "clear",
    "pop",
    "insert",
    "append",
    "setdefault",
}

#: Version-neutral maintenance: merges insert buffers without changing
#: content, called from read paths and ``__reduce__``.
_EXEMPT_METHODS = {"flush"}


@dataclass
class _MethodFacts:
    mutates: bool = False
    mutation_line: int = 0
    bumps: int = 0
    bump_in_loop: bool = False
    bump_in_loop_line: int = 0
    self_calls: Set[str] = field(default_factory=set)
    #: self-method names called lexically inside a loop → call line.
    loop_calls: Dict[str, int] = field(default_factory=dict)


def _storage_aliases(func: ast.FunctionDef) -> Set[str]:
    """Local names bound to ``self.<storage_attr>`` (one level, whole body)."""
    aliases: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Attribute):
            value = node.value
            root = attribute_root(value)
            if (
                isinstance(root, ast.Name)
                and root.id == "self"
                and value.attr in _STORAGE_ATTRS
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
    return aliases


def _is_storage_mutation(call: ast.Call, aliases: Set[str]) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
        return False
    root = attribute_root(func.value)
    if isinstance(root, ast.Name) and root.id in aliases:
        return True
    if isinstance(root, ast.Name) and root.id == "self":
        # self._spo.add(...), self._by_s[x].add(...): some attribute on the
        # chain (there is at least one, func.value side) must be storage.
        return bool(set(chain_attributes(func.value)) & _STORAGE_ATTRS)
    return False


def _is_version_bump(node: ast.AST) -> bool:
    if not isinstance(node, ast.AugAssign):
        return False
    target = node.target
    return (
        isinstance(target, ast.Attribute)
        and target.attr == "_version"
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    )


def _collect(func: ast.FunctionDef) -> _MethodFacts:
    facts = _MethodFacts()
    aliases = _storage_aliases(func)

    def visit(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop or isinstance(child, (ast.For, ast.While))
            if _is_version_bump(child):
                facts.bumps += 1
                if in_loop and not facts.bump_in_loop:
                    facts.bump_in_loop = True
                    facts.bump_in_loop_line = child.lineno
            if isinstance(child, ast.Call):
                if _is_storage_mutation(child, aliases):
                    if not facts.mutates:
                        facts.mutates = True
                        facts.mutation_line = child.lineno
                func_expr = child.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id == "self"
                ):
                    facts.self_calls.add(func_expr.attr)
                    if in_loop:
                        facts.loop_calls.setdefault(func_expr.attr, child.lineno)
            visit(child, child_in_loop)

    visit(func, False)
    return facts


class VersionBumpRule(Rule):
    id = "RP-VERSION"
    title = "graph mutations bump _version exactly once per public entry point"

    def run(self, project: Project) -> Iterator[Finding]:
        for file in project.parsed():
            for node in ast.walk(file.tree):
                if isinstance(node, ast.ClassDef) and node.name in _GRAPH_CLASSES:
                    yield from self._check_class(project, file, node)

    def _check_class(
        self, project: Project, file, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods: Dict[str, ast.FunctionDef] = {
            item.name: item
            for item in cls.body
            if isinstance(item, ast.FunctionDef) and item.name not in _EXEMPT_METHODS
        }
        facts = {name: _collect(func) for name, func in methods.items()}

        # The reachability engine is the shared project call graph; the old
        # hand-rolled self-call walk survives as an edge filter: follow only
        # ``self.<m>()`` edges into this class's own (non-exempt) methods.
        graph = project_callgraph(project)
        ref_by_node = {
            id(info.node): ref
            for ref, info in graph.functions.items()
            if ref.path == file.relpath
        }
        method_refs = {
            name: ref_by_node[id(func)]
            for name, func in methods.items()
            if id(func) in ref_by_node
        }
        allowed = set(method_refs.values())
        name_by_ref = {ref: name for name, ref in method_refs.items()}

        def closure(name: str, seen: Set[str]) -> _MethodFacts:
            """Reachable mutation/bump facts through the self-call closure."""
            combined = _MethodFacts()
            start = method_refs.get(name)
            if start is None:
                return combined
            reach = graph.reachable(
                start,
                edge_filter=lambda edge: edge.via_self and edge.callee in allowed,
            )
            for ref in reach:
                reached_name = name_by_ref.get(ref)
                if reached_name is None or reached_name in seen:
                    continue
                seen.add(reached_name)
                current_facts = facts[reached_name]
                combined.mutates = combined.mutates or current_facts.mutates
                combined.bumps += current_facts.bumps
            return combined

        for name, func in methods.items():
            direct = facts[name]
            if direct.bumps >= 2:
                yield self.finding(
                    file,
                    func,
                    f"{cls.name}.{name} bumps _version {direct.bumps} times; "
                    "a public batch entry point must bump exactly once",
                )
            if direct.bump_in_loop:
                yield Finding(
                    path=file.relpath,
                    line=direct.bump_in_loop_line,
                    rule=self.id,
                    message=f"{cls.name}.{name} bumps _version inside a loop "
                    "(per-item invalidation; bump once after the batch)",
                )
            for callee, line in direct.loop_calls.items():
                callee_facts = facts.get(callee)
                if callee_facts is not None and callee_facts.bumps:
                    yield Finding(
                        path=file.relpath,
                        line=line,
                        rule=self.id,
                        message=f"{cls.name}.{name} calls bumping method "
                        f"{callee}() inside a loop (per-item invalidation; "
                        "use the bulk entry point)",
                    )
            public = not name.startswith("_") or (
                name.startswith("__") and name.endswith("__")
            )
            if public:
                reach = closure(name, set())
                if reach.mutates and reach.bumps == 0:
                    yield self.finding(
                        file,
                        func,
                        f"{cls.name}.{name} writes triple storage but no "
                        "_version bump is reachable; warm caches would go stale",
                    )
