"""RP-YIELD: no ``yield`` lexically inside a ``with <lock>`` block (PR 10).

A generator that yields while holding a lock suspends with the lock still
held; it is released only when the *consumer* chooses to resume or close
the generator — an unbounded time controlled by code that does not know it
is inside a critical section.  The streaming evaluators
(``solutions_iter``, ``tree_solutions_stream``) make this an easy trap:
snapshot under the lock, release, then yield from the snapshot.

The rule is purely lexical over the shared lock model: any ``yield`` /
``yield from`` whose enclosing statements include ``with self.<lock>:``
(locks discovered per :mod:`repro.analysis.locks`) is a finding.  Nested
``def`` bodies are separate units, so a generator *defined* inside a locked
region — but iterated later, outside it — is correctly not flagged; if it
yields inside its own ``with self.<lock>:`` it is flagged on its own.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..callgraph import project_callgraph
from ..framework import Finding, Project, Rule
from ..locks import discover_locks, iter_with_held, locks_by_class

__all__ = ["YieldUnderLockRule"]


class YieldUnderLockRule(Rule):
    id = "RP-YIELD"
    title = "no yield inside a with-lock block"

    def run(self, project: Project) -> Iterator[Finding]:
        graph = project_callgraph(project)
        locks = discover_locks(graph)
        if not locks:
            return
        per_class = locks_by_class(locks)
        for ref in sorted(graph.functions):
            info = graph.functions[ref]
            attrs = per_class.get(info.class_name or "", {})
            if not attrs:
                continue
            for node, held in iter_with_held(info.node, set(attrs)):
                if held and isinstance(node, (ast.Yield, ast.YieldFrom)):
                    held_names = ", ".join(sorted(attrs[attr].name for attr in held))
                    yield Finding(
                        path=ref.path,
                        line=node.lineno,
                        rule=self.id,
                        message=f"yield while holding {held_names}: a suspended "
                        "generator keeps the lock for an unbounded time; "
                        "snapshot under the lock and yield outside it",
                    )
