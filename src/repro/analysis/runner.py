"""CLI driver: scan a tree, apply the baseline, report, set the exit code.

Exit codes: 0 — clean (suppressed/baselined findings allowed); 1 — new
findings, stale baseline entries, or baseline entries without a rationale;
2 — usage errors (bad baseline JSON, missing scan directory).

The baseline file (default ``analysis-baseline.json`` at the repo root) is
the grandfathering mechanism: entries match findings on (rule, path,
message) — line numbers deliberately excluded so unrelated edits do not
churn the file — and every entry must carry a ``rationale``.  An entry
whose finding no longer fires is reported as *stale* and fails the run, so
the baseline can only shrink.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .framework import (
    PARSE_RULE_ID,
    SUPPRESS_RULE_ID,
    Finding,
    Project,
    run_rules,
)
from .rules import default_rules

__all__ = ["main", "build_parser", "rule_registry", "load_baseline", "DEFAULT_BASELINE"]

DEFAULT_BASELINE = "analysis-baseline.json"

#: Rule ids owned by the framework itself (no Rule instance behind them).
FRAMEWORK_RULE_IDS: Dict[str, str] = {
    PARSE_RULE_ID: "every scanned file parses",
    SUPPRESS_RULE_ID: "suppression comments name known rule ids",
}


def rule_registry() -> Dict[str, str]:
    """Every rule id the linter can emit → its one-line invariant."""
    registry = {rule.id: rule.title for rule in default_rules()}
    registry.update(FRAMEWORK_RULE_IDS)
    return registry


def find_repo_root(start: Path) -> Optional[Path]:
    """The nearest ancestor (including *start*) containing ``src/repro``."""
    for candidate in [start, *start.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return None


def load_baseline(path: Path) -> Tuple[List[Dict[str, str]], List[str]]:
    """Parse the baseline file → (entries, structural errors)."""
    errors: List[str] = []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [], [f"{path}: invalid JSON: {error}"]
    entries = data.get("entries") if isinstance(data, dict) else None
    if not isinstance(entries, list):
        return [], [f"{path}: expected an object with an 'entries' list"]
    valid: List[Dict[str, str]] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or not {"rule", "path", "message"} <= set(entry):
            errors.append(f"{path}: entry {index} needs rule/path/message keys")
            continue
        if not str(entry.get("rationale", "")).strip():
            errors.append(
                f"{path}: entry {index} ({entry['rule']} at {entry['path']}) "
                "has no rationale; every grandfathered finding must explain itself"
            )
            continue
        valid.append(entry)
    return valid, errors


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant linter for the repro codebase "
        "(concurrency, caching, and versioning contracts).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="directories to scan (default: the repo's src/repro)",
    )
    parser.add_argument(
        "--root",
        help="repo root for relative paths and the default baseline "
        "(default: auto-detected from the working directory)",
    )
    parser.add_argument(
        "--baseline",
        help=f"baseline JSON file (default: <root>/{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output format (github = workflow-command annotations)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and its invariant, then exit",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (e.g. RP-GUARD,RP-HOLD); "
        "RP-PARSE/RP-SUPPRESS always apply.  Partial runs skip the "
        "stale-baseline check — CI's full run still enforces it",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report findings only for files changed per `git diff "
        "--name-only HEAD` (plus untracked files).  Rules still scan the "
        "whole project — the interprocedural rules need full context — "
        "but the output and exit code consider changed files only; the "
        "stale-baseline check is skipped (see --rules)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print per-rule wall time to stderr (the CI lint job sets "
        "this so a pathologically slow rule is visible in the logs)",
    )
    return parser


def _changed_files(root: Path) -> Optional[List[str]]:
    """Repo-relative paths touched per git (tracked diffs + untracked), or
    ``None`` when git is unavailable / not a work tree."""
    changed: List[str] = []
    for command in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            completed = subprocess.run(
                command,
                cwd=root,
                capture_output=True,
                text=True,
                check=True,
                timeout=30,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        changed.extend(
            line.strip() for line in completed.stdout.splitlines() if line.strip()
        )
    return changed


def _emit(findings: List[Finding], fmt: str, stream) -> None:
    for finding in findings:
        line = finding.format_github() if fmt == "github" else finding.format_text()
        print(line, file=stream)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, title in sorted(rule_registry().items()):
            print(f"{rule_id}: {title}")
        return 0

    root = Path(args.root).resolve() if args.root else find_repo_root(Path.cwd())
    if root is None:
        print("error: could not locate a repo root (no src/repro found); "
              "pass --root", file=sys.stderr)
        return 2

    targets = [Path(p) for p in args.paths] if args.paths else [root / "src" / "repro"]
    files = []
    for target in targets:
        directory = target if target.is_absolute() else root / target
        if not directory.is_dir():
            print(f"error: not a directory: {directory}", file=sys.stderr)
            return 2
        files.extend(Project.from_directory(directory, root=root).files)
    project = Project(files)

    rules = default_rules()
    if args.rules:
        wanted = {part.strip() for part in args.rules.split(",") if part.strip()}
        known = {rule.id for rule in rules} | set(FRAMEWORK_RULE_IDS)
        unknown = sorted(wanted - known)
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.id in wanted]

    timings: Optional[Dict[str, float]] = {} if args.timings else None
    result = run_rules(project, rules, timings=timings)

    changed: Optional[List[str]] = None
    if args.changed:
        changed = _changed_files(root)
        if changed is None:
            print(
                "error: --changed needs git and a work tree (git diff failed)",
                file=sys.stderr,
            )
            return 2

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    entries: List[Dict[str, str]] = []
    baseline_errors: List[str] = []
    if args.baseline or baseline_path.exists():
        if not baseline_path.exists():
            print(f"error: baseline file not found: {baseline_path}", file=sys.stderr)
            return 2
        entries, baseline_errors = load_baseline(baseline_path)

    baseline_keys = {(e["rule"], e["path"], e["message"]) for e in entries}
    new_findings = [f for f in result.findings if f.key() not in baseline_keys]
    matched_keys = {f.key() for f in result.findings if f.key() in baseline_keys}
    # A partial run (rule subset / changed-files filter) cannot tell a stale
    # entry from one its filters excluded; only full runs enforce shrinkage.
    partial = bool(args.rules or args.changed)
    stale = [] if partial else sorted(baseline_keys - matched_keys)
    if changed is not None:
        changed_set = set(changed)
        new_findings = [f for f in new_findings if f.path in changed_set]

    _emit(new_findings, args.format, sys.stdout)
    for error in baseline_errors:
        print(f"baseline error: {error}", file=sys.stderr)
    for rule_id, path, message in stale:
        print(
            f"stale baseline entry: {rule_id} at {path} no longer fires; "
            f"remove it from {baseline_path.name} ({message})",
            file=sys.stderr,
        )

    if timings is not None:
        for rule_id, seconds in sorted(
            timings.items(), key=lambda item: item[1], reverse=True
        ):
            print(f"timing: {rule_id}: {seconds * 1000.0:.1f} ms", file=sys.stderr)

    scanned = len(project.files)
    summary = (
        f"{scanned} files scanned: {len(new_findings)} finding(s), "
        f"{len(matched_keys)} baselined, {len(result.suppressed)} suppressed, "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
    )
    if changed is not None:
        summary += f" (changed-files filter: {len(set(changed))} path(s))"
    print(summary, file=sys.stderr)

    if new_findings or stale or baseline_errors:
        return 1
    return 0
