"""Command line interface.

A small CLI so that the library can be used without writing Python::

    python -m repro evaluate --graph data.nt --query "((?x knows ?y) OPT (?y email ?e))"
    python -m repro check    --graph data.nt --query QUERY --binding x=alice --binding y=bob
    python -m repro batch    --graph data.nt --query QUERY --bindings-file mappings.txt
    python -m repro batch    --graph data.nt --query QUERY --bindings-file mappings.txt --timeout 5
    python -m repro explain  --query QUERY --width-bound 1
    python -m repro explain  --query QUERY --graph data.nt --cost
    python -m repro classify --query QUERY
    python -m repro validate --query QUERY

Sub-commands
------------
``evaluate``
    Print every solution mapping of the query over the graph (through a
    :class:`~repro.evaluation.session.Session`).
``check``
    Decide ``µ ∈ ⟦P⟧G`` for the mapping given by ``--binding var=iri`` pairs
    (the paper's wdEVAL problem), using the requested engine.
``batch``
    Decide many wdEVAL instances at once through a cached
    :class:`~repro.evaluation.session.Session`.  The bindings file holds
    one candidate mapping per line as whitespace-separated ``var=iri``
    pairs (the empty mapping is written as ``-``; a line starting with
    ``#`` is a comment).
``explain``
    Print the evaluation :class:`~repro.evaluation.plan.Plan` the planner
    resolves for the query — chosen strategy, width bound, certification
    status and rationale — without evaluating anything.  With ``--cost``
    (and ``--graph``), the plan is resolved **per cell** through the cost
    model and the per-strategy estimates are printed.
``classify``
    Print the width profile (domination width, branch treewidth, local width)
    and the Theorem 3 verdict.
``validate``
    Check well-designedness and report the violation if any.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .evaluation import Engine, Session, method_names
from .rdf.graph import RDFGraph
from .rdf.io import load_graph
from .rdf.terms import IRI, Variable
from .sparql.mappings import Mapping
from .sparql.parser import parse_pattern, to_text
from .sparql.well_designed import find_violation
from .width.classify import classify_pattern
from .exceptions import DeadlineExceeded, ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command line parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Well-designed SPARQL evaluation and tractability analysis "
        "(reproduction of Romero, PODS 2018).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_query_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--query", required=True, help="pattern in the textual syntax")

    evaluate = subparsers.add_parser("evaluate", help="enumerate all solutions")
    evaluate.add_argument("--graph", required=True, help="N-Triples style data file")
    add_query_argument(evaluate)
    evaluate.add_argument(
        "--method",
        choices=["auto", "naive", "natural"],
        default="natural",
        help="enumeration engine ('auto' resolves to natural)",
    )
    evaluate.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; on expiry the solutions found so far are "
        "printed and the exit code is 3",
    )

    check = subparsers.add_parser("check", help="decide membership of a mapping (wdEVAL)")
    check.add_argument("--graph", required=True, help="N-Triples style data file")
    add_query_argument(check)
    check.add_argument(
        "--binding",
        action="append",
        default=[],
        metavar="VAR=IRI",
        help="one binding of the candidate mapping (repeatable)",
    )
    check.add_argument("--method", choices=list(method_names()), default="auto")
    check.add_argument("--width", type=int, default=None, help="width bound for the pebble engine")

    batch = subparsers.add_parser(
        "batch", help="decide many wdEVAL instances at once (cached batch engine)"
    )
    batch.add_argument("--graph", required=True, help="N-Triples style data file")
    add_query_argument(batch)
    batch.add_argument(
        "--bindings-file",
        required=True,
        help=(
            "file with one mapping per line as VAR=IRI pairs "
            "('-' = empty mapping, lines starting with '#' are comments)"
        ),
    )
    batch.add_argument("--method", choices=list(method_names()), default="auto")
    batch.add_argument("--width", type=int, default=None, help="width bound for the pebble engine")
    batch.add_argument(
        "--processes",
        type=int,
        default=None,
        help="evaluate in parallel with this many worker processes",
    )
    batch.add_argument(
        "--stats", action="store_true", help="print the plan and cache statistics after the run"
    )
    batch.add_argument(
        "--stream",
        action="store_true",
        help="print each verdict as soon as it is computed (combines with "
        "--processes: verdicts stream back from the worker pool in input "
        "order)",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the whole batch (parent and workers); "
        "on expiry the verdicts decided so far are printed and the exit "
        "code is 3",
    )

    explain = subparsers.add_parser(
        "explain", help="show the evaluation plan the planner resolves for a query"
    )
    add_query_argument(explain)
    explain.add_argument(
        "--method",
        choices=list(method_names()),
        default="auto",
        help="requested method to resolve (default: auto)",
    )
    explain.add_argument(
        "--width-bound",
        type=int,
        default=None,
        help="declared upper bound on the pattern's domination width",
    )
    explain.add_argument(
        "--compute-width",
        action="store_true",
        help="compute the true domination width first (certifies the bound "
        "and lets 'auto' choose the pebble strategy)",
    )
    explain.add_argument(
        "--graph",
        default=None,
        help="N-Triples style data file the cost model estimates against "
        "(only used together with --cost)",
    )
    explain.add_argument(
        "--cost",
        action="store_true",
        help="print the cost model's per-strategy estimates for the graph "
        "(requires --graph) and let 'auto' pick per cell",
    )

    classify = subparsers.add_parser("classify", help="width profile and tractability verdict")
    add_query_argument(classify)

    validate = subparsers.add_parser("validate", help="check well-designedness")
    add_query_argument(validate)

    lint = subparsers.add_parser(
        "lint",
        help="run the AST invariant linter (same as `python -m repro.analysis`)",
    )
    lint.add_argument("paths", nargs="*", help="directories to scan")
    lint.add_argument("--root", help="repo root (default: auto-detected)")
    lint.add_argument("--baseline", help="baseline JSON file")
    lint.add_argument("--format", choices=("text", "github"), default="text")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument("--rules", help="comma-separated rule ids to run")
    lint.add_argument(
        "--changed",
        action="store_true",
        help="report findings only for files in `git diff --name-only`",
    )
    lint.add_argument(
        "--timings", action="store_true", help="print per-rule wall time"
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived query service over a line-delimited JSON socket",
    )
    serve.add_argument("graph", help="N-Triples style data file to serve")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 = pick a free port)"
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="worker threads evaluating requests concurrently (default: 4)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="request backlog bound; beyond it requests are rejected with a "
        "typed overload error (default: 64)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-request deadline in seconds (requests may override)",
    )
    serve.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker processes of the shared session's pool (default: serial)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="exit after answering this many requests (smoke tests)",
    )

    return parser


def _parse_bindings(raw_bindings: List[str]) -> Mapping:
    bindings: Dict[Variable, IRI] = {}
    for raw in raw_bindings:
        if "=" not in raw:
            raise ReproError(f"invalid --binding {raw!r}: expected VAR=IRI")
        name, value = raw.split("=", 1)
        bindings[Variable(name)] = IRI(value)
    return Mapping(bindings)


def _command_evaluate(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    session = Session()
    timed_out = False
    try:
        answers = session.solutions(
            parse_pattern(args.query), graph, method=args.method, deadline=args.timeout
        )
    except DeadlineExceeded as error:
        answers = set(error.partial)
        timed_out = True
        elapsed = f" after {error.elapsed:.2f}s" if error.elapsed is not None else ""
        print(f"# deadline exceeded{elapsed}; partial results follow", file=sys.stderr)
    solutions = sorted(answers, key=repr)
    print(f"# {len(solutions)} solution(s)" + (" (partial: timed out)" if timed_out else ""))
    for mapping in solutions:
        rendered = ", ".join(
            f"{var}={value}" for var, value in sorted(mapping.items(), key=lambda kv: kv[0].name)
        )
        print(rendered if rendered else "<empty mapping>")
    return 3 if timed_out else 0


def _command_check(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    engine = Engine(parse_pattern(args.query), width_bound=args.width)
    mu = _parse_bindings(args.binding)
    answer = engine.contains(graph, mu, method=args.method, width=args.width)
    print("IN" if answer else "NOT-IN")
    return 0 if answer else 1


def _load_bindings_file(path: str) -> List[Mapping]:
    """Parse a bindings file: one mapping per line of ``VAR=IRI`` pairs.

    Only whole lines starting with ``#`` are comments (like the graph
    loader); IRIs routinely contain ``#`` fragments, so the character is not
    special elsewhere on a line.
    """
    mappings: List[Mapping] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line == "-":
                mappings.append(Mapping.EMPTY)
                continue
            try:
                mappings.append(_parse_bindings(line.split()))
            except ReproError as error:
                raise ReproError(f"{path}:{line_number}: {error}") from error
    return mappings


def _render_mapping(mu: Mapping) -> str:
    rendered = " ".join(
        f"{var.name}={value.value if hasattr(value, 'value') else value}"
        for var, value in sorted(mu.items(), key=lambda kv: kv[0].name)
    )
    return rendered if rendered else "-"


def _command_batch(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    mappings = _load_bindings_file(args.bindings_file)
    session = Session(processes=args.processes)
    pattern = session.engine(parse_pattern(args.query), width_bound=args.width)
    timed_out = False
    answers = []
    try:
        if args.stream:
            # Stream each verdict as soon as it is decided — serially
            # through the shared session cache, or (with --processes) from
            # the worker pool in input order.  Verdicts are identical to
            # the batched path.
            for mu, answer in zip(
                mappings,
                session.check_iter(
                    pattern,
                    graph,
                    mappings,
                    method=args.method,
                    width=args.width,
                    deadline=args.timeout,
                ),
            ):
                answers.append(answer)
                print(f"{'IN    ' if answer else 'NOT-IN'} {_render_mapping(mu)}", flush=True)
        else:
            answers = session.check_many(
                pattern,
                graph,
                mappings,
                method=args.method,
                width=args.width,
                deadline=args.timeout,
            )
            for mu, answer in zip(mappings, answers):
                print(f"{'IN    ' if answer else 'NOT-IN'} {_render_mapping(mu)}")
    except DeadlineExceeded as error:
        timed_out = True
        elapsed = f" after {error.elapsed:.2f}s" if error.elapsed is not None else ""
        print(
            f"# deadline exceeded{elapsed}: "
            f"{len(answers)} of {len(mappings)} verdict(s) decided",
            file=sys.stderr,
        )
    positive = sum(answers)
    print(
        f"# {positive} of {len(answers)} mapping(s) are solutions"
        + (" (partial: timed out)" if timed_out else "")
    )
    if args.stats:
        plan = session.plan(pattern, method=args.method, width=args.width, graph=graph)
        print(f"# plan: {plan.summary()}")
        print(f"# workers: {session.worker_mode()}")
        print(f"# resilience: {session.statistics.resilience_summary()}")
        stats = session.cache.statistics
        print(f"# cache: {stats.hits} hits, {stats.misses} misses ({stats.hit_rate():.0%} hit rate)")
    return 3 if timed_out else 0


def _command_explain(args: argparse.Namespace) -> int:
    if args.cost and args.graph is None:
        raise ReproError("--cost estimates strategy costs for a concrete graph; "
                         "supply the data file with --graph")
    if args.graph is not None and not args.cost:
        raise ReproError("--graph only affects explain together with --cost "
                         "(the graph-free plan ignores it)")
    pattern = parse_pattern(args.query)
    engine = Engine(pattern, width_bound=args.width_bound)
    if args.compute_width:
        engine.domination_width()
    graph = load_graph(args.graph) if args.cost else None
    plan = engine.plan(method=args.method, graph=graph)
    print(f"query            : {to_text(pattern)}")
    print(plan.explain())
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    pattern = parse_pattern(args.query)
    report = classify_pattern(pattern)
    print(f"query: {to_text(pattern)}")
    print(f"domination width : {report.domination_width}")
    bw = report.branch_treewidth if report.branch_treewidth is not None else "n/a (UNION pattern)"
    print(f"branch treewidth : {bw}")
    print(f"local width      : {report.local_width}")
    print(
        "verdict          : evaluable in PTIME with the existential "
        f"{report.recommended_pebble_width + 1}-pebble algorithm (Theorem 1)"
    )
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    pattern = parse_pattern(args.query)
    violation = find_violation(pattern)
    if violation is None:
        print("well-designed")
        return 0
    print(f"NOT well-designed: {violation.describe()}")
    return 1


def _command_lint(args: argparse.Namespace) -> int:
    # Lazy import: the linter is tooling, not query-path code.
    from .analysis import runner

    argv: List[str] = list(args.paths)
    if args.root:
        argv += ["--root", args.root]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    argv += ["--format", args.format]
    if args.list_rules:
        argv.append("--list-rules")
    if args.rules:
        argv += ["--rules", args.rules]
    if args.changed:
        argv.append("--changed")
    if args.timings:
        argv.append("--timings")
    return runner.main(argv)


def _command_serve(args: argparse.Namespace) -> int:
    # Lazy import: the service layer is server tooling, not query-path code.
    from .service import QueryService, ServiceServer

    graph = load_graph(args.graph)
    session = Session(processes=args.processes)
    service = QueryService(
        graph,
        session=session,
        max_inflight=args.max_inflight,
        max_pending=args.max_pending,
        default_deadline=args.timeout,
    )
    server = ServiceServer(
        service, host=args.host, port=args.port, max_requests=args.max_requests
    )
    host, port = server.address
    print(
        f"# serving {len(graph)} triple(s) on {host}:{port} "
        f"(workers={args.max_inflight}, max_pending={args.max_pending})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.shutdown()
        service.close()
        stats = service.stats()
        print(
            f"# served {stats['completed']} request(s): {stats['ok']} ok, "
            f"{stats['errors']} error(s), {stats['rejected_overload']} rejected, "
            f"{stats['deadline_trips']} deadline trip(s)",
            file=sys.stderr,
        )
    return 0


_COMMANDS = {
    "evaluate": _command_evaluate,
    "check": _command_check,
    "batch": _command_batch,
    "explain": _command_explain,
    "classify": _command_classify,
    "validate": _command_validate,
    "lint": _command_lint,
    "serve": _command_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
