"""Evaluation engines: naive semantics, the natural wdPF algorithm, the
Theorem 1 pebble-relaxation algorithm, and the cached batch service layer."""

from .naive import evaluate_pattern, pattern_contains
from .wdeval import (
    find_mu_subtree,
    tree_contains,
    forest_contains,
    tree_solutions,
    forest_solutions,
    EvaluationStatistics,
)
from .pebble_eval import tree_contains_pebble, forest_contains_pebble
from .extended import evaluate_extended, extended_pattern_contains
from .cache import CacheStatistics, EvaluationCache
from .engine import Engine
from .batch import BatchEngine, contains_many_patterns, contains_matrix

__all__ = [
    "evaluate_pattern",
    "pattern_contains",
    "find_mu_subtree",
    "tree_contains",
    "forest_contains",
    "tree_solutions",
    "forest_solutions",
    "EvaluationStatistics",
    "tree_contains_pebble",
    "forest_contains_pebble",
    "evaluate_extended",
    "extended_pattern_contains",
    "CacheStatistics",
    "EvaluationCache",
    "Engine",
    "BatchEngine",
    "contains_many_patterns",
    "contains_matrix",
]
