"""Evaluation engines: naive semantics, the natural wdPF algorithm, the
Theorem 1 pebble-relaxation algorithm, and the planned/cached service layer
(plans, contexts, sessions, batching)."""

from .naive import evaluate_pattern, pattern_contains
from .budget import Budget, TimeoutReport
from .context import EvalContext
from .faults import FaultInjected, FaultPlan
from ..exceptions import DeadlineExceeded, WorkerCrashError
from .wdeval import (
    find_mu_subtree,
    tree_contains,
    tree_contains_ctx,
    forest_contains,
    forest_contains_ctx,
    tree_solutions,
    tree_solutions_stream,
    forest_solutions,
    forest_solutions_stream,
    EvaluationStatistics,
)
from .pebble_eval import (
    tree_contains_pebble,
    tree_contains_pebble_ctx,
    forest_contains_pebble,
    forest_contains_pebble_ctx,
)
from .extended import evaluate_extended, extended_pattern_contains
from .cache import CacheDelta, CacheStatistics, EvaluationCache
from .plan import (
    CostEstimate,
    CostModel,
    PatternStats,
    Plan,
    Planner,
    Strategy,
    method_names,
    register_strategy,
    strategy_for,
)
from .engine import Engine
from .session import Session
from .batch import BatchEngine, contains_many_patterns, contains_matrix

__all__ = [
    "evaluate_pattern",
    "pattern_contains",
    "Budget",
    "TimeoutReport",
    "DeadlineExceeded",
    "WorkerCrashError",
    "FaultInjected",
    "FaultPlan",
    "EvalContext",
    "find_mu_subtree",
    "tree_contains",
    "tree_contains_ctx",
    "forest_contains",
    "forest_contains_ctx",
    "tree_solutions",
    "tree_solutions_stream",
    "forest_solutions",
    "forest_solutions_stream",
    "EvaluationStatistics",
    "tree_contains_pebble",
    "tree_contains_pebble_ctx",
    "forest_contains_pebble",
    "forest_contains_pebble_ctx",
    "evaluate_extended",
    "extended_pattern_contains",
    "CacheDelta",
    "CacheStatistics",
    "EvaluationCache",
    "CostEstimate",
    "CostModel",
    "PatternStats",
    "Plan",
    "Planner",
    "Strategy",
    "method_names",
    "register_strategy",
    "strategy_for",
    "Engine",
    "Session",
    "BatchEngine",
    "contains_many_patterns",
    "contains_matrix",
]
