"""Batch evaluation of many wdEVAL instances (single-pattern adapter).

The paper's wdEVAL problem is a single membership test ``µ ∈ ⟦P⟧G``; serving
realistic workloads means answering *sets* of such instances.  The general
workspace for that is :class:`~repro.evaluation.session.Session` (many
patterns, many graphs, streaming enumeration); :class:`BatchEngine` is the
historical single-pattern entry point, kept as a thin adapter over a
session:

* every instance set shares the session's
  :class:`~repro.evaluation.cache.EvaluationCache`;
* duplicate mappings in the input are answered once and fanned back out;
* the ``method=`` argument is resolved once per batch by the engine's
  cost-based :class:`~repro.evaluation.plan.Planner` (the *only* place
  ``"auto"`` is resolved — per ``(pattern, graph)`` cell, with the
  estimate available via :meth:`Engine.plan
  <repro.evaluation.engine.Engine.plan>`);
* batched ``"naive"`` evaluation materialises ``⟦P⟧G`` a single time;
* an opt-in :mod:`multiprocessing` pool (``processes=``) splits
  embarrassingly parallel instance sets across workers.

Answers are guaranteed identical (same booleans, same order) to the
single-shot engine; the cache and the pool are pure performance features.

The module-level helpers :func:`contains_many_patterns` and
:func:`contains_matrix` cover the many-patterns-one-graph direction through
a shared session.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set

from .budget import Budget
from .cache import EvaluationCache
from .engine import Engine
from .session import PatternLike, Session
from .wdeval import EvaluationStatistics
from ..patterns.forest import WDPatternForest
from ..rdf.graph import RDFGraph
from ..sparql.algebra import GraphPattern
from ..sparql.mappings import Mapping

__all__ = ["BatchEngine", "contains_many_patterns", "contains_matrix"]


class BatchEngine:
    """Answer many wdEVAL instances for one pattern through a shared cache.

    Parameters mirror :class:`Engine`; a fresh
    :class:`~repro.evaluation.cache.EvaluationCache` is created when none is
    supplied, so batching is cached by construction.  Internally this is an
    adapter over a single-pattern :class:`~repro.evaluation.session.Session`.

    >>> from repro.sparql import parse_pattern
    >>> from repro.rdf import RDFGraph, Triple
    >>> batch = BatchEngine(parse_pattern("((?x knows ?y) OPT (?y email ?e))"))
    >>> g = RDFGraph([Triple.of("a", "knows", "b")])
    >>> batch.contains_many(g, [Mapping.of(x="a", y="b")])
    [True]
    """

    def __init__(
        self,
        pattern: Optional[GraphPattern] = None,
        forest: Optional[WDPatternForest] = None,
        width_bound: Optional[int] = None,
        cache: Optional[EvaluationCache] = None,
        processes: Optional[int] = None,
    ) -> None:
        self._session = Session(cache=cache, processes=processes)
        self._engine = self._session.engine(
            Engine(pattern, forest, width_bound, cache=self._session.cache)
        )

    @classmethod
    def from_engine(cls, engine: Engine, processes: Optional[int] = None) -> "BatchEngine":
        """Wrap an existing engine (reusing its cache when it has one)."""
        return cls(
            engine.pattern,
            engine.forest,
            engine.width_bound,
            cache=engine.cache,
            processes=processes,
        )

    @classmethod
    def from_session(
        cls, session: Session, pattern: PatternLike, width_bound: Optional[int] = None
    ) -> "BatchEngine":
        """Adapt one pattern of an existing session (sharing its cache)."""
        batch = cls.__new__(cls)
        batch._session = session
        batch._engine = session.engine(pattern, width_bound=width_bound)
        return batch

    # --- introspection -----------------------------------------------------
    @property
    def session(self) -> Session:
        """The underlying session (shared cache, pool settings)."""
        return self._session

    @property
    def engine(self) -> Engine:
        """The underlying single-instance engine (shares this batch's cache)."""
        return self._engine

    @property
    def cache(self) -> EvaluationCache:
        """The evaluation cache shared by every instance of this batch."""
        return self._session.cache

    @property
    def forest(self) -> WDPatternForest:
        """The wdPF being evaluated."""
        return self._engine.forest

    @property
    def pattern(self) -> GraphPattern:
        """The graph pattern being evaluated."""
        return self._engine.pattern

    def __repr__(self) -> str:
        return (
            f"BatchEngine({self._engine.forest!r}, "
            f"processes={self._session.context.processes})"
        )

    # --- batched membership ------------------------------------------------
    def contains_many(
        self,
        graph: RDFGraph,
        mappings: Iterable[Mapping],
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
        processes: Optional[int] = None,
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> List[bool]:
        """Decide ``µ ∈ ⟦P⟧G`` for every mapping, in input order.

        See :meth:`Session.check_many
        <repro.evaluation.session.Session.check_many>` — this is that entry
        point pinned to the adapter's single pattern; ``deadline`` (seconds)
        or ``budget`` bounds the batch and raises
        :class:`~repro.exceptions.DeadlineExceeded` on violation.
        """
        return self._session.check_many(
            self._engine,
            graph,
            mappings,
            method=method,
            width=width,
            statistics=statistics,
            processes=processes,
            deadline=deadline,
            budget=budget,
        )

    def contains_iter(
        self,
        graph: RDFGraph,
        mappings: Iterable[Mapping],
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
        processes: Optional[int] = None,
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> Iterator[bool]:
        """Stream the verdicts of :meth:`contains_many` in input order.

        See :meth:`Session.check_iter
        <repro.evaluation.session.Session.check_iter>` — verdicts surface
        as they are decided (optionally from a worker pool whose learned
        state flows back into the shared cache), instead of blocking until
        the whole batch is done.  ``deadline``/``budget`` bound the stream
        and raise :class:`~repro.exceptions.DeadlineExceeded`
        mid-iteration.
        """
        return self._session.check_iter(
            self._engine,
            graph,
            mappings,
            method=method,
            width=width,
            statistics=statistics,
            processes=processes,
            deadline=deadline,
            budget=budget,
        )

    def warm(
        self,
        graph: RDFGraph,
        mappings: Optional[Iterable[Mapping]] = None,
        method: str = "auto",
        width: Optional[int] = None,
    ) -> int:
        """Precompute the µ-independent evaluation state for *graph* (see
        :meth:`Session.warm <repro.evaluation.session.Session.warm>`)."""
        return self._session.warm(self._engine, graph, mappings, method=method, width=width)

    # --- passthroughs ------------------------------------------------------
    def contains(
        self,
        graph: RDFGraph,
        mu: Mapping,
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> bool:
        """Single membership check through the shared cache."""
        return self._engine.contains(
            graph,
            mu,
            method=method,
            width=width,
            statistics=statistics,
            deadline=deadline,
            budget=budget,
        )

    def solutions(
        self,
        graph: RDFGraph,
        method: str = "natural",
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> Set[Mapping]:
        """Enumerate the full answer set ``⟦P⟧G`` (see :meth:`Engine.solutions`);
        accepts ``method="auto"`` like the engine does."""
        return self._engine.solutions(graph, method=method, deadline=deadline, budget=budget)


def contains_many_patterns(
    patterns: Iterable[PatternLike],
    graph: RDFGraph,
    mu: Mapping,
    method: str = "auto",
    width: Optional[int] = None,
    cache: Optional[EvaluationCache] = None,
) -> List[bool]:
    """Decide ``µ ∈ ⟦P_i⟧G`` for many patterns over one graph.

    All patterns share one session cache, so the graph index is built once
    and homomorphism sub-instances common to several patterns are solved
    once.
    """
    session = Session(cache=cache)
    return [
        session.check(pattern, graph, mu, method=method, width=width) for pattern in patterns
    ]


def contains_matrix(
    patterns: Iterable[PatternLike],
    graph: RDFGraph,
    mappings: Iterable[Mapping],
    method: str = "auto",
    width: Optional[int] = None,
    cache: Optional[EvaluationCache] = None,
) -> List[List[bool]]:
    """The full answer matrix: one row per pattern, one column per mapping.

    Covers the "many patterns × many mappings over one graph" workload with
    a single shared session cache.
    """
    session = Session(cache=cache)
    mappings = list(mappings)
    return [
        session.check_many(pattern, graph, mappings, method=method, width=width)
        for pattern in patterns
    ]
