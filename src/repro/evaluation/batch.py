"""Batch evaluation of many wdEVAL instances.

The paper's wdEVAL problem is a single membership test ``µ ∈ ⟦P⟧G``; serving
realistic workloads means answering *sets* of such instances — many candidate
mappings against one pattern, or many patterns against one graph — and doing
so much faster than a loop of independent :meth:`Engine.contains` calls.
:class:`BatchEngine` provides that service layer:

* every instance set shares one
  :class:`~repro.evaluation.cache.EvaluationCache`, so the graph's triple
  index is built once, repeated homomorphism sub-instances are solved once,
  and witness subtrees are looked up once per distinct mapping;
* duplicate mappings in the input are answered once and fanned back out;
* the ``"auto"`` method is resolved once for the whole set instead of per
  call;
* batched ``"naive"`` evaluation materialises ``⟦P⟧G`` a single time and
  answers every mapping by set membership;
* an opt-in :mod:`multiprocessing` pool (``processes=``) splits
  embarrassingly parallel instance sets across workers; the µ-independent
  evaluation state (target index, consistency kernels) is warmed in the
  parent before forking — so workers inherit it copy-on-write — and rebuilt
  once per worker in the pool initializer on non-fork start methods.

Answers are guaranteed identical (same booleans, same order) to the
single-shot engine; the cache and the pool are pure performance features.

The module-level helpers :func:`contains_many_patterns` and
:func:`contains_matrix` cover the many-patterns-one-graph direction, again
sharing one cache so structurally overlapping patterns reuse each other's
homomorphism tests.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .cache import EvaluationCache
from .engine import Engine
from .naive import evaluate_pattern
from .wdeval import EvaluationStatistics
from ..patterns.forest import WDPatternForest
from ..rdf.graph import RDFGraph
from ..sparql.algebra import GraphPattern
from ..sparql.mappings import Mapping
from ..exceptions import EvaluationError

__all__ = ["BatchEngine", "contains_many_patterns", "contains_matrix"]

#: Anything a batch entry point accepts as "a pattern".
PatternLike = Union[Engine, GraphPattern, WDPatternForest]


def _as_engine(pattern: PatternLike, cache: Optional[EvaluationCache]) -> Engine:
    """Coerce a pattern-like value into an engine wired to *cache*."""
    if isinstance(pattern, Engine):
        if cache is None or pattern.cache is cache:
            return pattern
        return Engine(pattern.pattern, pattern.forest, pattern.width_bound, cache=cache)
    if isinstance(pattern, WDPatternForest):
        return Engine(forest=pattern, cache=cache)
    if isinstance(pattern, GraphPattern):
        return Engine(pattern, cache=cache)
    raise EvaluationError(
        f"expected an Engine, GraphPattern or WDPatternForest, got {type(pattern).__name__}"
    )


# --- multiprocessing plumbing -------------------------------------------------
#
# Workers are initialised once per pool with the forest and graph and then
# stream mappings; each worker owns an EvaluationCache so the per-graph index,
# memo tables and consistency kernels are built once per worker, not per task.
#
# With the ``fork`` start method the parent warms its own cache *before* the
# pool is created and hands the live engine to the initializer — fork does not
# pickle initargs, so every worker starts with the precomputed kernels and
# target index already in (copy-on-write shared) memory.  Other start methods
# receive pickled copies and rebuild the µ-independent state once per worker
# in the initializer instead of lazily per task.

_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    forest: WDPatternForest,
    width_bound: Optional[int],
    graph: RDFGraph,
    method: str,
    width: Optional[int],
    warm_engine: Optional[Engine] = None,
) -> None:
    if warm_engine is not None:
        # Fork path: the parent's engine (and its warmed cache) arrives by
        # address, not by pickle; reuse it directly.
        engine = warm_engine
    else:
        engine = Engine(forest=forest, width_bound=width_bound, cache=EvaluationCache())
        cache = engine.cache
        if cache is not None:
            if method == "pebble" and width is not None:
                cache.warm_pebble(forest, graph, width + 1)
            else:
                cache.target_index(graph)
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["method"] = method
    _WORKER_STATE["width"] = width


def _worker_contains(mu: Mapping) -> bool:
    engine: Engine = _WORKER_STATE["engine"]  # type: ignore[assignment]
    return engine.contains(
        _WORKER_STATE["graph"],  # type: ignore[arg-type]
        mu,
        method=_WORKER_STATE["method"],  # type: ignore[arg-type]
        width=_WORKER_STATE["width"],  # type: ignore[arg-type]
    )


class BatchEngine:
    """Answer many wdEVAL instances for one pattern through a shared cache.

    Parameters mirror :class:`Engine`; a fresh
    :class:`~repro.evaluation.cache.EvaluationCache` is created when none is
    supplied, so batching is cached by construction.

    >>> from repro.sparql import parse_pattern
    >>> from repro.rdf import RDFGraph, Triple
    >>> batch = BatchEngine(parse_pattern("((?x knows ?y) OPT (?y email ?e))"))
    >>> g = RDFGraph([Triple.of("a", "knows", "b")])
    >>> batch.contains_many(g, [Mapping.of(x="a", y="b")])
    [True]
    """

    def __init__(
        self,
        pattern: Optional[GraphPattern] = None,
        forest: Optional[WDPatternForest] = None,
        width_bound: Optional[int] = None,
        cache: Optional[EvaluationCache] = None,
        processes: Optional[int] = None,
    ) -> None:
        if processes is not None and processes < 1:
            raise EvaluationError("processes must be a positive integer")
        self._cache = cache if cache is not None else EvaluationCache()
        self._engine = Engine(pattern, forest, width_bound, cache=self._cache)
        self._processes = processes

    @classmethod
    def from_engine(cls, engine: Engine, processes: Optional[int] = None) -> "BatchEngine":
        """Wrap an existing engine (reusing its cache when it has one)."""
        return cls(
            engine.pattern,
            engine.forest,
            engine.width_bound,
            cache=engine.cache,
            processes=processes,
        )

    # --- introspection -----------------------------------------------------
    @property
    def engine(self) -> Engine:
        """The underlying single-instance engine (shares this batch's cache)."""
        return self._engine

    @property
    def cache(self) -> EvaluationCache:
        """The evaluation cache shared by every instance of this batch."""
        return self._cache

    @property
    def forest(self) -> WDPatternForest:
        """The wdPF being evaluated."""
        return self._engine.forest

    @property
    def pattern(self) -> GraphPattern:
        """The graph pattern being evaluated."""
        return self._engine.pattern

    def __repr__(self) -> str:
        return f"BatchEngine({self._engine.forest!r}, processes={self._processes})"

    # --- batched membership ------------------------------------------------
    def contains_many(
        self,
        graph: RDFGraph,
        mappings: Iterable[Mapping],
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
        processes: Optional[int] = None,
    ) -> List[bool]:
        """Decide ``µ ∈ ⟦P⟧G`` for every mapping, in input order.

        Guaranteed to return exactly the booleans a loop of
        :meth:`Engine.contains` calls would, but sharing the cache across
        instances, deduplicating repeated mappings, resolving ``"auto"``
        once, and — when *processes* (or the constructor default) asks for
        it — fanning the instances out over a worker pool.

        *statistics* is only accumulated on the serial path; worker-side
        counters are not collected.
        """
        mappings = list(mappings)
        if not mappings:
            return []
        resolved_method, resolved_width = self._engine.resolve_method(method, width)
        unique: List[Mapping] = []
        seen: Set[Mapping] = set()
        for mu in mappings:
            if mu not in seen:
                seen.add(mu)
                unique.append(mu)

        processes = processes if processes is not None else self._processes
        if resolved_method == "naive":
            # One materialisation of the full answer set serves every mapping.
            answer_set = evaluate_pattern(self._engine.pattern, graph)
            answers = {mu: mu in answer_set for mu in unique}
        elif processes is not None and processes > 1 and len(unique) > 1:
            answers = dict(
                zip(unique, self._parallel(graph, unique, resolved_method, resolved_width, processes))
            )
        else:
            answers = {
                mu: self._engine.contains(
                    graph, mu, method=resolved_method, width=resolved_width, statistics=statistics
                )
                for mu in unique
            }
        return [answers[mu] for mu in mappings]

    def _parallel(
        self,
        graph: RDFGraph,
        mappings: Sequence[Mapping],
        method: str,
        width: Optional[int],
        processes: int,
    ) -> List[bool]:
        processes = min(processes, len(mappings))
        chunksize = max(1, len(mappings) // (processes * 4))
        ctx = multiprocessing.get_context()
        warm_engine: Optional[Engine] = None
        if ctx.get_start_method() == "fork":
            # Build the µ-independent state once in the parent so the workers
            # fork with warm kernels/indexes instead of rebuilding them.  No
            # mappings here on purpose: per-mapping witness-subtree lookups
            # would serialise in the parent (Amdahl); workers do those in
            # parallel against the copy-on-write shared kernels.
            self.warm(graph, method=method, width=width)
            warm_engine = self._engine
        with ctx.Pool(
            processes,
            initializer=_init_worker,
            initargs=(
                self._engine.forest,
                self._engine.width_bound,
                graph,
                method,
                width,
                warm_engine,
            ),
        ) as pool:
            return pool.map(_worker_contains, mappings, chunksize=chunksize)

    def warm(
        self,
        graph: RDFGraph,
        mappings: Optional[Iterable[Mapping]] = None,
        method: str = "auto",
        width: Optional[int] = None,
    ) -> int:
        """Precompute the µ-independent evaluation state for *graph*.

        For the pebble method this builds the shared target index, the graph
        domain, and the consistency kernels of every ``(witness subtree,
        child)`` instance the given *mappings* reach (the root-subtree
        instances when no mappings are given); for the other methods it
        builds the target index.  Returns the number of kernels ensured.
        Warming is a pure performance feature — answers are identical with
        and without it — and is what :meth:`contains_many` does before
        forking a worker pool.
        """
        resolved_method, resolved_width = self._engine.resolve_method(method, width)
        if resolved_method == "pebble" and resolved_width is not None:
            return self._cache.warm_pebble(
                self._engine.forest,
                graph,
                resolved_width + 1,
                list(mappings) if mappings is not None else None,
            )
        if resolved_method != "naive":
            self._cache.target_index(graph)
        return 0

    # --- passthroughs ------------------------------------------------------
    def contains(
        self,
        graph: RDFGraph,
        mu: Mapping,
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> bool:
        """Single membership check through the shared cache."""
        return self._engine.contains(graph, mu, method=method, width=width, statistics=statistics)

    def solutions(self, graph: RDFGraph, method: str = "natural") -> Set[Mapping]:
        """Enumerate the full answer set ``⟦P⟧G`` (see :meth:`Engine.solutions`)."""
        return self._engine.solutions(graph, method=method)


def contains_many_patterns(
    patterns: Iterable[PatternLike],
    graph: RDFGraph,
    mu: Mapping,
    method: str = "auto",
    width: Optional[int] = None,
    cache: Optional[EvaluationCache] = None,
) -> List[bool]:
    """Decide ``µ ∈ ⟦P_i⟧G`` for many patterns over one graph.

    All patterns share one cache, so the graph index is built once and
    homomorphism sub-instances common to several patterns are solved once.
    """
    cache = cache if cache is not None else EvaluationCache()
    return [
        _as_engine(pattern, cache).contains(graph, mu, method=method, width=width)
        for pattern in patterns
    ]


def contains_matrix(
    patterns: Iterable[PatternLike],
    graph: RDFGraph,
    mappings: Iterable[Mapping],
    method: str = "auto",
    width: Optional[int] = None,
    cache: Optional[EvaluationCache] = None,
) -> List[List[bool]]:
    """The full answer matrix: one row per pattern, one column per mapping.

    Covers the "many patterns × many mappings over one graph" workload with
    a single shared cache.
    """
    cache = cache if cache is not None else EvaluationCache()
    mappings = list(mappings)
    return [
        BatchEngine.from_engine(_as_engine(pattern, cache)).contains_many(
            graph, mappings, method=method, width=width
        )
        for pattern in patterns
    ]
