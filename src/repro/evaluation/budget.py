"""Evaluation budgets: wall-clock deadlines, step limits, cancellation.

A :class:`Budget` bounds how long one evaluation may run.  It is carried on
:class:`~repro.evaluation.context.EvalContext` and checked *cheaply* inside
the hot loops of the stack — the homomorphism backtracking search, the
consistency-kernel worklists, the naive materialisation and both enumeration
streams — via :meth:`Budget.tick`, an amortized check: a countdown counter
is decremented on every call and the (comparatively expensive)
``time.monotonic()`` read only happens when the counter runs out, every
``check_interval`` ticks.  When the deadline has passed, the step budget is
exhausted, or the budget was cooperatively cancelled, ``tick`` raises
:class:`~repro.exceptions.DeadlineExceeded`.

Deadlines are stored as *absolute* ``time.monotonic()`` instants, so a
budget created in the parent remains meaningful in forked pool workers
(``CLOCK_MONOTONIC`` is system-wide on Linux) and pickling preserves the
absolute expiry rather than restarting the clock.

:class:`TimeoutReport` is the terminal value a deadline-bounded
:meth:`~repro.evaluation.session.Session.solutions_iter` yields after its
partial results: a summary of what was done, what was cut off, and the
statistics snapshot at the moment the deadline tripped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from ..exceptions import DeadlineExceeded, EvaluationError

__all__ = ["Budget", "TimeoutReport"]

#: Default number of ``tick()`` calls between real clock reads.
DEFAULT_CHECK_INTERVAL = 256


class Budget:
    """A cooperative evaluation budget.

    Parameters
    ----------
    deadline:
        Wall-clock allowance in **seconds** from now (``None`` = unbounded).
        Stored internally as an absolute ``time.monotonic()`` expiry.
    steps:
        Optional step budget: the total number of ``tick`` units the
        evaluation may consume (``None`` = unbounded).
    check_interval:
        How many ``tick()`` calls to amortize between real clock reads.

    A budget is *shared, mutable* state: every layer holding a reference to
    the same budget sees the same countdown and the same :meth:`cancel`
    flag.  The hot loops only ever call :meth:`tick`; entry/exit points may
    call :meth:`check` for an immediate verdict.
    """

    __slots__ = (
        "started_at",
        "expires_at",
        "steps_limit",
        "steps_used",
        "_cancelled",
        "_interval",
        "_countdown",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        steps: Optional[int] = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise EvaluationError(f"budget deadline must be >= 0, got {deadline!r}")
        if steps is not None and steps < 0:
            raise EvaluationError(f"budget step limit must be >= 0, got {steps!r}")
        if check_interval < 1:
            raise EvaluationError(
                f"budget check_interval must be >= 1, got {check_interval!r}"
            )
        self.started_at = time.monotonic()
        self.expires_at = None if deadline is None else self.started_at + deadline
        self.steps_limit = steps
        self.steps_used = 0
        self._cancelled = False
        self._interval = check_interval
        self._countdown = check_interval

    # --- interrogation ----------------------------------------------------
    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return time.monotonic() - self.started_at

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` = no deadline)."""
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether any bound has been crossed (no exception raised)."""
        if self._cancelled:
            return True
        if self.steps_limit is not None and self.steps_used > self.steps_limit:
            return True
        return self.expires_at is not None and time.monotonic() >= self.expires_at

    # --- control ----------------------------------------------------------
    def cancel(self) -> None:
        """Cooperatively cancel: the next check raises ``DeadlineExceeded``."""
        self._cancelled = True

    def check(self) -> None:
        """Immediate (non-amortized) bound check; raises on violation."""
        if self._cancelled:
            raise DeadlineExceeded(
                "evaluation cancelled", elapsed=self.elapsed(), budget=self
            )
        if self.steps_limit is not None and self.steps_used > self.steps_limit:
            raise DeadlineExceeded(
                f"evaluation step budget exhausted "
                f"({self.steps_used} > {self.steps_limit} steps)",
                elapsed=self.elapsed(),
                budget=self,
            )
        if self.expires_at is not None and time.monotonic() >= self.expires_at:
            raise DeadlineExceeded(
                f"evaluation deadline exceeded "
                f"({self.expires_at - self.started_at:.3f}s allowed)",
                elapsed=self.elapsed(),
                budget=self,
            )

    def tick(self, n: int = 1) -> None:
        """Amortized bound check for hot loops.

        Counts *n* steps against the step budget and, every
        ``check_interval`` accumulated ticks, performs the real clock /
        cancellation check.  Cheap enough to call once per backtracking
        node, worklist pop or materialised mapping.
        """
        self.steps_used += n
        self._countdown -= n
        if self._countdown <= 0:
            self._countdown = self._interval
            self.check()

    # --- pickling ---------------------------------------------------------
    def __getstate__(self):
        return {
            "started_at": self.started_at,
            "expires_at": self.expires_at,
            "steps_limit": self.steps_limit,
            "steps_used": self.steps_used,
            "cancelled": self._cancelled,
            "interval": self._interval,
        }

    def __setstate__(self, state) -> None:
        self.started_at = state["started_at"]
        self.expires_at = state["expires_at"]
        self.steps_limit = state["steps_limit"]
        self.steps_used = state["steps_used"]
        self._cancelled = state["cancelled"]
        self._interval = state["interval"]
        self._countdown = state["interval"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = []
        if self.expires_at is not None:
            bits.append(f"deadline={self.expires_at - self.started_at:.3f}s")
        if self.steps_limit is not None:
            bits.append(f"steps={self.steps_used}/{self.steps_limit}")
        if self._cancelled:
            bits.append("cancelled")
        return f"Budget({', '.join(bits) or 'unbounded'})"


def budget_from(
    deadline: Optional[float] = None, budget: Optional[Budget] = None
) -> Optional[Budget]:
    """Normalise the ``deadline= / budget=`` convenience pair of the public
    entry points: an explicit :class:`Budget` wins, a bare ``deadline``
    (seconds from now) builds one, neither means unbounded."""
    if budget is not None:
        return budget
    if deadline is not None:
        return Budget(deadline=deadline)
    return None


@dataclass(frozen=True)
class TimeoutReport:
    """Terminal item yielded by a deadline-bounded ``solutions_iter``.

    The stream yields every solution chunk it produced in time, then exactly
    one ``TimeoutReport`` describing the cut, then stops.  Consumers can
    ``isinstance``-check the items or compare against the report's fields.
    """

    #: Seconds the evaluation ran before the deadline tripped.
    elapsed: float
    #: The configured allowance in seconds (``None`` for step/cancel trips).
    deadline: Optional[float]
    #: ``(pattern, graph)`` cells fully enumerated before the trip.
    cells_done: int
    #: Cells still unfinished when the deadline tripped.
    cells_pending: int
    #: Solutions already yielded to the consumer before the report.
    solutions_yielded: int
    #: The statistics snapshot at the moment of the trip (may be ``None``).
    statistics: Optional[Any] = None
    #: Extra detail strings (one per pending cell where known).
    pending: Tuple[str, ...] = field(default_factory=tuple)

    def __repr__(self) -> str:
        return (
            f"TimeoutReport(elapsed={self.elapsed:.3f}s, "
            f"cells_done={self.cells_done}, cells_pending={self.cells_pending}, "
            f"solutions_yielded={self.solutions_yielded})"
        )
