"""Shared memoization for the wdEVAL engines.

Answering many wdEVAL instances against one RDF graph repeats a lot of work:
every extension test of the natural algorithm rebuilds a triple index over
the whole graph, distinct mappings that agree on the variables a child
actually shares with the witness subtree re-run the identical homomorphism
search, and the subtree bookkeeping (children, ``pat(T')``, ``vars(T')``) is
recomputed per call even though it only depends on the (immutable) pattern
tree.  :class:`EvaluationCache` memoizes all of it:

* **homomorphism tests** — keyed on the canonicalized instance
  ``(triples, fixed-bindings)``, where the fixed bindings are ``µ``
  restricted to the variables the triples actually mention, so distinct
  mappings that induce the same sub-instance share one search;
* **homomorphism lists** — the full (µ-independent) answer list of one
  subtree pattern against the graph, which is what solution enumeration
  iterates; repeated or forked enumerations replay from memory;
* **tree solution lists** — the complete enumerated answer list ``⟦T⟧G`` of
  one pattern tree, recorded when an enumeration runs to completion, so
  steady-state sessions (and warm-forked enumeration workers) replay whole
  answer sets instead of re-deriving them;
* **pebble-game verdicts** — keyed the same way plus the distinguished set
  and the number of pebbles;
* **consistency kernels** — one precomputed
  :class:`~repro.pebble.kernel.ConsistencyKernel` per
  ``(instance structure, pebbles)``, so the µ-independent part of the
  pebble game (constraint grouping, base domains, binary supports) is paid
  once per child instance instead of once per mapping;
* **µ-subtree lookups** — the witness subtree ``T^µ`` per ``(tree, µ)``;
* **target indexes** — one prebuilt
  :class:`~repro.hom.homomorphism.TargetIndex` per graph, shared by every
  memoized search and every kernel;
* **subtree tables** — per-tree maps from a subtree's node set to its
  children / pattern / variables, shared across graphs.

Graph-dependent entries live in per-graph stores keyed on
``RDFGraph.version``; mutating a graph (``add`` / ``discard``) bumps the
version, so the next lookup transparently drops every stale entry for that
graph.  Stores are evicted when their graph is garbage collected, and
``max_entries_per_graph`` bounds each store with an **LRU** policy under
rough size accounting: plain memo entries cost 1, homomorphism lists and
tree solution lists cost ``1 + len(list)`` (one unit per stored answer, so
bounded caches evict large answer lists first), kernels cost roughly the
number of values/support pairs they hold, every hit refreshes the entry's
recency, and the least recently used entries are evicted first — so hot
entries survive eviction pressure.  The same limit also caps the number of
per-tree structure tables (which pin their trees), so a bounded cache stays
bounded even over a stream of distinct patterns.  With the default
``max_entries_per_graph=None`` the cache grows without limit and holds
strong references to every tree it has seen — prefer a bound for long-lived
shared caches.

A cache is shared safely between any number of :class:`Engine` /
:class:`BatchEngine` instances — entries are keyed on the evaluated
sub-instances, not on the owning engine, so patterns with common structure
benefit from each other's work.

**The worker return channel.**  Parallel sessions run their enumeration and
membership workers in separate processes; whatever those workers learn
would normally die with the pool.  :meth:`EvaluationCache.collect_deltas`
turns on a journal of newly memoized entries, :meth:`export_delta` drains
the journal into a picklable, version-stamped :class:`CacheDelta` (portable
keys only: sub-instance content plus tree/graph *slots* instead of
process-local ``id()``\\ s), and the parent merges a received delta through
:meth:`absorb` — which re-checks every version stamp against the live graph
(a delta recorded before a mutation is dropped, never merged) and charges
the regular LRU costs.  Steady-state parallel serving therefore replays
from the parent cache instead of recomputing per batch.

**Thread safety.**  One cache may be hit concurrently from multiple
threads (the query service evaluates requests on a thread pool over one
shared session).  An internal re-entrant lock serializes every
*structural* operation — store lookup (an LRU hit reorders the recency
list), insertion, eviction, tree-table management, journal draining and
delta absorption — while the *computations* (homomorphism searches,
kernel construction) deliberately run outside the lock: two threads
missing on the same key may duplicate a computation, but the values are
deterministic, so whichever insert lands last is identical and no caller
ever observes a torn entry.  The contract is **safe for concurrent
readers of unmutated graphs**; serializing graph *mutations* against
in-flight lookups is the caller's job (the service's
:class:`~repro.service.gate.ReadWriteGate` — the version-stamped stores
make a stale read detectable, not impossible).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..hom.homomorphism import TargetIndex, find_homomorphism, target_index
from ..hom.tgraph import GeneralizedTGraph, TGraph
from ..patterns.tree import Subtree, WDPatternTree
from ..pebble.kernel import ConsistencyKernel
from ..rdf.graph import RDFGraph
from ..rdf.terms import Term, Variable
from ..sparql.mappings import Mapping

__all__ = ["CacheDelta", "CacheStatistics", "EvaluationCache"]

#: Sentinel distinguishing "absent" from memoized ``None``/``False`` values.
_MISSING = object()

#: Entry kinds that travel in a :class:`CacheDelta`.  All are deterministic,
#: content-keyed memo entries; consistency kernels are excluded (they hold a
#: graph weakref and are cheap to rebuild from an absorbed warm cache).
_DELTA_KINDS = frozenset({"hom", "homlist", "pebble", "subtree", "treesol"})

#: Delta kinds whose key leads with a process-local ``id(tree)`` that must be
#: translated to a tree *slot* before crossing a process boundary.
_TREE_KEYED_KINDS = frozenset({"subtree", "treesol"})


@dataclass
class CacheDelta:
    """A picklable bundle of cache entries learned by one worker process.

    Produced by :meth:`EvaluationCache.export_delta` and merged by
    :meth:`EvaluationCache.absorb`.  Entries are stored under **portable**
    keys: graph and tree objects are replaced by their positions (*slots*)
    in the graph/tree lists both sides agree on, and every graph slot
    carries the version stamp of the parent's graph at the time the work
    was farmed out — :meth:`~EvaluationCache.absorb` drops a slot whose
    stamp no longer matches the live graph, so a delta recorded against a
    since-mutated graph can never poison the receiving cache.
    """

    #: Graph slot -> the parent-side ``RDFGraph.version`` stamp.
    versions: Dict[int, int] = field(default_factory=dict)
    #: ``(graph_slot, kind, portable_key, value, cost)`` records.
    entries: List[Tuple[int, str, Tuple, object, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)


class CacheStatistics:
    """Hit/miss counters of one :class:`EvaluationCache` (for diagnostics)."""

    __slots__ = (
        "hom_hits",
        "hom_misses",
        "enum_hits",
        "enum_misses",
        "pebble_hits",
        "pebble_misses",
        "kernel_hits",
        "kernel_misses",
        "subtree_hits",
        "subtree_misses",
        "invalidations",
        "evictions",
        "deltas_absorbed",
        "delta_entries",
        "delta_entries_stale",
    )

    def __init__(self) -> None:
        self.hom_hits = 0
        self.hom_misses = 0
        self.enum_hits = 0
        self.enum_misses = 0
        self.pebble_hits = 0
        self.pebble_misses = 0
        self.kernel_hits = 0
        self.kernel_misses = 0
        self.subtree_hits = 0
        self.subtree_misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.deltas_absorbed = 0
        self.delta_entries = 0
        self.delta_entries_stale = 0

    @property
    def hits(self) -> int:
        """Total cache hits across all memoized operations."""
        return (
            self.hom_hits
            + self.enum_hits
            + self.pebble_hits
            + self.kernel_hits
            + self.subtree_hits
        )

    @property
    def misses(self) -> int:
        """Total cache misses across all memoized operations."""
        return (
            self.hom_misses
            + self.enum_misses
            + self.pebble_misses
            + self.kernel_misses
            + self.subtree_misses
        )

    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dictionary (for tables and logs)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"CacheStatistics(hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations}, evictions={self.evictions})"
        )


class _GraphStore:
    """Per-graph memo tables, valid for a single graph version.

    All memoized results live in one insertion-ordered mapping keyed by
    ``(kind, key)``; a hit re-inserts the entry at the end, so iteration
    order is recency order and eviction pops from the front (LRU).  Each
    entry carries a rough cost; ``total_cost`` is what the cache bound
    compares against.
    """

    __slots__ = ("version", "index", "entries", "costs", "total_cost")

    def __init__(self, version: int) -> None:
        self.version = version
        self.index: Optional[TargetIndex] = None
        self.entries: Dict[Tuple[str, Tuple], object] = {}
        self.costs: Dict[Tuple[str, Tuple], int] = {}
        self.total_cost = 0

    def reset(self, version: int) -> None:
        self.version = version
        self.index = None
        self.entries.clear()
        self.costs.clear()
        self.total_cost = 0

    def get(self, kind: str, key: Tuple) -> object:
        """The memoized value (recency-refreshed), or ``_MISSING``."""
        full_key = (kind, key)
        value = self.entries.pop(full_key, _MISSING)
        if value is not _MISSING:
            self.entries[full_key] = value  # re-insert at the recent end
        return value

    def put(self, kind: str, key: Tuple, value: object, cost: int = 1) -> None:
        full_key = (kind, key)
        if full_key in self.entries:
            self.entries.pop(full_key)
            self.total_cost -= self.costs.pop(full_key)
        self.entries[full_key] = value
        self.costs[full_key] = cost
        self.total_cost += cost

    def evict_one(self) -> None:
        """Drop the least recently used entry."""
        full_key = next(iter(self.entries))
        del self.entries[full_key]
        self.total_cost -= self.costs.pop(full_key)

    def drop_matching(self, kind: str, predicate) -> None:
        """Drop every *kind* entry whose key satisfies *predicate*."""
        stale = [
            full_key
            for full_key in self.entries
            if full_key[0] == kind and predicate(full_key[1])
        ]
        for full_key in stale:
            del self.entries[full_key]
            self.total_cost -= self.costs.pop(full_key)

    def entry_count(self) -> int:
        return len(self.entries)


class _TreeTable:
    """Graph-independent structure tables of one pattern tree.

    Holds a strong reference to the tree so that the ``id()``-based key
    stays valid for the lifetime of the table.
    """

    __slots__ = ("tree", "children", "pat", "variables", "extended")

    def __init__(self, tree: WDPatternTree) -> None:
        self.tree = tree
        self.children: Dict[FrozenSet[int], Tuple[int, ...]] = {}
        self.pat: Dict[FrozenSet[int], TGraph] = {}
        self.variables: Dict[FrozenSet[int], FrozenSet[Variable]] = {}
        self.extended: Dict[Tuple[FrozenSet[int], int], GeneralizedTGraph] = {}


class EvaluationCache:
    """Memoization shared by the evaluation engines (see the module docs).

    Parameters
    ----------
    max_entries_per_graph:
        Rough cost budget per graph store (plain entries cost 1, consistency
        kernels cost proportionally to their precomputed state); the least
        recently used entries are evicted first.  ``None`` (the default)
        means unbounded.
    """

    def __init__(self, max_entries_per_graph: Optional[int] = None) -> None:
        if max_entries_per_graph is not None and max_entries_per_graph < 1:
            raise ValueError("max_entries_per_graph must be positive")
        self._max_entries = max_entries_per_graph
        self._graphs: Dict[int, _GraphStore] = {}
        self._trees: Dict[int, _TreeTable] = {}
        self._statistics = CacheStatistics()
        # Guards every structural operation (lookups reorder the LRU list,
        # inserts evict) so the cache is safe under the service's thread
        # pool; re-entrant because primitives call each other (for instance
        # pebble_winner -> pebble_kernel).  See the module docs.
        self._lock = threading.RLock()
        # Delta journal: id(graph) -> [(kind, key), ...] of entries memoized
        # since the last export; None until collect_deltas() turns it on.
        self._journal: Optional[Dict[int, List[Tuple[str, Tuple]]]] = None

    # --- introspection -----------------------------------------------------
    @property
    def statistics(self) -> CacheStatistics:
        """The live hit/miss counters of this cache."""
        return self._statistics

    def __repr__(self) -> str:
        with self._lock:
            entries = sum(store.entry_count() for store in self._graphs.values())
            return f"EvaluationCache(<{len(self._graphs)} graphs, {entries} entries>)"

    # --- lifecycle ---------------------------------------------------------
    def clear(self) -> None:
        """Drop every memoized entry (graph stores and tree tables)."""
        with self._lock:
            self._graphs.clear()
            self._trees.clear()

    def invalidate(self, graph: Optional[RDFGraph] = None) -> None:
        """Explicitly drop the entries of *graph* (or of every graph).

        Mutating a graph through :meth:`RDFGraph.add` / ``discard`` already
        invalidates transparently via the version counter; this exists for
        callers that replace a graph's contents through other means.
        """
        with self._lock:
            if graph is None:
                self._graphs.clear()
            else:
                self._graphs.pop(id(graph), None)
            self._statistics.invalidations += 1

    # --- the worker return channel ------------------------------------------
    def collect_deltas(self) -> None:
        """Start journaling newly memoized entries for :meth:`export_delta`.

        Worker processes call this once in their pool initializer; under the
        ``fork`` start method the flag flips only in the worker's
        copy-on-write copy of an inherited parent cache, so inherited
        entries are never re-shipped — only what the worker itself learns.
        """
        with self._lock:
            if self._journal is None:
                self._journal = {}

    @property
    def collecting_deltas(self) -> bool:
        """Whether the delta journal is on (see :meth:`collect_deltas`)."""
        with self._lock:
            return self._journal is not None

    def export_delta(
        self,
        graphs: Sequence[RDFGraph],
        trees: Sequence[WDPatternTree],
        stamps: Sequence[Optional[int]],
    ) -> Optional[CacheDelta]:
        """Drain the journal into a picklable :class:`CacheDelta` (or ``None``).

        *graphs* and *trees* define the slot vocabulary shared with the
        absorbing side; ``stamps[i]`` is the **parent-side** version of
        ``graphs[i]`` at pool creation (``None`` withholds that graph's
        entries — the caller passes ``None`` when its own copy of the graph
        mutated after the pool was set up, so the stamp no longer describes
        the entries).  Only entries whose store still matches the worker's
        current graph version are exported; everything else is silently
        dropped.  Returns ``None`` when nothing new was learned, so callers
        can skip pickling empty deltas.
        """
        with self._lock:
            if self._journal is None:
                return None
            journal, self._journal = self._journal, {}
            tree_slots = {id(tree): slot for slot, tree in enumerate(trees)}
            delta = CacheDelta()
            for slot, (graph, stamp) in enumerate(zip(graphs, stamps)):
                keys = journal.get(id(graph))
                if not keys or stamp is None:
                    continue
                store = self._graphs.get(id(graph))
                if store is None or store.version != graph.version:
                    continue
                exported = False
                for full_key in dict.fromkeys(keys):  # dedupe, keep journal order
                    value = store.entries.get(full_key, _MISSING)
                    if value is _MISSING:  # evicted since it was journaled
                        continue
                    kind, key = full_key
                    if kind in _TREE_KEYED_KINDS:
                        tree_slot = tree_slots.get(key[0])
                        if tree_slot is None:  # tree outside the shared vocabulary
                            continue
                        key = (tree_slot,) + key[1:]
                    delta.entries.append(
                        (slot, kind, key, value, store.costs[full_key])
                    )
                    exported = True
                if exported:
                    delta.versions[slot] = stamp
            return delta if delta.entries else None

    def absorb(
        self,
        delta: CacheDelta,
        graphs: Sequence[RDFGraph],
        trees: Sequence[WDPatternTree] = (),
    ) -> int:
        """Merge a worker's :class:`CacheDelta` into this cache.

        *graphs*/*trees* supply the same slot vocabulary the exporting side
        used.  Every entry is guarded by its graph slot's version stamp: a
        stamp that no longer matches the live ``graph.version`` (the parent
        mutated the graph while the worker ran) is dropped and counted in
        ``statistics.delta_entries_stale`` — a stale delta can never poison
        the cache.  Malformed entries (unknown kind, out-of-range slot or
        tree index, wrong shape — for instance a delta corrupted in
        transit) are likewise dropped and counted, never raised: a bad
        delta costs its entries, not the batch.  Accepted entries are
        inserted with their original costs through the regular LRU bound.
        Returns the number of entries absorbed (already-present entries
        are skipped, preserving the parent's own recency order).
        """
        with self._lock:
            return self._absorb_locked(delta, graphs, trees)

    def _absorb_locked(
        self,
        delta: CacheDelta,
        graphs: Sequence[RDFGraph],
        trees: Sequence[WDPatternTree],
    ) -> int:
        tree_list = list(trees)
        absorbed = 0
        for entry in delta.entries:
            try:
                slot, kind, key, value, cost = entry
                if kind not in _DELTA_KINDS:
                    raise ValueError(f"unknown delta kind {kind!r}")
                stamp = delta.versions.get(slot)
                if not 0 <= slot < len(graphs):
                    raise IndexError(f"graph slot {slot!r} out of range")
                graph = graphs[slot]
                if stamp is None or stamp != graph.version:
                    self._statistics.delta_entries_stale += 1
                    continue
                if kind in _TREE_KEYED_KINDS:
                    tree = tree_list[key[0]]
                    self._tree_table(tree)  # pin the tree: the id() key stays valid
                    key = (id(tree),) + key[1:]
            except (TypeError, ValueError, IndexError, KeyError):
                self._statistics.delta_entries_stale += 1
                continue
            store = self._store(graph)
            if (kind, key) in store.entries:
                continue
            self._bounded_insert(graph, store, kind, key, value, cost)
            absorbed += 1
        self._statistics.deltas_absorbed += 1
        self._statistics.delta_entries += absorbed
        return absorbed

    # --- stores ------------------------------------------------------------
    def _store(self, graph: RDFGraph) -> _GraphStore:
        with self._lock:
            key = id(graph)
            store = self._graphs.get(key)
            if store is None:
                store = _GraphStore(graph.version)
                self._graphs[key] = store
                # Evict the store when the graph is collected so that a
                # recycled id() can never alias stale entries.
                graphs = self._graphs
                weakref.finalize(graph, graphs.pop, key, None)
            elif store.version != graph.version:
                store.reset(graph.version)
                self._statistics.invalidations += 1
            return store

    def _tree_table(self, tree: WDPatternTree) -> _TreeTable:
        with self._lock:
            table = self._trees.get(id(tree))
            if table is None:
                if (
                    self._max_entries is not None
                    and len(self._trees) >= self._max_entries
                ):
                    self._evict_tree_table()
                table = _TreeTable(tree)
                self._trees[id(tree)] = table
            return table

    def _evict_tree_table(self) -> None:
        """Drop the oldest tree table (and with it the strong pin on its tree).

        The evicted table's tree may be garbage collected afterwards, so its
        ``id()`` can be recycled; every memoized subtree entry keyed on that
        id must go with it.
        """
        tree_id = next(iter(self._trees))
        del self._trees[tree_id]
        for store in self._graphs.values():
            store.drop_matching("subtree", lambda key: key[0] == tree_id)
            store.drop_matching("treesol", lambda key: key[0] == tree_id)
        self._statistics.evictions += 1

    def _bounded_insert(
        self,
        graph: RDFGraph,
        store: _GraphStore,
        kind: str,
        key: Tuple,
        value: object,
        cost: int = 1,
    ) -> None:
        with self._lock:
            if self._max_entries is not None:
                while store.entries and store.total_cost + cost > self._max_entries:
                    store.evict_one()
                    self._statistics.evictions += 1
            store.put(kind, key, value, cost)
            if self._journal is not None and kind in _DELTA_KINDS:
                self._journal.setdefault(id(graph), []).append((kind, key))

    # --- memoized primitives ----------------------------------------------
    def target_index(self, graph: RDFGraph) -> TargetIndex:
        """The (per-version memoized) triple index of *graph*."""
        with self._lock:
            store = self._store(graph)
            index = store.index
        if index is None:
            # Built outside the lock: two threads may duplicate the build,
            # but the index is deterministic and the last write wins.
            index = target_index(graph)
            with self._lock:
                store = self._store(graph)
                if store.index is None:
                    store.index = index
                index = store.index
        return index

    def extension_exists(
        self, triples: TGraph, graph: RDFGraph, mu: Mapping, budget=None
    ) -> bool:
        """Memoized ``extends_into(triples, graph, µ) is not None``.

        The key restricts ``µ`` to the variables of *triples*, so mappings
        that agree there share a single homomorphism search.
        """
        fixed: Dict[Variable, Term] = {
            var: mu[var] for var in triples.variables() & mu.domain()
        }
        key = (triples.triples(), frozenset(fixed.items()))
        with self._lock:
            store = self._store(graph)
            cached = store.get("hom", key)
            if cached is not _MISSING:
                self._statistics.hom_hits += 1
                return cached  # type: ignore[return-value]
            self._statistics.hom_misses += 1
        result = (
            find_homomorphism(triples, graph, fixed, self.target_index(graph), budget)
            is not None
        )
        self._bounded_insert(graph, self._store(graph), "hom", key, result)
        return result

    def homomorphisms_stream(
        self, source: TGraph, graph: RDFGraph, budget=None
    ) -> Iterator[Dict[Variable, Term]]:
        """All homomorphisms from *source* into *graph*, lazily, memoized.

        This is the µ-independent search of solution enumeration (Lemma 1
        iterates the homomorphisms of every subtree pattern), keyed on the
        source triples per graph version.  A recorded list replays from
        memory; otherwise the indexed search streams **lazily** (first
        results cost no more than the direct search) and the complete list
        is recorded only when the consumer exhausts the generator without
        the graph mutating mid-stream.  Entries are charged roughly one
        cost unit per stored homomorphism, so bounded caches evict large
        answer lists first.  Warmed/forked workers inherit recorded lists
        and replay enumeration instead of re-running the search.
        """
        from ..hom.homomorphism import all_homomorphisms

        key = (source.triples(),)
        with self._lock:
            store = self._store(graph)
            cached = store.get("homlist", key)
            if cached is not _MISSING:
                self._statistics.enum_hits += 1
                return iter(cached)  # type: ignore[arg-type]
            self._statistics.enum_misses += 1
        # Snapshot the version together with the index: both belong to the
        # graph as it is *now*.  If the graph mutates before (or while) the
        # stream is consumed, the completion check below fails and nothing
        # is recorded — a stale list must never be recorded under the new
        # version's store.
        version = graph.version
        index = self.target_index(graph)

        def search_and_record() -> Iterator[Dict[Variable, Term]]:
            # A budget trip aborts the generator mid-stream, so the
            # completion record below never runs — a truncated answer list
            # is never recorded as complete.
            recorded: list = []
            for hom in all_homomorphisms(source, graph, index=index, budget=budget):
                recorded.append(hom)
                yield hom
            if graph.version == version:
                self._bounded_insert(
                    graph, self._store(graph), "homlist", key, tuple(recorded),
                    cost=1 + len(recorded),
                )

        return search_and_record()

    def homomorphism_list(
        self, source: TGraph, graph: RDFGraph
    ) -> Tuple[Dict[Variable, Term], ...]:
        """The complete (memoized) homomorphism list — the eager face of
        :meth:`homomorphisms_stream`."""
        return tuple(self.homomorphisms_stream(source, graph))

    def pebble_kernel(
        self, extended: GeneralizedTGraph, graph: RDFGraph, pebbles: int
    ) -> ConsistencyKernel:
        """The memoized consistency kernel for one pebble instance structure.

        Keyed on ``(triples, distinguished, pebbles)`` per graph version, so
        every mapping evaluated against the same child instance shares one
        µ-independent precomputation (and the cache's shared target index).
        """
        key = (extended.triples(), extended.distinguished, pebbles)
        with self._lock:
            store = self._store(graph)
            kernel = store.get("kernel", key)
            if kernel is not _MISSING:
                self._statistics.kernel_hits += 1
                return kernel  # type: ignore[return-value]
            self._statistics.kernel_misses += 1
        # prepare() forces the µ-independent setup now so the size accounting
        # charges the built state (and warmed kernels are actually warm).
        kernel = ConsistencyKernel(
            extended, graph, pebbles, index=self.target_index(graph)
        ).prepare()
        self._bounded_insert(
            graph, self._store(graph), "kernel", key, kernel, cost=kernel.cost()
        )
        return kernel

    def pebble_winner(
        self,
        extended: GeneralizedTGraph,
        graph: RDFGraph,
        mu: Mapping,
        pebbles: int,
        budget=None,
    ) -> bool:
        """Memoized existential *pebbles*-pebble game verdict
        ``(S, X) →µ_pebbles G``, answered through the shared kernel."""
        fixed = frozenset(
            (var, mu[var]) for var in extended.distinguished if var in mu
        )
        key = (extended.triples(), extended.distinguished, fixed, pebbles)
        with self._lock:
            store = self._store(graph)
            cached = store.get("pebble", key)
            if cached is not _MISSING:
                self._statistics.pebble_hits += 1
                return cached  # type: ignore[return-value]
            self._statistics.pebble_misses += 1
        result = self.pebble_kernel(extended, graph, pebbles).winner(mu, budget=budget)
        # Re-fetch the store: building the kernel may have reset it if the
        # graph was mutated concurrently (defensive; same-version re-fetch is
        # a dict lookup).
        self._bounded_insert(graph, self._store(graph), "pebble", key, result)
        return result

    def mu_subtree(
        self, tree: WDPatternTree, graph: RDFGraph, mu: Mapping
    ) -> Optional[Subtree]:
        """Memoized witness subtree ``T^µ`` (``None`` when none exists)."""
        from .wdeval import find_mu_subtree  # deferred: wdeval imports this module

        key = (id(tree), frozenset(mu.items()))
        with self._lock:
            store = self._store(graph)
            self._tree_table(tree)  # pin the tree so the id() key stays valid
            cached = store.get("subtree", key)
        if cached is not _MISSING:
            self._statistics.subtree_hits += 1
            nodes = cached
        else:
            self._statistics.subtree_misses += 1
            subtree = find_mu_subtree(tree, graph, mu)
            nodes = subtree.nodes if subtree is not None else None
            self._bounded_insert(graph, self._store(graph), "subtree", key, nodes)
        if nodes is None:
            return None
        return Subtree(tree, nodes)

    def tree_solution_list(
        self, tree: WDPatternTree, graph: RDFGraph
    ) -> Optional[Tuple[Mapping, ...]]:
        """The recorded complete answer list ``⟦T⟧G`` (``None`` if absent).

        Recorded by :func:`~repro.evaluation.wdeval.tree_solutions_stream`
        when an enumeration runs to completion; keyed per tree and graph
        version, so mutation invalidates transparently.
        """
        with self._lock:
            store = self._store(graph)
            self._tree_table(tree)  # pin the tree so the id() key stays valid
            cached = store.get("treesol", (id(tree),))
            if cached is _MISSING:
                self._statistics.enum_misses += 1
                return None
            self._statistics.enum_hits += 1
            return cached  # type: ignore[return-value]

    def store_tree_solution_list(
        self, tree: WDPatternTree, graph: RDFGraph, solutions: Iterable[Mapping]
    ) -> None:
        """Record the complete answer list of *tree* over *graph* (charged
        roughly one cost unit per solution, like homomorphism lists)."""
        solutions = tuple(solutions)
        with self._lock:
            store = self._store(graph)
            self._tree_table(tree)
            self._bounded_insert(
                graph, store, "treesol", (id(tree),), solutions,
                cost=1 + len(solutions),
            )

    # --- warm-up ------------------------------------------------------------
    def warm_pebble(
        self,
        forest: Iterable[WDPatternTree],
        graph: RDFGraph,
        pebbles: int,
        mappings: Optional[Iterable[Mapping]] = None,
    ) -> int:
        """Precompute the µ-independent pebble state for *forest* over *graph*.

        Builds the shared target index, the sorted graph domain, and one
        consistency kernel per ``(witness subtree, child)`` instance the
        given *mappings* reach (per root subtree when no mappings are given —
        the witness of every root-shaped mapping).  Returns the number of
        kernel instances ensured.  Purely a performance feature: warming
        changes no verdicts, it only front-loads work so that subsequent
        lookups (or forked worker processes) find hot state.
        """
        self.target_index(graph)
        graph.sorted_domain()
        # Materialise up front: the mappings are re-walked once per tree, and
        # a one-shot iterable would otherwise only warm the first tree.
        if mappings is not None:
            mappings = list(mappings)
        count = 0
        for tree in forest:
            node_sets = set()
            if mappings is None:
                node_sets.add(frozenset({tree.root}))
            else:
                for mu in mappings:
                    subtree = self.mu_subtree(tree, graph, mu)
                    if subtree is not None:
                        node_sets.add(subtree.nodes)
            for nodes in node_sets:
                for child in self.subtree_children(tree, nodes):
                    extended = self.extended_child_graph(tree, nodes, child)
                    self.pebble_kernel(extended, graph, pebbles)
                    count += 1
        return count

    # --- per-tree structure tables ------------------------------------------
    # The table dicts are filled with deterministic, tree-only values through
    # GIL-atomic get/set, so concurrent fillers can at worst duplicate a
    # computation — no lock needed beyond _tree_table() itself.
    def subtree_children(self, tree: WDPatternTree, nodes: FrozenSet[int]) -> Tuple[int, ...]:
        """Memoized ``Subtree.children()`` for the subtree on *nodes*."""
        table = self._tree_table(tree)
        children = table.children.get(nodes)
        if children is None:
            children = Subtree(tree, nodes).children()
            table.children[nodes] = children
        return children

    def subtree_pat(self, tree: WDPatternTree, nodes: FrozenSet[int]) -> TGraph:
        """Memoized ``pat(T')`` for the subtree on *nodes*."""
        table = self._tree_table(tree)
        pat = table.pat.get(nodes)
        if pat is None:
            pat = tree.pat_of_nodes(nodes)
            table.pat[nodes] = pat
        return pat

    def subtree_variables(self, tree: WDPatternTree, nodes: FrozenSet[int]) -> FrozenSet[Variable]:
        """Memoized ``vars(T')`` for the subtree on *nodes*."""
        table = self._tree_table(tree)
        variables = table.variables.get(nodes)
        if variables is None:
            variables = self.subtree_pat(tree, nodes).variables()
            table.variables[nodes] = variables
        return variables

    def extended_child_graph(
        self, tree: WDPatternTree, nodes: FrozenSet[int], child: int
    ) -> GeneralizedTGraph:
        """Memoized ``(pat(T') ∪ pat(n), vars(T'))`` for a child *n* of the
        subtree on *nodes* — the instance the Theorem 1 pebble test runs on."""
        table = self._tree_table(tree)
        key = (nodes, child)
        extended = table.extended.get(key)
        if extended is None:
            base = self.subtree_pat(tree, nodes)
            extended = GeneralizedTGraph(
                base.union(tree.pat(child)), self.subtree_variables(tree, nodes)
            )
            table.extended[key] = extended
        return extended
