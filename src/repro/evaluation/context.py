"""The evaluation context: one bundle for cache, statistics and pool settings.

Before this module existed, every function in the evaluation layer threaded
``(statistics, cache)`` as optional positional arguments — and each of them
re-implemented the same "use the cache when there is one, fall back to the
direct computation otherwise" branching.  :class:`EvalContext` reifies that
environment:

* ``cache`` — an optional :class:`~repro.evaluation.cache.EvaluationCache`;
* ``statistics`` — an optional
  :class:`~repro.evaluation.wdeval.EvaluationStatistics` accumulator;
* ``processes`` / ``warm_on_fork`` / ``stream_chunk_size`` — the worker-pool
  settings of the batched entry points
  (:class:`~repro.evaluation.session.Session`).

The context also owns the cache-or-direct helpers (`mu_subtree`,
`children_of`, `extension_exists`, `pebble_winner`, `homomorphisms`,
`tree_solutions_list`, ...), so the algorithms in
:mod:`~repro.evaluation.wdeval` / :mod:`~repro.evaluation.pebble_eval`
contain the algorithm and nothing else, and the two code paths can never
drift apart.  A context is immutable; derive variants with
:meth:`with_statistics` / :meth:`with_cache`.

The old ``(statistics, cache)`` signatures survive as thin shims
(:meth:`EvalContext.of` builds the equivalent context), so existing callers
and the tier-1 tests keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

from .budget import Budget
from .cache import EvaluationCache
from ..hom.homomorphism import TargetIndex, all_homomorphisms, extends_into
from ..hom.tgraph import GeneralizedTGraph, TGraph
from ..patterns.tree import Subtree, WDPatternTree
from ..pebble.game import pebble_game_winner
from ..rdf.graph import RDFGraph
from ..sparql.mappings import Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .wdeval import EvaluationStatistics

__all__ = ["EvalContext"]


@dataclass(frozen=True)
class EvalContext:
    """Everything a wdEVAL algorithm needs besides the instance itself.

    Parameters
    ----------
    cache:
        Optional shared :class:`~repro.evaluation.cache.EvaluationCache`;
        when present the helpers below memoize through it, when absent they
        compute directly.  Answers are identical either way.
    statistics:
        Optional per-run counter accumulator; the ``note_*`` helpers are
        no-ops when it is ``None``.
    processes:
        Default worker-pool size for the batched entry points (``None`` or
        ``1`` = serial).
    warm_on_fork:
        Whether batched parallel runs warm the µ-independent cache state in
        the parent before forking workers (see
        :meth:`~repro.evaluation.session.Session.warm`).
    stream_chunk_size:
        Solutions per IPC message when parallel
        :meth:`~repro.evaluation.session.Session.solutions_iter` streams a
        cell's results across the process boundary.
    budget:
        Optional :class:`~repro.evaluation.budget.Budget` bounding the
        evaluation; the hot loops tick it through the cache-or-direct
        helpers below and raise
        :class:`~repro.exceptions.DeadlineExceeded` when it expires.
    faults:
        Test-only :class:`~repro.evaluation.faults.FaultPlan` hook; ``None``
        in production.  Installed by the fault-injection harness so crash
        paths can be driven deterministically (see
        :mod:`repro.evaluation.faults`).
    """

    cache: Optional[EvaluationCache] = None
    statistics: Optional["EvaluationStatistics"] = None
    processes: Optional[int] = None
    warm_on_fork: bool = True
    stream_chunk_size: int = 16
    budget: Optional[Budget] = None
    faults: Optional[object] = None

    # --- construction --------------------------------------------------------
    @classmethod
    def of(
        cls,
        statistics: Optional["EvaluationStatistics"] = None,
        cache: Optional[EvaluationCache] = None,
    ) -> "EvalContext":
        """The context equivalent to the legacy ``(statistics, cache)`` pair."""
        return cls(cache=cache, statistics=statistics)

    def with_statistics(self, statistics: Optional["EvaluationStatistics"]) -> "EvalContext":
        """This context with *statistics* swapped in (no-op when unchanged)."""
        if statistics is self.statistics:
            return self
        return replace(self, statistics=statistics)

    def with_cache(self, cache: Optional[EvaluationCache]) -> "EvalContext":
        """This context with *cache* swapped in (no-op when unchanged)."""
        if cache is self.cache:
            return self
        return replace(self, cache=cache)

    def with_budget(self, budget: Optional[Budget]) -> "EvalContext":
        """This context with *budget* swapped in (no-op when unchanged)."""
        if budget is self.budget:
            return self
        return replace(self, budget=budget)

    # --- budget helpers --------------------------------------------------------
    def tick(self, n: int = 1) -> None:
        """Amortized budget check (no-op without a budget); raises
        :class:`~repro.exceptions.DeadlineExceeded` when the budget expires."""
        if self.budget is not None:
            self.budget.tick(n)

    def check_budget(self) -> None:
        """Immediate budget check (no-op without a budget)."""
        if self.budget is not None:
            self.budget.check()

    # --- statistics helpers ---------------------------------------------------
    def note_tree_visited(self) -> None:
        if self.statistics is not None:
            self.statistics.trees_visited += 1

    def note_subtree_found(self) -> None:
        if self.statistics is not None:
            self.statistics.subtree_found += 1

    def note_child_check(self) -> None:
        if self.statistics is not None:
            self.statistics.child_checks += 1

    # --- cache-or-direct primitives --------------------------------------------
    def mu_subtree(self, tree: WDPatternTree, graph: RDFGraph, mu: Mapping) -> Optional[Subtree]:
        """The witness subtree ``T^µ`` (memoized through the cache if any)."""
        if self.cache is not None:
            return self.cache.mu_subtree(tree, graph, mu)
        from .wdeval import find_mu_subtree  # deferred: wdeval imports this module

        return find_mu_subtree(tree, graph, mu)

    def children_of(self, tree: WDPatternTree, subtree: Subtree) -> Tuple[int, ...]:
        """The children of *subtree* (shared per-tree table when cached)."""
        if self.cache is not None:
            return self.cache.subtree_children(tree, subtree.nodes)
        return subtree.children()

    def extension_exists(self, triples: TGraph, graph: RDFGraph, mu: Mapping) -> bool:
        """Lemma 1's child test: does *triples* extend into *graph* under µ?"""
        if self.cache is not None:
            return self.cache.extension_exists(triples, graph, mu, self.budget)
        return extends_into(triples, graph, mu, budget=self.budget) is not None

    def child_instances(
        self, tree: WDPatternTree, subtree: Subtree
    ) -> Iterator[Tuple[int, GeneralizedTGraph]]:
        """The per-child pebble instances ``(pat(T') ∪ pat(n), vars(T'))``.

        Yields ``(child, extended)`` pairs; with a cache both the child list
        and the extended instances come from the shared per-tree tables.
        """
        if self.cache is not None:
            for child in self.cache.subtree_children(tree, subtree.nodes):
                yield child, self.cache.extended_child_graph(tree, subtree.nodes, child)
            return
        base = subtree.pat()
        distinguished = subtree.variables()
        for child in subtree.children():
            yield child, GeneralizedTGraph(base.union(tree.pat(child)), distinguished)

    def pebble_winner(
        self, extended: GeneralizedTGraph, graph: RDFGraph, mu: Mapping, pebbles: int
    ) -> bool:
        """The existential *pebbles*-pebble game verdict (kernel-shared when
        cached)."""
        if self.cache is not None:
            return self.cache.pebble_winner(extended, graph, mu, pebbles, self.budget)
        return pebble_game_winner(extended, graph, mu, pebbles, budget=self.budget)

    def target_index(self, graph: RDFGraph) -> Optional[TargetIndex]:
        """The shared triple index of *graph*, or ``None`` without a cache."""
        if self.cache is not None:
            return self.cache.target_index(graph)
        return None

    def tree_solutions_list(
        self, tree: WDPatternTree, graph: RDFGraph
    ) -> Optional[Tuple[Mapping, ...]]:
        """The recorded complete answer list ``⟦T⟧G``, or ``None`` when no
        cache is attached or no completed enumeration was recorded yet."""
        if self.cache is None:
            return None
        return self.cache.tree_solution_list(tree, graph)

    def record_tree_solutions(
        self, tree: WDPatternTree, graph: RDFGraph, solutions: Iterable[Mapping]
    ) -> None:
        """Record a **complete** enumeration of ``⟦T⟧G`` (no-op uncached)."""
        if self.cache is not None:
            self.cache.store_tree_solution_list(tree, graph, solutions)

    def homomorphisms(self, source: TGraph, graph: RDFGraph) -> Iterator[dict]:
        """All homomorphisms from *source* into *graph* (always lazy).

        With a cache the indexed search records its complete answer list per
        graph version on exhaustion
        (:meth:`EvaluationCache.homomorphisms_stream
        <repro.evaluation.cache.EvaluationCache.homomorphisms_stream>`) —
        the search runs at most once and later enumerations (including
        forked workers that inherit the cache) replay it from memory, while
        the first results of a fresh search arrive as cheaply as the direct
        generator.
        """
        if self.cache is not None:
            return self.cache.homomorphisms_stream(source, graph, self.budget)
        return all_homomorphisms(source, graph, budget=self.budget)
