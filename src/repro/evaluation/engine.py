"""A unified evaluation facade.

:class:`Engine` wraps a well-designed graph pattern (or a pre-built forest)
and exposes the three evaluation strategies side by side:

* ``method="naive"`` — the compositional Pérez et al. semantics (reference);
* ``method="natural"`` — the wdPF algorithm with exact homomorphism tests
  (the coNP baseline);
* ``method="pebble"`` — the Theorem 1 algorithm (polynomial; exact when the
  supplied width bound dominates the pattern's domination width);
* ``method="auto"`` — pebble with a certified width bound when one was given
  or can be computed cheaply, otherwise the natural algorithm.

Method resolution lives in exactly one place: the engine's
:class:`~repro.evaluation.plan.Planner`.  :meth:`contains`,
:meth:`resolve_method` and the batched entry points all delegate to it, and
:meth:`plan` / :meth:`explain` expose the resolved
:class:`~repro.evaluation.plan.Plan` — including *why* the pebble strategy
was (not) chosen.

The engine also enumerates complete answer sets and exposes the pattern's
width measures, which is what the examples and the experiment harness use.
For many patterns / many graphs behind one shared cache, see
:class:`~repro.evaluation.session.Session`.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set

from .budget import Budget, budget_from
from .cache import EvaluationCache
from .context import EvalContext
from .plan import Plan, Planner, PatternStats
from .wdeval import EvaluationStatistics
from ..patterns.build import pattern_of_forest, wdpf
from ..patterns.forest import WDPatternForest
from ..rdf.graph import RDFGraph
from ..sparql.algebra import GraphPattern
from ..sparql.mappings import Mapping
from ..exceptions import DeadlineExceeded, EvaluationError

__all__ = ["Engine"]


def _restore_engine(
    pattern: GraphPattern,
    forest: WDPatternForest,
    width_bound: Optional[int],
    domination_width: Optional[int],
) -> "Engine":
    """Unpickling helper: rebuild an engine (and its planner wiring)."""
    engine = Engine(pattern, forest, width_bound)
    engine._domination_width = domination_width
    return engine


class Engine:
    """Evaluation engine for a single well-designed graph pattern.

    Parameters
    ----------
    pattern:
        A well-designed :class:`~repro.sparql.algebra.GraphPattern`, or
        ``None`` when *forest* is given directly.
    forest:
        An already-built :class:`~repro.patterns.forest.WDPatternForest`
        (for example one of the paper's tree-defined families).
    width_bound:
        An upper bound on the domination width of the pattern.  When given,
        ``method="pebble"``/``"auto"`` runs the existential
        ``(width_bound+1)``-pebble game and is exact if the bound holds.
    cache:
        An optional :class:`~repro.evaluation.cache.EvaluationCache`.  When
        given, the natural and pebble membership paths memoize homomorphism
        tests, pebble-game verdicts and witness-subtree lookups per graph
        version.  One cache may be shared between many engines; results are
        identical with and without it.
    """

    def __init__(
        self,
        pattern: Optional[GraphPattern] = None,
        forest: Optional[WDPatternForest] = None,
        width_bound: Optional[int] = None,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        if pattern is None and forest is None:
            raise EvaluationError("Engine requires a pattern or a forest")
        if forest is None:
            forest = wdpf(pattern)
        if pattern is None:
            pattern = pattern_of_forest(forest)
        self._pattern = pattern
        self._forest = forest
        self._width_bound = width_bound
        self._domination_width: Optional[int] = None
        self._pattern_stats: Optional[PatternStats] = None
        self._planner = Planner(
            width_bound=width_bound,
            known_width=lambda: self._domination_width,
            width_oracle=self.domination_width,
            pattern_stats=self.pattern_stats,
        )
        self._context = EvalContext(cache=cache)

    def __reduce__(self):
        # The planner closes over `self` (not picklable); rebuild it on load.
        # The cache is deliberately dropped: it is process-local performance
        # state (kernels hold graph weakrefs, stores are keyed on id(graph))
        # — a shipped engine starts cold and attaches its own cache.
        return (
            _restore_engine,
            (self._pattern, self._forest, self._width_bound, self._domination_width),
        )

    # --- introspection -----------------------------------------------------------
    @property
    def pattern(self) -> GraphPattern:
        """The graph pattern being evaluated."""
        return self._pattern

    @property
    def forest(self) -> WDPatternForest:
        """The wdPF representation used by the structural algorithms."""
        return self._forest

    @property
    def width_bound(self) -> Optional[int]:
        """The width bound supplied at construction (if any)."""
        return self._width_bound

    @property
    def cache(self) -> Optional[EvaluationCache]:
        """The evaluation cache attached to this engine (if any)."""
        return self._context.cache

    @property
    def planner(self) -> Planner:
        """The planner resolving ``method=`` arguments for this engine."""
        return self._planner

    def pattern_stats(self) -> PatternStats:
        """Cheap structural statistics of the pattern (computed once).

        These feed the planner's :class:`~repro.evaluation.plan.CostModel`
        whenever a plan is resolved for a concrete graph.
        """
        if self._pattern_stats is None:
            self._pattern_stats = PatternStats.of(self._forest)
        return self._pattern_stats

    def domination_width(self) -> int:
        """The (computed and cached) domination width of the pattern.

        This is expensive; it is computed lazily and only when requested or
        when ``method="pebble"`` needs a bound and none was supplied.  Once
        computed, ``method="auto"`` upgrades to the pebble strategy with
        this certified bound.
        """
        if self._domination_width is None:
            from ..width.domination import domination_width

            self._domination_width = domination_width(self._forest)
        return self._domination_width

    # --- planning ----------------------------------------------------------------------
    def plan(
        self,
        method: str = "auto",
        width: Optional[int] = None,
        graph: Optional[RDFGraph] = None,
    ) -> Plan:
        """The :class:`~repro.evaluation.plan.Plan` that :meth:`contains`
        would execute for ``(method, width)``.

        With a *graph* the plan is resolved **per cell**: it carries the
        planner's :class:`~repro.evaluation.plan.CostEstimate` and ``auto``
        picks the cheapest admissible strategy for that graph (this is what
        :meth:`contains` does).  Without one the graph-free rules apply.
        Plans are memoized, so repeated calls return the same frozen object.
        """
        return self._planner.plan(method, width, graph=graph)

    def explain(
        self,
        method: str = "auto",
        width: Optional[int] = None,
        graph: Optional[RDFGraph] = None,
    ) -> str:
        """Human-readable account of the strategy choice (see :meth:`plan`);
        with a *graph* the account includes the per-cell cost estimate."""
        return self.plan(method, width, graph=graph).explain()

    def resolve_method(
        self, method: str = "auto", width: Optional[int] = None,
        graph: Optional[RDFGraph] = None,
    ) -> tuple[str, Optional[int]]:
        """The concrete ``(method, width)`` a call with these arguments runs.

        A compatibility projection of :meth:`plan` — the planner is the
        single home of the resolution logic.  Like :meth:`plan` it resolves
        graph-free by default; pass the *graph* to see the cost-aware
        decision :meth:`contains` executes for that graph (the two can
        differ for ``method="auto"``, since the cost model picks per cell).
        """
        plan = self._planner.plan(method, width, graph=graph)
        return plan.strategy, plan.width

    # --- membership --------------------------------------------------------------------
    def contains(
        self,
        graph: RDFGraph,
        mu: Mapping,
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> bool:
        """Decide ``µ ∈ ⟦P⟧G``.

        ``width`` overrides the engine's width bound for the pebble method.
        ``method="auto"`` resolves through the cost model for *graph* (the
        resolved plan is memoized, so tight loops over one graph pay the
        planning cost once).  ``deadline`` (seconds) or an explicit
        ``budget`` bounds the check; a violation raises
        :class:`~repro.exceptions.DeadlineExceeded` carrying the statistics
        snapshot accumulated so far.
        """
        plan = self._planner.plan(method, width, graph=graph)
        context = self._context.with_statistics(statistics).with_budget(
            budget_from(deadline, budget)
        )
        try:
            # Up-front check: a pre-expired budget must trip even when the
            # instance is small enough to finish between amortized ticks.
            context.check_budget()
            return plan.strategy_obj.contains(
                self._pattern, self._forest, graph, mu, plan, context
            )
        except DeadlineExceeded as exc:
            if statistics is not None:
                statistics.deadline_trips += 1
                if exc.statistics is None:
                    exc.statistics = statistics
            raise

    def contains_all_methods(
        self,
        graph: RDFGraph,
        mu: Mapping,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> Dict[str, bool]:
        """Run every method on the same instance (used in tests/diagnostics).

        A supplied *statistics* object accumulates the counters of the
        natural and pebble runs, exactly as it would over two
        :meth:`contains` calls (the naive method reports no statistics).
        """
        return {
            "naive": self.contains(graph, mu, method="naive"),
            "natural": self.contains(graph, mu, method="natural", statistics=statistics),
            "pebble": self.contains(graph, mu, method="pebble", statistics=statistics),
        }

    # --- enumeration -------------------------------------------------------------------------
    def solutions(
        self,
        graph: RDFGraph,
        method: str = "natural",
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> Set[Mapping]:
        """Enumerate the full answer set ``⟦P⟧G``.

        ``method="auto"`` cost-picks between the naive and natural strategies
        for this graph (the pebble relaxation decides membership only and is
        rejected).  A violated ``deadline``/``budget`` raises
        :class:`~repro.exceptions.DeadlineExceeded` whose ``partial``
        attribute holds the solutions found before the trip.
        """
        partial: Set[Mapping] = set()
        try:
            partial.update(self.solutions_stream(graph, method, deadline, budget))
        except DeadlineExceeded as exc:
            if not exc.partial:
                exc.partial = tuple(partial)
            raise
        return partial

    def solutions_stream(
        self,
        graph: RDFGraph,
        method: str = "natural",
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> Iterator[Mapping]:
        """Stream ``⟦P⟧G`` as a deduplicated generator (same methods as
        :meth:`solutions`; ``method="auto"`` cost-picks naive vs natural for
        this graph).  A violated ``deadline``/``budget`` raises
        :class:`~repro.exceptions.DeadlineExceeded` mid-stream."""
        plan = self._planner.plan_enumeration(method, graph=graph)
        context = self._context.with_budget(budget_from(deadline, budget))
        context.check_budget()  # pre-expired budgets trip before streaming
        return plan.strategy_obj.solutions_stream(
            self._pattern, self._forest, graph, context
        )
