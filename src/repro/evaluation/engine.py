"""A unified evaluation facade.

:class:`Engine` wraps a well-designed graph pattern (or a pre-built forest)
and exposes the three evaluation strategies side by side:

* ``method="naive"`` — the compositional Pérez et al. semantics (reference);
* ``method="natural"`` — the wdPF algorithm with exact homomorphism tests
  (the coNP baseline);
* ``method="pebble"`` — the Theorem 1 algorithm (polynomial; exact when the
  supplied width bound dominates the pattern's domination width);
* ``method="auto"`` — pebble with a certified width bound when one was given
  or can be computed cheaply, otherwise the natural algorithm.

The engine also enumerates complete answer sets and exposes the pattern's
width measures, which is what the examples and the experiment harness use.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from .cache import EvaluationCache
from .naive import evaluate_pattern, pattern_contains
from .pebble_eval import forest_contains_pebble
from .wdeval import EvaluationStatistics, forest_contains, forest_solutions
from ..patterns.build import pattern_of_forest, wdpf
from ..patterns.forest import WDPatternForest
from ..rdf.graph import RDFGraph
from ..sparql.algebra import GraphPattern
from ..sparql.mappings import Mapping
from ..exceptions import EvaluationError

__all__ = ["Engine"]

_METHODS = ("auto", "naive", "natural", "pebble")


class Engine:
    """Evaluation engine for a single well-designed graph pattern.

    Parameters
    ----------
    pattern:
        A well-designed :class:`~repro.sparql.algebra.GraphPattern`, or
        ``None`` when *forest* is given directly.
    forest:
        An already-built :class:`~repro.patterns.forest.WDPatternForest`
        (for example one of the paper's tree-defined families).
    width_bound:
        An upper bound on the domination width of the pattern.  When given,
        ``method="pebble"``/``"auto"`` runs the existential
        ``(width_bound+1)``-pebble game and is exact.
    cache:
        An optional :class:`~repro.evaluation.cache.EvaluationCache`.  When
        given, the natural and pebble membership paths memoize homomorphism
        tests, pebble-game verdicts and witness-subtree lookups per graph
        version.  One cache may be shared between many engines; results are
        identical with and without it.
    """

    def __init__(
        self,
        pattern: Optional[GraphPattern] = None,
        forest: Optional[WDPatternForest] = None,
        width_bound: Optional[int] = None,
        cache: Optional[EvaluationCache] = None,
    ) -> None:
        if pattern is None and forest is None:
            raise EvaluationError("Engine requires a pattern or a forest")
        if forest is None:
            forest = wdpf(pattern)
        if pattern is None:
            pattern = pattern_of_forest(forest)
        if width_bound is not None and width_bound < 1:
            raise EvaluationError("width_bound must be at least 1")
        self._pattern = pattern
        self._forest = forest
        self._width_bound = width_bound
        self._cache = cache
        self._domination_width: Optional[int] = None

    # --- introspection -----------------------------------------------------------
    @property
    def pattern(self) -> GraphPattern:
        """The graph pattern being evaluated."""
        return self._pattern

    @property
    def forest(self) -> WDPatternForest:
        """The wdPF representation used by the structural algorithms."""
        return self._forest

    @property
    def width_bound(self) -> Optional[int]:
        """The width bound supplied at construction (if any)."""
        return self._width_bound

    @property
    def cache(self) -> Optional[EvaluationCache]:
        """The evaluation cache attached to this engine (if any)."""
        return self._cache

    def domination_width(self) -> int:
        """The (computed and cached) domination width of the pattern.

        This is expensive; it is computed lazily and only when requested or
        when ``method="auto"`` needs a certified bound and none was supplied.
        """
        if self._domination_width is None:
            from ..width.domination import domination_width

            self._domination_width = domination_width(self._forest)
        return self._domination_width

    # --- membership --------------------------------------------------------------------
    def contains(
        self,
        graph: RDFGraph,
        mu: Mapping,
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> bool:
        """Decide ``µ ∈ ⟦P⟧G``.

        ``width`` overrides the engine's width bound for the pebble method.
        """
        if method not in _METHODS:
            raise EvaluationError(f"unknown method {method!r}; expected one of {_METHODS}")
        if method == "naive":
            return pattern_contains(self._pattern, graph, mu)
        if method == "natural":
            return forest_contains(self._forest, graph, mu, statistics, self._cache)
        if method == "pebble":
            bound = width if width is not None else self._width_bound
            if bound is None:
                bound = self.domination_width()
            return forest_contains_pebble(self._forest, graph, mu, bound, statistics, self._cache)
        # auto: prefer the pebble algorithm when a certified bound is cheap to
        # obtain, otherwise fall back to the exact natural algorithm.
        bound = width if width is not None else self._width_bound
        if bound is not None or self._domination_width is not None:
            bound = bound if bound is not None else self._domination_width
            return forest_contains_pebble(self._forest, graph, mu, bound, statistics, self._cache)
        return forest_contains(self._forest, graph, mu, statistics, self._cache)

    def resolve_method(self, method: str = "auto", width: Optional[int] = None) -> tuple[str, Optional[int]]:
        """The concrete ``(method, width)`` that :meth:`contains` would run.

        Resolves ``"auto"`` exactly like :meth:`contains` does (without
        computing the domination width when no bound is known); the batch
        engine uses this to fix the strategy once for a whole instance set.
        """
        if method not in _METHODS:
            raise EvaluationError(f"unknown method {method!r}; expected one of {_METHODS}")
        if method in ("naive", "natural"):
            return method, None
        bound = width if width is not None else self._width_bound
        if bound is None:
            bound = self._domination_width
        if method == "pebble":
            if bound is None:
                bound = self.domination_width()
            return "pebble", bound
        return ("pebble", bound) if bound is not None else ("natural", None)

    def contains_all_methods(
        self,
        graph: RDFGraph,
        mu: Mapping,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> Dict[str, bool]:
        """Run every method on the same instance (used in tests/diagnostics).

        A supplied *statistics* object accumulates the counters of the
        natural and pebble runs, exactly as it would over two
        :meth:`contains` calls (the naive method reports no statistics).
        """
        return {
            "naive": self.contains(graph, mu, method="naive"),
            "natural": self.contains(graph, mu, method="natural", statistics=statistics),
            "pebble": self.contains(graph, mu, method="pebble", statistics=statistics),
        }

    # --- enumeration -------------------------------------------------------------------------
    def solutions(self, graph: RDFGraph, method: str = "natural") -> Set[Mapping]:
        """Enumerate the full answer set ``⟦P⟧G``."""
        if method == "naive":
            return evaluate_pattern(self._pattern, graph)
        if method == "natural":
            return forest_solutions(self._forest, graph)
        raise EvaluationError("solutions() supports the 'naive' and 'natural' methods")
