"""Evaluation of the extended fragment (FILTER and SELECT).

The compositional semantics of Pérez et al. extends to the two operators in
the obvious way:

* ``⟦P FILTER R⟧G = {µ ∈ ⟦P⟧G | µ ⊨ R}``;
* ``⟦SELECT W WHERE P⟧G = {µ|_W | µ ∈ ⟦P⟧G}``.

This evaluator is the reference semantics for the extended fragment; the
structural engines of the paper (pattern forests, the pebble algorithm) stay
restricted to the AND/OPT/UNION core — Section 5 of the paper explains that
no analogue of the Theorem 3 dichotomy can exist once FILTER or SELECT are
added, which is exactly why the split is kept explicit in the code base.
"""

from __future__ import annotations

from typing import Set

from .naive import evaluate_pattern
from ..rdf.graph import RDFGraph
from ..sparql.algebra import And, GraphPattern, Opt, TriplePatternNode, Union
from ..sparql.extended import Filter, Select
from ..sparql.mappings import Mapping, join_sets, left_outer_join_sets, union_sets
from ..exceptions import EvaluationError

__all__ = ["evaluate_extended", "extended_pattern_contains"]


def evaluate_extended(pattern: GraphPattern, graph: RDFGraph) -> Set[Mapping]:
    """``⟦P⟧G`` for patterns that may use FILTER and (top-level) SELECT."""
    if isinstance(pattern, Select):
        inner = evaluate_extended(pattern.pattern, graph)
        return {mu.restrict(pattern.projection) for mu in inner}
    if isinstance(pattern, Filter):
        inner = evaluate_extended(pattern.pattern, graph)
        return {mu for mu in inner if pattern.condition.evaluate(mu)}
    if isinstance(pattern, TriplePatternNode):
        return evaluate_pattern(pattern, graph)
    if isinstance(pattern, And):
        return join_sets(evaluate_extended(pattern.left, graph), evaluate_extended(pattern.right, graph))
    if isinstance(pattern, Opt):
        return left_outer_join_sets(
            evaluate_extended(pattern.left, graph), evaluate_extended(pattern.right, graph)
        )
    if isinstance(pattern, Union):
        return union_sets(
            evaluate_extended(pattern.left, graph), evaluate_extended(pattern.right, graph)
        )
    raise EvaluationError(f"unsupported pattern node {type(pattern).__name__}")


def extended_pattern_contains(pattern: GraphPattern, graph: RDFGraph, mu: Mapping) -> bool:
    """``µ ∈ ⟦P⟧G`` for the extended fragment (by materialisation)."""
    return mu in evaluate_extended(pattern, graph)
