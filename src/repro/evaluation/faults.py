"""Deterministic fault injection for the evaluation pool paths.

A :class:`FaultPlan` describes, by **task position**, real faults to inject
into a parallel evaluation: SIGKILL the worker that picks up a given task,
stall the streaming result queue, raise inside a strategy hook, ship a
stale or corrupted :class:`~repro.evaluation.cache.CacheDelta`, mutate the
worker's graph copy mid-run, or swallow a streaming cell's terminal event.
The faults are *real* — an injected kill is ``os.kill(os.getpid(),
SIGKILL)`` inside the worker, a stall is a real ``time.sleep`` holding the
bounded IPC queue open — so the recovery paths in
:mod:`~repro.evaluation.session` are exercised exactly as a production
crash would exercise them, not through mocks.

A plan is installed through the test-only ``Session(faults=...)`` hook and
travels to the workers inside the pool initializer arguments.  Positions
make plans deterministic: task ``position`` is the submission index of the
chunk / mapping / cell, fixed by the caller's input order.

Once-guards (``kill_once=True`` et al.) are shared
:class:`multiprocessing.Value` flags **armed in the parent before the pool
is created**, so "kill the first worker that picks up cell 2, let the
retry succeed" is expressible — and with ``kill_once=False`` every retry
dies too, which is how the serial-degradation ladder is tested.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Optional

from .cache import CacheDelta
from ..exceptions import EvaluationError

__all__ = ["FaultPlan", "FaultInjected"]


class FaultInjected(EvaluationError):
    """The exception a ``raise_at`` fault plan raises inside a worker."""


class _OnceGuard:
    """A fire-at-most-once latch, optionally shared across processes.

    Before :meth:`arm` it is process-local (serial paths, direct tests);
    after arming with a multiprocessing context it is a shared ``Value``
    that forked/spawned workers inherit through the pool initargs, so the
    *first* worker reaching the fault point fires and every later one —
    including the retry of the killed task — passes through.
    """

    def __init__(self, enabled: bool) -> None:
        self._enabled = enabled
        self._local_fired = False
        self._shared = None

    def arm(self, ctx) -> None:
        if self._enabled and self._shared is None:
            self._shared = ctx.Value("i", 0)

    def take(self) -> bool:
        """True exactly once when enabled; always True when disabled."""
        if not self._enabled:
            return True
        if self._shared is not None:
            with self._shared.get_lock():
                if self._shared.value:
                    return False
                self._shared.value = 1
                return True
        if self._local_fired:
            return False
        self._local_fired = True
        return True

    def __getstate__(self):
        return {"enabled": self._enabled, "fired": self._local_fired, "shared": self._shared}

    def __setstate__(self, state) -> None:
        self._enabled = state["enabled"]
        self._local_fired = state["fired"]
        self._shared = state["shared"]


class FaultPlan:
    """A deterministic, picklable schedule of injected faults.

    Parameters
    ----------
    kill_at:
        SIGKILL the worker the moment it picks up the task at this
        position.  With ``kill_once=True`` (default) only the first pickup
        dies — the retried task succeeds on a fresh worker; with ``False``
        every retry dies too, forcing the serial-degradation path.
    stall_at / stall_seconds:
        The worker picking up this task sleeps *stall_seconds* before
        evaluating — a real streaming-queue stall (``stall_once`` bounds it
        to the first pickup).
    raise_at:
        The worker picking up this task raises :class:`FaultInjected`
        (inside the strategy hook, after any kill/stall checks).
    stale_delta:
        Every exported :class:`~repro.evaluation.cache.CacheDelta` has its
        version stamps perturbed, so the parent's
        :meth:`~repro.evaluation.cache.EvaluationCache.absorb` must drop
        every entry as stale.
    corrupt_delta:
        Every exported delta gets structurally mangled entries (unknown
        kinds, wrong shapes); ``absorb`` must skip them without raising.
    mutate_graph_at:
        The worker picking up this task mutates its graph copy (an add
        immediately undone by a discard — answers unchanged, but the
        version counter moves), so the export path must withhold the
        version stamp and the parent must drop the delta.
    drop_done_at:
        A streaming worker enumerates this cell normally but swallows its
        terminal ``done`` event — the silent-loss case the consumer-side
        terminal-event accounting must catch.
    """

    def __init__(
        self,
        kill_at: Optional[int] = None,
        kill_once: bool = True,
        stall_at: Optional[int] = None,
        stall_seconds: float = 1.0,
        stall_once: bool = True,
        raise_at: Optional[int] = None,
        stale_delta: bool = False,
        corrupt_delta: bool = False,
        mutate_graph_at: Optional[int] = None,
        drop_done_at: Optional[int] = None,
    ) -> None:
        self.kill_at = kill_at
        self.stall_at = stall_at
        self.stall_seconds = stall_seconds
        self.raise_at = raise_at
        self.stale_delta = stale_delta
        self.corrupt_delta = corrupt_delta
        self.mutate_graph_at = mutate_graph_at
        self.drop_done_at = drop_done_at
        self._kill_guard = _OnceGuard(kill_once)
        self._stall_guard = _OnceGuard(stall_once)
        self._mutate_guard = _OnceGuard(True)
        self._drop_guard = _OnceGuard(True)

    # --- parent side -------------------------------------------------------
    def arm(self, ctx) -> "FaultPlan":
        """Create the cross-process once-guards (call before pool creation).

        Idempotent; *ctx* is the multiprocessing context the pool will use.
        The shared flags ride to the workers inside the plan itself (pool
        initargs), so fork and spawn start methods both see them.
        """
        self._kill_guard.arm(ctx)
        self._stall_guard.arm(ctx)
        self._mutate_guard.arm(ctx)
        self._drop_guard.arm(ctx)
        return self

    # --- worker side -------------------------------------------------------
    def fire(self, position: int, graph=None) -> None:
        """Trigger whatever faults this plan schedules at *position*.

        Called by the worker task functions the moment they pick up a task.
        Ordering: stall, then graph mutation, then raise, then kill — so a
        plan can combine a stall with a later kill at another position.
        """
        if self.stall_at is not None and position == self.stall_at:
            if self._stall_guard.take():
                time.sleep(self.stall_seconds)
        if self.mutate_graph_at is not None and position == self.mutate_graph_at:
            if graph is not None and self._mutate_guard.take():
                self._mutate(graph)
        if self.raise_at is not None and position == self.raise_at:
            raise FaultInjected(f"injected worker fault at position {position}")
        if self.kill_at is not None and position == self.kill_at:
            if self._kill_guard.take():
                os.kill(os.getpid(), signal.SIGKILL)

    @staticmethod
    def _mutate(graph) -> None:
        """Bump the graph's version without changing its triples."""
        from ..rdf.triples import Triple

        probe = Triple.of(
            "urn:repro:fault-probe", "urn:repro:fault-probe", "urn:repro:fault-probe"
        )
        present = probe in graph
        if present:  # pragma: no cover - probe IRI never occurs in real data
            graph.discard(probe)
            graph.add(probe)
        else:
            graph.add(probe)
            graph.discard(probe)

    def drop_done(self, position: int) -> bool:
        """Whether the streaming worker should swallow this cell's ``done``."""
        return (
            self.drop_done_at is not None
            and position == self.drop_done_at
            and self._drop_guard.take()
        )

    def tamper_delta(self, delta: Optional[CacheDelta]) -> Optional[CacheDelta]:
        """Apply the delta corruptions this plan schedules (export path)."""
        if delta is None:
            return None
        if self.stale_delta:
            delta = CacheDelta(
                versions={
                    slot: (None if version is None else version + 1)
                    for slot, version in delta.versions.items()
                },
                entries=delta.entries,
            )
        if self.corrupt_delta:
            mangled = []
            for index, entry in enumerate(delta.entries):
                if index % 2 == 0:
                    mangled.append((entry[0], "no-such-kind", entry[2], entry[3], entry[4]))
                else:
                    mangled.append(("garbage",))  # wrong arity and slot type
            delta = CacheDelta(versions=delta.versions, entries=mangled)
        return delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for name in (
            "kill_at",
            "stall_at",
            "raise_at",
            "mutate_graph_at",
            "drop_done_at",
        ):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        for name in ("stale_delta", "corrupt_delta"):
            if getattr(self, name):
                parts.append(name)
        return f"FaultPlan({', '.join(parts)})"
