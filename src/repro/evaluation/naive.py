"""Naive compositional evaluation of AND/OPT/UNION graph patterns.

This evaluator implements the Pérez et al. semantics literally (Section 2 of
the paper): ``⟦·⟧G`` is computed bottom-up with joins, left-outer joins and
unions of mapping sets.  It is exponential in the worst case but it is the
*reference semantics* every other engine in the library is tested against.
"""

from __future__ import annotations

from typing import Set

from ..rdf.graph import RDFGraph
from ..sparql.algebra import And, GraphPattern, Opt, TriplePatternNode, Union
from ..sparql.mappings import Mapping, join_sets, left_outer_join_sets, union_sets
from ..exceptions import EvaluationError

__all__ = ["evaluate_pattern", "pattern_contains"]


def evaluate_pattern(pattern: GraphPattern, graph: RDFGraph, budget=None) -> Set[Mapping]:
    """``⟦P⟧G`` — the full set of solution mappings of a graph pattern.

    *budget* (any object with an amortized ``tick(n)``) is ticked once per
    node plus once per mapping materialised at that node, bounding the
    exponential blow-up of the reference semantics.

    >>> from ..sparql import parse_pattern
    >>> from ..rdf import RDFGraph, Triple
    >>> g = RDFGraph([Triple.of("a", "p", "b")])
    >>> len(evaluate_pattern(parse_pattern("(?x p ?y)"), g))
    1
    """
    if isinstance(pattern, TriplePatternNode):
        result = {Mapping(binding) for binding in graph.solutions(pattern.triple_pattern)}
    elif isinstance(pattern, And):
        result = join_sets(
            evaluate_pattern(pattern.left, graph, budget),
            evaluate_pattern(pattern.right, graph, budget),
        )
    elif isinstance(pattern, Opt):
        result = left_outer_join_sets(
            evaluate_pattern(pattern.left, graph, budget),
            evaluate_pattern(pattern.right, graph, budget),
        )
    elif isinstance(pattern, Union):
        result = union_sets(
            evaluate_pattern(pattern.left, graph, budget),
            evaluate_pattern(pattern.right, graph, budget),
        )
    else:
        raise EvaluationError(f"unsupported pattern node {type(pattern).__name__}")
    if budget is not None:
        budget.tick(1 + len(result))
    return result


def pattern_contains(
    pattern: GraphPattern, graph: RDFGraph, mu: Mapping, budget=None
) -> bool:
    """``µ ∈ ⟦P⟧G`` decided by materialising the whole answer set.

    Only suitable for small instances; it is the ground truth used by the
    tests to validate the wdPF-based engines.
    """
    return mu in evaluate_pattern(pattern, graph, budget)
