"""The polynomial-time evaluation algorithm of Theorem 1.

The algorithm is the natural wdPF evaluation algorithm with the NP-hard
extension test replaced by the existential ``(k+1)``-pebble game: for every
tree ``Ti`` with a witness subtree ``T^µ_i`` it checks, for every child
``n``, whether

    ``(pat(T^µ_i) ∪ pat(n), vars(T^µ_i)) →µ_{k+1} G``

and accepts as soon as some tree has *no* such child.  The algorithm is

* always **sound**: if it accepts then ``µ ∈ ⟦F⟧G`` (because ``→µ`` implies
  ``→µ_{k+1}``);
* **complete** whenever ``dw(F) ≤ k`` (the main content of Theorem 1).

On classes of bounded domination width it therefore decides ``wdEVAL`` in
polynomial time; on other inputs its answer may be a false negative, which
:class:`~repro.evaluation.engine.Engine` reports as such.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .wdeval import EvaluationStatistics, find_mu_subtree
from ..hom.tgraph import GeneralizedTGraph
from ..patterns.forest import WDPatternForest
from ..patterns.tree import WDPatternTree
from ..pebble.game import pebble_game_winner
from ..rdf.graph import RDFGraph
from ..sparql.mappings import Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .cache import EvaluationCache

__all__ = ["tree_contains_pebble", "forest_contains_pebble"]


def tree_contains_pebble(
    tree: WDPatternTree,
    graph: RDFGraph,
    mu: Mapping,
    k: int,
    statistics: Optional[EvaluationStatistics] = None,
    cache: Optional["EvaluationCache"] = None,
) -> bool:
    """The per-tree acceptance test of the Theorem 1 algorithm.

    Returns ``True`` when the witness subtree exists and no child passes the
    ``(k+1)``-pebble extension test.  Sound for every input; complete when
    ``dw ≤ k``.

    With a *cache*, the witness-subtree lookup, the per-child instance
    construction and the pebble-game verdicts are memoized per graph version,
    and each child instance is answered through a shared
    :class:`~repro.pebble.kernel.ConsistencyKernel` — the µ-independent part
    of the pebble game is built once per ``(subtree, child)`` instead of once
    per mapping (identical answers, see :mod:`repro.evaluation.cache`).
    """
    if cache is not None:
        subtree = cache.mu_subtree(tree, graph, mu)
    else:
        subtree = find_mu_subtree(tree, graph, mu)
    if subtree is None:
        return False
    if statistics is not None:
        statistics.subtree_found += 1
    if cache is not None:
        for child in cache.subtree_children(tree, subtree.nodes):
            if statistics is not None:
                statistics.child_checks += 1
            extended = cache.extended_child_graph(tree, subtree.nodes, child)
            if cache.pebble_winner(extended, graph, mu, k + 1):
                return False
        return True
    base = subtree.pat()
    distinguished = subtree.variables()
    for child in subtree.children():
        if statistics is not None:
            statistics.child_checks += 1
        extended = GeneralizedTGraph(base.union(tree.pat(child)), distinguished)
        if pebble_game_winner(extended, graph, mu, k + 1):
            return False
    return True


def forest_contains_pebble(
    forest: WDPatternForest,
    graph: RDFGraph,
    mu: Mapping,
    k: int,
    statistics: Optional[EvaluationStatistics] = None,
    cache: Optional["EvaluationCache"] = None,
) -> bool:
    """The Theorem 1 algorithm on a forest: accept iff some tree accepts.

    ``k`` should be (an upper bound on) the domination width of the forest;
    the algorithm runs the existential ``(k+1)``-pebble game.
    """
    if k < 1:
        raise ValueError("the width parameter k must be at least 1")
    for tree in forest:
        if statistics is not None:
            statistics.trees_visited += 1
        if tree_contains_pebble(tree, graph, mu, k, statistics, cache):
            return True
    return False
