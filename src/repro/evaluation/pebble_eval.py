"""The polynomial-time evaluation algorithm of Theorem 1.

The algorithm is the natural wdPF evaluation algorithm with the NP-hard
extension test replaced by the existential ``(k+1)``-pebble game: for every
tree ``Ti`` with a witness subtree ``T^µ_i`` it checks, for every child
``n``, whether

    ``(pat(T^µ_i) ∪ pat(n), vars(T^µ_i)) →µ_{k+1} G``

and accepts as soon as some tree has *no* such child.  The algorithm is

* always **sound**: if it accepts then ``µ ∈ ⟦F⟧G`` (because ``→µ`` implies
  ``→µ_{k+1}``);
* **complete** whenever ``dw(F) ≤ k`` (the main content of Theorem 1).

On classes of bounded domination width it therefore decides ``wdEVAL`` in
polynomial time; on other inputs its answer may be a false negative, which
:class:`~repro.evaluation.engine.Engine` reports as such.

The canonical implementations (the ``*_ctx`` functions) take an
:class:`~repro.evaluation.context.EvalContext`; the historical
``(statistics, cache)`` signatures are kept as thin shims.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .context import EvalContext
from .wdeval import EvaluationStatistics
from ..patterns.forest import WDPatternForest
from ..patterns.tree import WDPatternTree
from ..rdf.graph import RDFGraph
from ..sparql.mappings import Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .cache import EvaluationCache

__all__ = [
    "tree_contains_pebble",
    "tree_contains_pebble_ctx",
    "forest_contains_pebble",
    "forest_contains_pebble_ctx",
]


def tree_contains_pebble_ctx(
    tree: WDPatternTree, graph: RDFGraph, mu: Mapping, k: int, context: EvalContext
) -> bool:
    """The per-tree acceptance test of the Theorem 1 algorithm.

    Returns ``True`` when the witness subtree exists and no child passes the
    ``(k+1)``-pebble extension test.  Sound for every input; complete when
    ``dw ≤ k``.

    With a caching *context*, the witness-subtree lookup, the per-child
    instance construction and the pebble-game verdicts are memoized per graph
    version, and each child instance is answered through a shared
    :class:`~repro.pebble.kernel.ConsistencyKernel` — the µ-independent part
    of the pebble game is built once per ``(subtree, child)`` instead of once
    per mapping (identical answers, see :mod:`repro.evaluation.cache`).
    """
    subtree = context.mu_subtree(tree, graph, mu)
    if subtree is None:
        return False
    context.note_subtree_found()
    for _child, extended in context.child_instances(tree, subtree):
        context.note_child_check()
        if context.pebble_winner(extended, graph, mu, k + 1):
            return False
    return True


def forest_contains_pebble_ctx(
    forest: WDPatternForest, graph: RDFGraph, mu: Mapping, k: int, context: EvalContext
) -> bool:
    """The Theorem 1 algorithm on a forest: accept iff some tree accepts.

    ``k`` should be (an upper bound on) the domination width of the forest;
    the algorithm runs the existential ``(k+1)``-pebble game.
    """
    if k < 1:
        raise ValueError("the width parameter k must be at least 1")
    for tree in forest:
        context.note_tree_visited()
        if tree_contains_pebble_ctx(tree, graph, mu, k, context):
            return True
    return False


# --- legacy signatures (thin shims) --------------------------------------------


def tree_contains_pebble(
    tree: WDPatternTree,
    graph: RDFGraph,
    mu: Mapping,
    k: int,
    statistics: Optional[EvaluationStatistics] = None,
    cache: Optional["EvaluationCache"] = None,
) -> bool:
    """Shim for :func:`tree_contains_pebble_ctx` (historical signature)."""
    return tree_contains_pebble_ctx(tree, graph, mu, k, EvalContext.of(statistics, cache))


def forest_contains_pebble(
    forest: WDPatternForest,
    graph: RDFGraph,
    mu: Mapping,
    k: int,
    statistics: Optional[EvaluationStatistics] = None,
    cache: Optional["EvaluationCache"] = None,
) -> bool:
    """Shim for :func:`forest_contains_pebble_ctx` (historical signature)."""
    return forest_contains_pebble_ctx(forest, graph, mu, k, EvalContext.of(statistics, cache))
