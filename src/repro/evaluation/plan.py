"""Declarative evaluation planning: strategies, plans and the planner.

The paper's tractability frontier is about *choosing the right algorithm per
instance* — naive, natural, or the Theorem 1 pebble relaxation under a
certified width bound.  This module makes that choice a first-class object
instead of a string compared in several places:

* :class:`Strategy` — a registered, executable evaluation strategy.  The
  three concrete strategies (``naive``, ``natural``, ``pebble``) carry their
  own execution hooks (``contains``, ``contains_many``, ``solutions_stream``,
  ``warm``), so the callers dispatch on the strategy *object*, never on a
  method string.
* :class:`Plan` — a frozen record of one resolved choice: the strategy, the
  width bound it runs with, whether that bound is *certified* (computed as
  the pattern's true domination width) or merely trusted, and a
  human-readable rationale.  :meth:`Plan.explain` renders the decision.
* :class:`Planner` — the **single** home of ``method="auto"`` resolution.
  :meth:`Engine.contains <repro.evaluation.engine.Engine.contains>`,
  :meth:`Engine.resolve_method
  <repro.evaluation.engine.Engine.resolve_method>`,
  :meth:`Session.check_many <repro.evaluation.session.Session.check_many>`
  and :class:`~repro.evaluation.batch.BatchEngine` all delegate here, so the
  resolution logic can never disagree with itself again.

The resolution rules (unchanged semantics, now in one place):

* ``naive`` / ``natural`` run as requested, no width involved;
* ``pebble`` uses the per-call ``width``, else the engine's ``width_bound``,
  else the previously computed domination width, else it *computes* the
  domination width (exact but potentially expensive);
* ``auto`` prefers pebble **iff a bound is available for free** (an explicit
  width, a constructor bound, or an already-computed domination width) and
  otherwise falls back to the exact natural algorithm rather than pay for a
  width computation.

Since PR 4 the planner is **cost-based**: when the caller supplies the data
graph, ``auto`` resolution consults a :class:`CostModel` that estimates the
naive / natural / pebble cost of the concrete ``(pattern, graph)`` cell from
cheap statistics (graph size, ``sorted_domain()`` cardinality, the pattern's
node/OPT-children counts and fresh-variable branching, the free width bound)
and picks the cheapest admissible strategy *per cell* instead of a fixed
preference.  The estimate rides on the resolved :class:`Plan` and is rendered
by :meth:`Plan.explain` (CLI ``explain --cost``).  Without a graph the
resolution rules are exactly the historical (PR 3) ones:

* ``naive`` / ``natural`` run as requested, no width involved;
* ``pebble`` uses the per-call ``width``, else the engine's ``width_bound``,
  else the previously computed domination width, else it *computes* the
  domination width (exact but potentially expensive);
* ``auto`` prefers pebble **iff a bound is available for free** (an explicit
  width, a constructor bound, or an already-computed domination width) and
  otherwise falls back to the exact natural algorithm rather than pay for a
  width computation.

Ties in the cost estimates break toward the historical preference, so the
cost-based planner degenerates to PR 3 behaviour when the estimates cannot
tell the strategies apart.  The cost model never proposes a strategy whose
precondition fails: pebble needs a free width bound, and only the naive and
natural strategies can enumerate.

For enumeration (:meth:`Planner.plan_enumeration`) ``auto`` resolves to
``natural`` by default and cost-picks between ``naive`` and ``natural`` when
the graph is known — the pebble relaxation decides membership only.

Resolved plans are memoized per ``(method, width, known domination width)``
— plus the graph's size statistics for graph-aware plans — so the unbatched
:meth:`Engine.contains <repro.evaluation.engine.Engine.contains>` hot loop
stops re-allocating plan dataclasses and rationale strings on every call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .context import EvalContext
from .naive import evaluate_pattern, pattern_contains
from ..exceptions import EvaluationError
from ..patterns.forest import WDPatternForest
from ..rdf.graph import RDFGraph
from ..sparql.algebra import GraphPattern
from ..sparql.mappings import Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import EvaluationCache

__all__ = [
    "Strategy",
    "Plan",
    "Planner",
    "PatternStats",
    "CostEstimate",
    "CostModel",
    "register_strategy",
    "strategy_for",
    "method_names",
]


# --- the strategy registry -----------------------------------------------------


class Strategy:
    """One executable evaluation strategy (registry entry).

    Subclasses implement the execution hooks; the engines and sessions call
    through the instance resolved from a :class:`Plan`, so there is no
    method-string dispatch anywhere outside this module.
    """

    #: Registry name (the public ``method=`` value).
    name: str = ""
    #: One-line description used by :meth:`Plan.explain`.
    summary: str = ""
    #: Whether :meth:`solutions_stream` is implemented.
    supports_enumeration: bool = False
    #: Whether the strategy is parameterised by a width bound.
    uses_width: bool = False
    #: Whether batched membership may fan out over a worker pool.
    parallel_safe: bool = True

    # --- execution hooks -----------------------------------------------------
    def contains(
        self,
        pattern: GraphPattern,
        forest: WDPatternForest,
        graph: RDFGraph,
        mu: Mapping,
        plan: "Plan",
        context: EvalContext,
    ) -> bool:
        """Decide ``µ ∈ ⟦P⟧G`` under *plan*."""
        raise NotImplementedError

    def contains_many(
        self,
        pattern: GraphPattern,
        forest: WDPatternForest,
        graph: RDFGraph,
        mappings: Iterable[Mapping],
        plan: "Plan",
        context: EvalContext,
    ) -> List[bool]:
        """Batched membership (already deduplicated by the caller)."""
        return [self.contains(pattern, forest, graph, mu, plan, context) for mu in mappings]

    def solutions_stream(
        self,
        pattern: GraphPattern,
        forest: WDPatternForest,
        graph: RDFGraph,
        context: EvalContext,
    ) -> Iterator[Mapping]:
        """Stream the answer set ``⟦P⟧G`` (deduplicated)."""
        raise EvaluationError(
            f"the {self.name!r} strategy decides membership only and cannot enumerate"
        )

    def warm(
        self,
        forest: WDPatternForest,
        graph: RDFGraph,
        plan: "Plan",
        cache: "EvaluationCache",
        mappings: Optional[Iterable[Mapping]] = None,
    ) -> int:
        """Precompute µ-independent state for batched runs; returns the
        number of consistency kernels ensured (0 for kernel-free strategies)."""
        return 0

    def __repr__(self) -> str:
        return f"Strategy({self.name!r})"


_STRATEGIES: Dict[str, Strategy] = {}


def register_strategy(strategy: Strategy) -> Strategy:
    """Register *strategy* under its name (replacing any previous entry)."""
    if not strategy.name:
        raise ValueError("a strategy must have a non-empty name")
    _STRATEGIES[strategy.name] = strategy
    return strategy


def method_names() -> Tuple[str, ...]:
    """Every accepted ``method=`` value (``auto`` plus the registry)."""
    return ("auto",) + tuple(sorted(_STRATEGIES))


def strategy_for(name: str) -> Strategy:
    """The registered strategy called *name* (raises for unknown names)."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise EvaluationError(
            f"unknown method {name!r}; expected one of {method_names()}"
        ) from None


class NaiveStrategy(Strategy):
    """The compositional Pérez et al. semantics (reference, exponential)."""

    name = "naive"
    summary = "materialise ⟦P⟧G bottom-up (Pérez et al. reference semantics)"
    supports_enumeration = True
    uses_width = False
    #: Batched naive evaluation materialises once instead of forking workers.
    parallel_safe = False

    def contains(self, pattern, forest, graph, mu, plan, context):
        return pattern_contains(pattern, graph, mu, context.budget)

    def contains_many(self, pattern, forest, graph, mappings, plan, context):
        # One materialisation of the full answer set serves every mapping.
        answer_set = evaluate_pattern(pattern, graph, context.budget)
        return [mu in answer_set for mu in mappings]

    def solutions_stream(self, pattern, forest, graph, context):
        return iter(evaluate_pattern(pattern, graph, context.budget))


class NaturalStrategy(Strategy):
    """The exact wdPF algorithm (Lemma 1) with NP-hard child tests."""

    name = "natural"
    summary = "exact wdPF evaluation (Lemma 1) with full homomorphism child tests"
    supports_enumeration = True
    uses_width = False

    def contains(self, pattern, forest, graph, mu, plan, context):
        from .wdeval import forest_contains_ctx  # deferred: wdeval imports plan's context

        return forest_contains_ctx(forest, graph, mu, context)

    def solutions_stream(self, pattern, forest, graph, context):
        from .wdeval import forest_solutions_stream

        return forest_solutions_stream(forest, graph, context)

    def warm(self, forest, graph, plan, cache, mappings=None):
        cache.target_index(graph)
        return 0


class PebbleStrategy(Strategy):
    """The Theorem 1 algorithm: pebble-game relaxation of the child test."""

    name = "pebble"
    summary = "Theorem 1: natural evaluation with the existential (k+1)-pebble relaxation"
    supports_enumeration = False
    uses_width = True

    def contains(self, pattern, forest, graph, mu, plan, context):
        from .pebble_eval import forest_contains_pebble_ctx

        return forest_contains_pebble_ctx(forest, graph, mu, plan.width, context)

    def warm(self, forest, graph, plan, cache, mappings=None):
        return cache.warm_pebble(
            forest, graph, plan.width + 1, list(mappings) if mappings is not None else None
        )


NAIVE = register_strategy(NaiveStrategy())
NATURAL = register_strategy(NaturalStrategy())
PEBBLE = register_strategy(PebbleStrategy())


# --- the cost model --------------------------------------------------------------


@dataclass(frozen=True)
class PatternStats:
    """Cheap, graph-independent statistics of one wdPF (one tree walk).

    These are the pattern-side inputs of the :class:`CostModel`; an
    :class:`~repro.evaluation.engine.Engine` computes them once per pattern
    and hands them to its planner.

    Attributes
    ----------
    trees / nodes / opt_children:
        Forest shape: member trees, total wdPT nodes, and non-root nodes
        (each non-root node is one OPT child somewhere, i.e. one NP-hard
        child test of the natural algorithm).
    triples:
        Total triple patterns across all nodes.
    variables:
        ``|vars(P)|`` over the whole forest.
    max_new_vars:
        The largest number of variables any single node introduces over its
        ancestors — the branching factor of one indexed homomorphism search.
    max_branch_vars:
        The largest variable count accumulated along one root-to-leaf
        branch — what a bottom-up (naive) materialisation has to hold.
    subtree_bound:
        Upper bound on the number of subtrees containing a root (capped) —
        the iteration space of natural *enumeration*.
    """

    trees: int
    nodes: int
    opt_children: int
    triples: int
    variables: int
    max_new_vars: int
    max_branch_vars: int
    subtree_bound: float

    #: Cap for the subtree-count product (keeps the walk overflow-free).
    _SUBTREE_CAP = 1e12

    @classmethod
    def of(cls, forest: WDPatternForest) -> "PatternStats":
        """Compute the statistics of *forest* in one walk per tree."""
        trees = nodes = opt_children = triples = 0
        variables: set = set()
        max_new_vars = 0
        max_branch_vars = 0
        subtree_bound = 0.0
        for tree in forest:
            trees += 1
            order: List[int] = []
            stack = [tree.root]
            while stack:  # parents always precede their children
                node = stack.pop()
                order.append(node)
                stack.extend(tree.children_of(node))
            branch_vars: Dict[int, frozenset] = {}
            for node in order:
                nodes += 1
                triples += len(tree.pat(node).triples())
                node_vars = tree.vars(node)
                variables |= node_vars
                parent = tree.parent_of(node)
                inherited = branch_vars[parent] if parent is not None else frozenset()
                if parent is not None:
                    opt_children += 1
                max_new_vars = max(max_new_vars, len(node_vars - inherited))
                branch_vars[node] = inherited | node_vars
                max_branch_vars = max(max_branch_vars, len(branch_vars[node]))
            # Rooted-subtree count: g(n) = prod over children c of (1 + g(c)).
            counts: Dict[int, float] = {}
            for node in reversed(order):  # children before parents
                product = 1.0
                for child in tree.children_of(node):
                    product = min(cls._SUBTREE_CAP, product * (1.0 + counts[child]))
                counts[node] = product
            subtree_bound = min(cls._SUBTREE_CAP, subtree_bound + counts[tree.root])
        return cls(
            trees=trees,
            nodes=nodes,
            opt_children=opt_children,
            triples=triples,
            variables=len(variables),
            max_new_vars=max_new_vars,
            max_branch_vars=max_branch_vars,
            subtree_bound=subtree_bound,
        )


@dataclass(frozen=True)
class CostEstimate:
    """Per-strategy cost estimates for one ``(pattern, graph)`` cell.

    The numbers are *ordinal* operation counts, not wall-clock predictions:
    they only need to rank the strategies.  ``costs`` lists the admissible
    strategies in the planner's tie-break preference order (most preferred
    first); :meth:`cheapest` is the strategy the planner picks.
    """

    task: str  # "membership" | "enumeration"
    costs: Tuple[Tuple[str, float], ...]
    graph_triples: int
    graph_domain: int
    pattern_nodes: int
    opt_children: int

    def cost_of(self, name: str) -> Optional[float]:
        """The estimated cost of strategy *name* (``None`` if inadmissible)."""
        for strategy, cost in self.costs:
            if strategy == name:
                return cost
        return None

    def cheapest(self) -> str:
        """The cheapest admissible strategy; ties break toward the first
        (most preferred) entry, i.e. the historical PR 3 choice."""
        best_name, best_cost = self.costs[0]
        for name, cost in self.costs[1:]:
            if cost < best_cost:
                best_name, best_cost = name, cost
        return best_name

    def render(self) -> str:
        """The estimates as a compact one-liner, e.g.
        ``natural ~1.3e+03 · naive ~2.0e+05``."""
        return " · ".join(f"{name} ~{cost:.1e}" for name, cost in self.costs)

    def render_inputs(self) -> str:
        """The cell statistics the estimates were computed from."""
        return (
            f"|G| = {self.graph_triples} triples, |dom(G)| = {self.graph_domain}, "
            f"{self.pattern_nodes} node(s), {self.opt_children} OPT child(ren)"
        )


@dataclass(frozen=True)
class CostModel:
    """Estimate naive / natural / pebble cost per ``(pattern, graph)`` cell.

    The formulas are deliberately crude — they model the dominant term of
    each algorithm from statistics that cost one tree walk and one memoized
    ``sorted_domain()`` call (see ``docs/planner.md`` for the derivation):

    * one indexed homomorphism search branches over the fresh variables of a
      node: ``search = |G| ** max_new_vars``;
    * **naive** materialises ``⟦P⟧G`` bottom-up: one search per node plus
      intermediate answer sets of up to ``|G| ** max_branch_vars`` rows;
    * **natural membership** finds the witness subtree (linear in the
      pattern) and runs one search per OPT child;
    * **natural enumeration** repeats that search for *every* subtree —
      ``subtree_bound`` many, exponential in the OPT-children fan-out;
    * **pebble membership** replaces each child search with the polynomial
      ``(k+1)``-pebble game over ``|dom(G)| ** (k+1)`` positions.

    Exponents are capped (``exponent_cap``) and every estimate is clamped to
    ``ceiling`` so the ranking stays overflow-free.
    """

    exponent_cap: int = 8
    ceiling: float = 1e30

    def _power(self, base: float, exponent: int) -> float:
        return min(self.ceiling, base ** min(exponent, self.exponent_cap))

    def estimate(
        self,
        pattern: PatternStats,
        graph_triples: int,
        graph_domain: int,
        width: Optional[int],
        task: str = "membership",
    ) -> CostEstimate:
        """The per-strategy estimates for one cell.

        *width* is the **free** width bound (``None`` when none is available
        — the pebble strategy is then inadmissible and gets no estimate, so
        the planner can never pick a strategy whose precondition fails).
        For ``task="enumeration"`` pebble is always inadmissible.
        """
        if task not in ("membership", "enumeration"):
            raise EvaluationError(f"unknown cost task {task!r}")
        n = float(max(2, graph_triples))
        d = float(max(2, graph_domain))
        pattern_work = pattern.nodes * max(1, pattern.triples)
        search = self._power(n, pattern.max_new_vars)
        materialise = min(
            self.ceiling,
            pattern.nodes * search + self._power(n, pattern.max_branch_vars),
        )
        costs: List[Tuple[str, float]] = []
        if task == "membership":
            if width is not None:
                pebble = min(
                    self.ceiling,
                    pattern_work
                    + pattern.opt_children
                    * max(1, pattern.triples)
                    * self._power(d, width + 1),
                )
                costs.append((PEBBLE.name, pebble))
            natural = min(
                self.ceiling, pattern_work + pattern.opt_children * search
            )
            costs.append((NATURAL.name, natural))
            costs.append((NAIVE.name, materialise))
        else:
            natural = min(
                self.ceiling,
                pattern.subtree_bound * (search + 1.0 + pattern.opt_children),
            )
            costs.append((NATURAL.name, natural))
            costs.append((NAIVE.name, materialise))
        return CostEstimate(
            task=task,
            costs=tuple(costs),
            graph_triples=graph_triples,
            graph_domain=graph_domain,
            pattern_nodes=pattern.nodes,
            opt_children=pattern.opt_children,
        )


# --- plans -----------------------------------------------------------------------


@dataclass(frozen=True)
class Plan:
    """One resolved evaluation decision (immutable, explainable).

    Attributes
    ----------
    requested:
        The ``method=`` value the caller asked for (possibly ``"auto"``).
    strategy:
        The concrete strategy the planner chose (a registry name).
    width:
        The width bound ``k`` the pebble strategy runs with (``None`` for
        width-free strategies); the game uses ``k+1`` pebbles.
    certified:
        ``True`` when *width* is the pattern's computed domination width —
        the pebble algorithm is then exact (Theorem 1).  ``False`` for
        user-supplied bounds, which are trusted but not verified.
    rationale:
        One human-readable sentence recording *why* this strategy was chosen.
    cost:
        The :class:`CostEstimate` the decision was based on, when the planner
        knew the graph (``None`` for graph-free plans).  Rendered by
        :meth:`explain` and the CLI's ``explain --cost``.
    """

    requested: str
    strategy: str
    width: Optional[int]
    certified: bool
    rationale: str
    cost: Optional[CostEstimate] = None

    @property
    def strategy_obj(self) -> Strategy:
        """The executable :class:`Strategy` behind :attr:`strategy`."""
        return strategy_for(self.strategy)

    def summary(self) -> str:
        """A compact one-liner, e.g. ``pebble(k=1, certified)``."""
        if self.width is None:
            return self.strategy
        certification = "certified" if self.certified else "trusted"
        return f"{self.strategy}(k={self.width}, {certification})"

    def explain(self) -> str:
        """A human-readable account of the decision (CLI ``explain``)."""
        strategy = self.strategy_obj
        lines = [
            f"requested method : {self.requested}",
            f"chosen strategy  : {self.strategy} — {strategy.summary}",
        ]
        if strategy.uses_width:
            certification = (
                "certified: computed domination width of the pattern"
                if self.certified
                else "trusted: supplied bound, not verified"
            )
            lines.append(f"width bound      : k = {self.width} ({certification})")
            lines.append(f"pebble game      : existential {self.width + 1}-pebble game")
        else:
            lines.append("width bound      : n/a (width-free strategy)")
        if self.cost is not None:
            lines.append(f"cost estimate    : {self.cost.render()} ({self.cost.task})")
            lines.append(f"cost inputs      : {self.cost.render_inputs()}")
        lines.append(f"rationale        : {self.rationale}")
        return "\n".join(lines)


# --- the planner -----------------------------------------------------------------


#: Resolved-plan memo size guard; the memo is simply cleared when it fills
#: (keys cycle over a handful of methods × widths × graph sizes in practice).
_PLAN_MEMO_LIMIT = 256


class Planner:
    """The single home of ``method=`` resolution (notably ``"auto"``).

    Parameters
    ----------
    width_bound:
        The engine-level declared bound on the pattern's domination width
        (``Engine(width_bound=...)``), if any.
    known_width:
        Zero-argument callable returning the domination width **iff it has
        already been computed** (else ``None``).  ``auto`` consults this but
        never triggers a computation.
    width_oracle:
        Zero-argument callable that *computes* the domination width on
        demand; only invoked when ``method="pebble"`` is requested without
        any bound.  ``None`` makes that case an error.
    pattern_stats:
        Zero-argument callable returning the pattern's :class:`PatternStats`
        (engines memoize this per pattern).  Without it the planner cannot
        estimate costs and graph-aware calls fall back to the graph-free
        rules.
    cost_model:
        The :class:`CostModel` ranking strategies per ``(pattern, graph)``
        cell; a default model is used when omitted.

    Resolved plans are memoized per ``(method, width, known domination
    width)`` — plus ``(|G|, |dom(G)|)`` for graph-aware plans — so hot loops
    like unbatched :meth:`Engine.contains
    <repro.evaluation.engine.Engine.contains>` re-use one frozen
    :class:`Plan` instead of re-allocating it per call.
    """

    def __init__(
        self,
        width_bound: Optional[int] = None,
        known_width: Optional[Callable[[], Optional[int]]] = None,
        width_oracle: Optional[Callable[[], int]] = None,
        pattern_stats: Optional[Callable[[], PatternStats]] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if width_bound is not None and width_bound < 1:
            raise EvaluationError("width_bound must be at least 1")
        self._width_bound = width_bound
        self._known_width = known_width if known_width is not None else lambda: None
        self._width_oracle = width_oracle
        self._pattern_stats = pattern_stats
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._memo: Dict[Tuple, Plan] = {}

    # --- plan memoization ------------------------------------------------------
    def _memoized(self, key: Tuple, resolve: Callable[[], Plan]) -> Plan:
        plan = self._memo.get(key)
        if plan is None:
            plan = resolve()
            if len(self._memo) >= _PLAN_MEMO_LIMIT:
                self._memo.clear()
            self._memo[key] = plan
        return plan

    def _cell_estimate(
        self, graph: Optional[RDFGraph], width: Optional[int], task: str
    ) -> Optional[CostEstimate]:
        """The cost estimate for this cell, or ``None`` without graph/stats."""
        if graph is None or self._pattern_stats is None:
            return None
        return self._cost_model.estimate(
            self._pattern_stats(),
            len(graph),
            len(graph.sorted_domain()),
            width,
            task=task,
        )

    # --- bound resolution ------------------------------------------------------
    def _free_bound(self, width: Optional[int]) -> Tuple[Optional[int], bool, str]:
        """The width bound available *without* computing anything.

        Returns ``(bound, certified, source)``; ``bound`` is ``None`` when no
        bound is available for free.
        """
        if width is not None:
            return width, False, f"the per-call width argument declares dw(P) <= {width}"
        if self._width_bound is not None:
            return (
                self._width_bound,
                False,
                f"the engine's width_bound declares dw(P) <= {self._width_bound}",
            )
        known = self._known_width()
        if known is not None:
            return known, True, f"the domination width dw(P) = {known} was already computed"
        return None, False, "no width bound is available for free"

    # --- membership planning -----------------------------------------------------
    def plan(
        self,
        method: str = "auto",
        width: Optional[int] = None,
        graph: Optional[RDFGraph] = None,
    ) -> Plan:
        """Resolve ``(method, width)`` into an executable :class:`Plan`.

        This is exactly the decision :meth:`Engine.contains` executes and
        :meth:`Engine.resolve_method` reports — there is no other copy of it.
        With a *graph* (and pattern statistics) the plan carries a
        :class:`CostEstimate` and ``auto`` picks the cheapest admissible
        strategy for this specific cell; without one the historical
        graph-free rules apply.  Plans are memoized (see the class docs).
        """
        known = self._known_width()
        cost_aware = graph is not None and self._pattern_stats is not None
        if cost_aware:
            key = (method, width, known, len(graph), len(graph.sorted_domain()))
        else:
            key = (method, width, known)
        return self._memoized(key, lambda: self._plan_fresh(method, width, graph))

    def _plan_fresh(
        self, method: str, width: Optional[int], graph: Optional[RDFGraph]
    ) -> Plan:
        if method == "auto":
            return self._plan_auto(width, graph)
        strategy = strategy_for(method)
        if not strategy.uses_width:
            return Plan(
                requested=method,
                strategy=strategy.name,
                width=None,
                certified=False,
                rationale=f"the {strategy.name} strategy was requested explicitly",
                cost=self._cell_estimate(graph, self._free_bound(width)[0], "membership"),
            )
        bound, certified, source = self._free_bound(width)
        if bound is None:
            if self._width_oracle is None:
                raise EvaluationError(
                    "the pebble strategy needs a width bound and no width oracle is available"
                )
            bound = self._width_oracle()
            certified = True
            source = f"computed the domination width dw(P) = {bound} on demand"
        exactness = (
            "the algorithm is exact (Theorem 1)"
            if certified
            else f"sound always, complete if dw(P) <= {bound}"
        )
        return Plan(
            requested=method,
            strategy=strategy.name,
            width=bound,
            certified=certified,
            rationale=f"the pebble strategy was requested explicitly; {source}; {exactness}",
            cost=self._cell_estimate(graph, bound, "membership"),
        )

    def _plan_auto(self, width: Optional[int], graph: Optional[RDFGraph]) -> Plan:
        bound, certified, source = self._free_bound(width)
        estimate = self._cell_estimate(graph, bound, "membership")
        if estimate is not None:
            chosen = estimate.cheapest()
            if chosen != PEBBLE.name:
                # The cost model out-voted (or never admitted) the pebble
                # strategy; both alternatives are exact, so this is safe.
                return Plan(
                    requested="auto",
                    strategy=chosen,
                    width=None,
                    certified=False,
                    rationale=f"the cost model compared {estimate.render()} for this "
                    f"graph and the {chosen} strategy is the cheapest admissible "
                    "choice (it is exact for every input)",
                    cost=estimate,
                )
            exactness = (
                "the algorithm is exact (Theorem 1)"
                if certified
                else f"it is exact if the bound holds (dw(P) <= {bound}), "
                "and sound for every input"
            )
            return Plan(
                requested="auto",
                strategy=PEBBLE.name,
                width=bound,
                certified=certified,
                rationale=f"the cost model compared {estimate.render()} for this "
                f"graph and the pebble relaxation with k = {bound} is the cheapest "
                f"({source}); {exactness}",
                cost=estimate,
            )
        if bound is not None:
            exactness = (
                "the algorithm is exact (Theorem 1)"
                if certified
                else f"it is exact if the bound holds (dw(P) <= {bound}), "
                "and sound for every input"
            )
            return Plan(
                requested="auto",
                strategy=PEBBLE.name,
                width=bound,
                certified=certified,
                rationale=f"{source}, so the polynomial pebble relaxation runs "
                f"with k = {bound}; {exactness}",
            )
        return Plan(
            requested="auto",
            strategy=NATURAL.name,
            width=None,
            certified=False,
            rationale="no width bound was supplied and the domination width has not "
            "been computed; resolving to the exact natural algorithm instead of "
            "paying for a width computation",
        )

    # --- enumeration planning -------------------------------------------------------
    def plan_enumeration(
        self, method: str = "auto", graph: Optional[RDFGraph] = None
    ) -> Plan:
        """Resolve a ``method=`` for full answer-set enumeration.

        ``auto`` resolves to the natural strategy by default; with a *graph*
        (and pattern statistics) the cost model picks between the naive and
        natural strategies per cell — naive wins when the subtree iteration
        space of natural enumeration dwarfs a bottom-up materialisation.
        The pebble relaxation decides membership only and is never eligible.
        """
        known = self._known_width()
        cost_aware = graph is not None and self._pattern_stats is not None
        if cost_aware:
            key = ("enum", method, known, len(graph), len(graph.sorted_domain()))
        else:
            key = ("enum", method, known)
        return self._memoized(key, lambda: self._plan_enumeration_fresh(method, graph))

    def _plan_enumeration_fresh(self, method: str, graph: Optional[RDFGraph]) -> Plan:
        estimate = self._cell_estimate(graph, None, "enumeration")
        if method == "auto":
            if estimate is not None:
                chosen = estimate.cheapest()
                return Plan(
                    requested="auto",
                    strategy=chosen,
                    width=None,
                    certified=False,
                    rationale=f"the cost model compared {estimate.render()} for "
                    f"enumeration over this graph and chose the {chosen} strategy "
                    "(both candidates enumerate ⟦P⟧G exactly; the pebble "
                    "relaxation decides membership only and is not eligible)",
                    cost=estimate,
                )
            return Plan(
                requested="auto",
                strategy=NATURAL.name,
                width=None,
                certified=False,
                rationale="auto resolves enumeration to the natural strategy: it "
                "enumerates ⟦P⟧G exactly for every pattern, while the pebble "
                "relaxation decides membership only",
            )
        strategy = strategy_for(method)
        if not strategy.supports_enumeration:
            enumerable = ("auto",) + tuple(
                sorted(name for name, s in _STRATEGIES.items() if s.supports_enumeration)
            )
            raise EvaluationError(
                f"the {strategy.name!r} strategy decides membership only; "
                f"solutions() supports the methods {enumerable}"
            )
        return Plan(
            requested=method,
            strategy=strategy.name,
            width=None,
            certified=False,
            rationale=f"the {strategy.name} strategy was requested explicitly for enumeration",
            cost=estimate,
        )
