"""Declarative evaluation planning: strategies, plans and the planner.

The paper's tractability frontier is about *choosing the right algorithm per
instance* — naive, natural, or the Theorem 1 pebble relaxation under a
certified width bound.  This module makes that choice a first-class object
instead of a string compared in several places:

* :class:`Strategy` — a registered, executable evaluation strategy.  The
  three concrete strategies (``naive``, ``natural``, ``pebble``) carry their
  own execution hooks (``contains``, ``contains_many``, ``solutions_stream``,
  ``warm``), so the callers dispatch on the strategy *object*, never on a
  method string.
* :class:`Plan` — a frozen record of one resolved choice: the strategy, the
  width bound it runs with, whether that bound is *certified* (computed as
  the pattern's true domination width) or merely trusted, and a
  human-readable rationale.  :meth:`Plan.explain` renders the decision.
* :class:`Planner` — the **single** home of ``method="auto"`` resolution.
  :meth:`Engine.contains <repro.evaluation.engine.Engine.contains>`,
  :meth:`Engine.resolve_method
  <repro.evaluation.engine.Engine.resolve_method>`,
  :meth:`Session.check_many <repro.evaluation.session.Session.check_many>`
  and :class:`~repro.evaluation.batch.BatchEngine` all delegate here, so the
  resolution logic can never disagree with itself again.

The resolution rules (unchanged semantics, now in one place):

* ``naive`` / ``natural`` run as requested, no width involved;
* ``pebble`` uses the per-call ``width``, else the engine's ``width_bound``,
  else the previously computed domination width, else it *computes* the
  domination width (exact but potentially expensive);
* ``auto`` prefers pebble **iff a bound is available for free** (an explicit
  width, a constructor bound, or an already-computed domination width) and
  otherwise falls back to the exact natural algorithm rather than pay for a
  width computation.

For enumeration (:meth:`Planner.plan_enumeration`) ``auto`` resolves to
``natural`` — the pebble relaxation decides membership only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from .context import EvalContext
from .naive import evaluate_pattern, pattern_contains
from ..exceptions import EvaluationError
from ..patterns.forest import WDPatternForest
from ..rdf.graph import RDFGraph
from ..sparql.algebra import GraphPattern
from ..sparql.mappings import Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import EvaluationCache

__all__ = [
    "Strategy",
    "Plan",
    "Planner",
    "register_strategy",
    "strategy_for",
    "method_names",
]


# --- the strategy registry -----------------------------------------------------


class Strategy:
    """One executable evaluation strategy (registry entry).

    Subclasses implement the execution hooks; the engines and sessions call
    through the instance resolved from a :class:`Plan`, so there is no
    method-string dispatch anywhere outside this module.
    """

    #: Registry name (the public ``method=`` value).
    name: str = ""
    #: One-line description used by :meth:`Plan.explain`.
    summary: str = ""
    #: Whether :meth:`solutions_stream` is implemented.
    supports_enumeration: bool = False
    #: Whether the strategy is parameterised by a width bound.
    uses_width: bool = False
    #: Whether batched membership may fan out over a worker pool.
    parallel_safe: bool = True

    # --- execution hooks -----------------------------------------------------
    def contains(
        self,
        pattern: GraphPattern,
        forest: WDPatternForest,
        graph: RDFGraph,
        mu: Mapping,
        plan: "Plan",
        context: EvalContext,
    ) -> bool:
        """Decide ``µ ∈ ⟦P⟧G`` under *plan*."""
        raise NotImplementedError

    def contains_many(
        self,
        pattern: GraphPattern,
        forest: WDPatternForest,
        graph: RDFGraph,
        mappings: Iterable[Mapping],
        plan: "Plan",
        context: EvalContext,
    ) -> List[bool]:
        """Batched membership (already deduplicated by the caller)."""
        return [self.contains(pattern, forest, graph, mu, plan, context) for mu in mappings]

    def solutions_stream(
        self,
        pattern: GraphPattern,
        forest: WDPatternForest,
        graph: RDFGraph,
        context: EvalContext,
    ) -> Iterator[Mapping]:
        """Stream the answer set ``⟦P⟧G`` (deduplicated)."""
        raise EvaluationError(
            f"the {self.name!r} strategy decides membership only and cannot enumerate"
        )

    def warm(
        self,
        forest: WDPatternForest,
        graph: RDFGraph,
        plan: "Plan",
        cache: "EvaluationCache",
        mappings: Optional[Iterable[Mapping]] = None,
    ) -> int:
        """Precompute µ-independent state for batched runs; returns the
        number of consistency kernels ensured (0 for kernel-free strategies)."""
        return 0

    def __repr__(self) -> str:
        return f"Strategy({self.name!r})"


_STRATEGIES: Dict[str, Strategy] = {}


def register_strategy(strategy: Strategy) -> Strategy:
    """Register *strategy* under its name (replacing any previous entry)."""
    if not strategy.name:
        raise ValueError("a strategy must have a non-empty name")
    _STRATEGIES[strategy.name] = strategy
    return strategy


def method_names() -> Tuple[str, ...]:
    """Every accepted ``method=`` value (``auto`` plus the registry)."""
    return ("auto",) + tuple(sorted(_STRATEGIES))


def strategy_for(name: str) -> Strategy:
    """The registered strategy called *name* (raises for unknown names)."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise EvaluationError(
            f"unknown method {name!r}; expected one of {method_names()}"
        ) from None


class NaiveStrategy(Strategy):
    """The compositional Pérez et al. semantics (reference, exponential)."""

    name = "naive"
    summary = "materialise ⟦P⟧G bottom-up (Pérez et al. reference semantics)"
    supports_enumeration = True
    uses_width = False
    #: Batched naive evaluation materialises once instead of forking workers.
    parallel_safe = False

    def contains(self, pattern, forest, graph, mu, plan, context):
        return pattern_contains(pattern, graph, mu)

    def contains_many(self, pattern, forest, graph, mappings, plan, context):
        # One materialisation of the full answer set serves every mapping.
        answer_set = evaluate_pattern(pattern, graph)
        return [mu in answer_set for mu in mappings]

    def solutions_stream(self, pattern, forest, graph, context):
        return iter(evaluate_pattern(pattern, graph))


class NaturalStrategy(Strategy):
    """The exact wdPF algorithm (Lemma 1) with NP-hard child tests."""

    name = "natural"
    summary = "exact wdPF evaluation (Lemma 1) with full homomorphism child tests"
    supports_enumeration = True
    uses_width = False

    def contains(self, pattern, forest, graph, mu, plan, context):
        from .wdeval import forest_contains_ctx  # deferred: wdeval imports plan's context

        return forest_contains_ctx(forest, graph, mu, context)

    def solutions_stream(self, pattern, forest, graph, context):
        from .wdeval import forest_solutions_stream

        return forest_solutions_stream(forest, graph, context)

    def warm(self, forest, graph, plan, cache, mappings=None):
        cache.target_index(graph)
        return 0


class PebbleStrategy(Strategy):
    """The Theorem 1 algorithm: pebble-game relaxation of the child test."""

    name = "pebble"
    summary = "Theorem 1: natural evaluation with the existential (k+1)-pebble relaxation"
    supports_enumeration = False
    uses_width = True

    def contains(self, pattern, forest, graph, mu, plan, context):
        from .pebble_eval import forest_contains_pebble_ctx

        return forest_contains_pebble_ctx(forest, graph, mu, plan.width, context)

    def warm(self, forest, graph, plan, cache, mappings=None):
        return cache.warm_pebble(
            forest, graph, plan.width + 1, list(mappings) if mappings is not None else None
        )


NAIVE = register_strategy(NaiveStrategy())
NATURAL = register_strategy(NaturalStrategy())
PEBBLE = register_strategy(PebbleStrategy())


# --- plans -----------------------------------------------------------------------


@dataclass(frozen=True)
class Plan:
    """One resolved evaluation decision (immutable, explainable).

    Attributes
    ----------
    requested:
        The ``method=`` value the caller asked for (possibly ``"auto"``).
    strategy:
        The concrete strategy the planner chose (a registry name).
    width:
        The width bound ``k`` the pebble strategy runs with (``None`` for
        width-free strategies); the game uses ``k+1`` pebbles.
    certified:
        ``True`` when *width* is the pattern's computed domination width —
        the pebble algorithm is then exact (Theorem 1).  ``False`` for
        user-supplied bounds, which are trusted but not verified.
    rationale:
        One human-readable sentence recording *why* this strategy was chosen.
    """

    requested: str
    strategy: str
    width: Optional[int]
    certified: bool
    rationale: str

    @property
    def strategy_obj(self) -> Strategy:
        """The executable :class:`Strategy` behind :attr:`strategy`."""
        return strategy_for(self.strategy)

    def summary(self) -> str:
        """A compact one-liner, e.g. ``pebble(k=1, certified)``."""
        if self.width is None:
            return self.strategy
        certification = "certified" if self.certified else "trusted"
        return f"{self.strategy}(k={self.width}, {certification})"

    def explain(self) -> str:
        """A human-readable account of the decision (CLI ``explain``)."""
        strategy = self.strategy_obj
        lines = [
            f"requested method : {self.requested}",
            f"chosen strategy  : {self.strategy} — {strategy.summary}",
        ]
        if strategy.uses_width:
            certification = (
                "certified: computed domination width of the pattern"
                if self.certified
                else "trusted: supplied bound, not verified"
            )
            lines.append(f"width bound      : k = {self.width} ({certification})")
            lines.append(f"pebble game      : existential {self.width + 1}-pebble game")
        else:
            lines.append("width bound      : n/a (width-free strategy)")
        lines.append(f"rationale        : {self.rationale}")
        return "\n".join(lines)


# --- the planner -----------------------------------------------------------------


class Planner:
    """The single home of ``method=`` resolution (notably ``"auto"``).

    Parameters
    ----------
    width_bound:
        The engine-level declared bound on the pattern's domination width
        (``Engine(width_bound=...)``), if any.
    known_width:
        Zero-argument callable returning the domination width **iff it has
        already been computed** (else ``None``).  ``auto`` consults this but
        never triggers a computation.
    width_oracle:
        Zero-argument callable that *computes* the domination width on
        demand; only invoked when ``method="pebble"`` is requested without
        any bound.  ``None`` makes that case an error.
    """

    def __init__(
        self,
        width_bound: Optional[int] = None,
        known_width: Optional[Callable[[], Optional[int]]] = None,
        width_oracle: Optional[Callable[[], int]] = None,
    ) -> None:
        if width_bound is not None and width_bound < 1:
            raise EvaluationError("width_bound must be at least 1")
        self._width_bound = width_bound
        self._known_width = known_width if known_width is not None else lambda: None
        self._width_oracle = width_oracle

    # --- bound resolution ------------------------------------------------------
    def _free_bound(self, width: Optional[int]) -> Tuple[Optional[int], bool, str]:
        """The width bound available *without* computing anything.

        Returns ``(bound, certified, source)``; ``bound`` is ``None`` when no
        bound is available for free.
        """
        if width is not None:
            return width, False, f"the per-call width argument declares dw(P) <= {width}"
        if self._width_bound is not None:
            return (
                self._width_bound,
                False,
                f"the engine's width_bound declares dw(P) <= {self._width_bound}",
            )
        known = self._known_width()
        if known is not None:
            return known, True, f"the domination width dw(P) = {known} was already computed"
        return None, False, "no width bound is available for free"

    # --- membership planning -----------------------------------------------------
    def plan(self, method: str = "auto", width: Optional[int] = None) -> Plan:
        """Resolve ``(method, width)`` into an executable :class:`Plan`.

        This is exactly the decision :meth:`Engine.contains` executes and
        :meth:`Engine.resolve_method` reports — there is no other copy of it.
        """
        if method == "auto":
            return self._plan_auto(width)
        strategy = strategy_for(method)
        if not strategy.uses_width:
            return Plan(
                requested=method,
                strategy=strategy.name,
                width=None,
                certified=False,
                rationale=f"the {strategy.name} strategy was requested explicitly",
            )
        bound, certified, source = self._free_bound(width)
        if bound is None:
            if self._width_oracle is None:
                raise EvaluationError(
                    "the pebble strategy needs a width bound and no width oracle is available"
                )
            bound = self._width_oracle()
            certified = True
            source = f"computed the domination width dw(P) = {bound} on demand"
        exactness = (
            "the algorithm is exact (Theorem 1)"
            if certified
            else f"sound always, complete if dw(P) <= {bound}"
        )
        return Plan(
            requested=method,
            strategy=strategy.name,
            width=bound,
            certified=certified,
            rationale=f"the pebble strategy was requested explicitly; {source}; {exactness}",
        )

    def _plan_auto(self, width: Optional[int]) -> Plan:
        bound, certified, source = self._free_bound(width)
        if bound is not None:
            exactness = (
                "the algorithm is exact (Theorem 1)"
                if certified
                else f"it is exact if the bound holds (dw(P) <= {bound}), "
                "and sound for every input"
            )
            return Plan(
                requested="auto",
                strategy=PEBBLE.name,
                width=bound,
                certified=certified,
                rationale=f"{source}, so the polynomial pebble relaxation runs "
                f"with k = {bound}; {exactness}",
            )
        return Plan(
            requested="auto",
            strategy=NATURAL.name,
            width=None,
            certified=False,
            rationale="no width bound was supplied and the domination width has not "
            "been computed; resolving to the exact natural algorithm instead of "
            "paying for a width computation",
        )

    # --- enumeration planning -------------------------------------------------------
    def plan_enumeration(self, method: str = "auto") -> Plan:
        """Resolve a ``method=`` for full answer-set enumeration.

        ``auto`` resolves to the natural strategy: it enumerates exactly for
        every pattern, while the pebble relaxation only decides membership.
        """
        if method == "auto":
            return Plan(
                requested="auto",
                strategy=NATURAL.name,
                width=None,
                certified=False,
                rationale="auto resolves enumeration to the natural strategy: it "
                "enumerates ⟦P⟧G exactly for every pattern, while the pebble "
                "relaxation decides membership only",
            )
        strategy = strategy_for(method)
        if not strategy.supports_enumeration:
            enumerable = ("auto",) + tuple(
                sorted(name for name, s in _STRATEGIES.items() if s.supports_enumeration)
            )
            raise EvaluationError(
                f"the {strategy.name!r} strategy decides membership only; "
                f"solutions() supports the methods {enumerable}"
            )
        return Plan(
            requested=method,
            strategy=strategy.name,
            width=None,
            certified=False,
            rationale=f"the {strategy.name} strategy was requested explicitly for enumeration",
        )
