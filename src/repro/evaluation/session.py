"""A multi-pattern, multi-graph evaluation workspace.

Serving realistic wdEVAL traffic means answering *sets* of instances — many
candidate mappings, many patterns, many graphs — behind one shared cache.
:class:`Session` is that workspace:

* engines are created (and memoized) per pattern through one shared
  :class:`~repro.evaluation.cache.EvaluationCache`, so structurally
  overlapping patterns reuse each other's homomorphism tests, kernels and
  target indexes;
* every entry point resolves its ``method=`` through the pattern's
  :class:`~repro.evaluation.plan.Planner` — exactly once per batch — and
  :meth:`plan` / :meth:`explain` expose the decision;
* :meth:`check_many` answers many mappings (deduplicated, optionally over a
  ``multiprocessing`` pool) with answers guaranteed identical to a loop of
  :meth:`Engine.contains <repro.evaluation.engine.Engine.contains>` calls;
* :meth:`solutions_stream` enumerates lazily (a deduplicated generator);
  :meth:`solutions_many` batches enumeration over many patterns × many
  graphs — duplicate cells are evaluated once and fanned back out, and an
  opt-in pool enumerates distinct cells in parallel;
* :meth:`solutions_iter` streams those batched results **incrementally** —
  ``(cell, solution)`` pairs as cells complete, in submission or completion
  order — instead of blocking until the whole batch is done;
* parallel enumeration uses the same warm-fork path as membership: on the
  ``fork`` start method the parent warms the µ-independent cache state and
  workers inherit the live session (indexes, homomorphism lists, memoized
  child tests) instead of rebuilding caches from scratch.

:class:`~repro.evaluation.batch.BatchEngine` is a single-pattern adapter
over this class.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .cache import EvaluationCache
from .context import EvalContext
from .engine import Engine
from .plan import Plan, Planner
from .wdeval import EvaluationStatistics
from ..patterns.forest import WDPatternForest
from ..rdf.graph import RDFGraph
from ..sparql.algebra import GraphPattern
from ..sparql.mappings import Mapping
from ..exceptions import EvaluationError

__all__ = ["Session", "PatternLike"]

#: Anything a session entry point accepts as "a pattern".
PatternLike = Union[Engine, GraphPattern, WDPatternForest]


# --- multiprocessing plumbing -------------------------------------------------
#
# Membership workers are initialised once per pool with the forest and graph
# and then stream mappings; each worker owns an EvaluationCache so the
# per-graph index, memo tables and consistency kernels are built once per
# worker, not per task.
#
# With the ``fork`` start method the parent warms its own cache *before* the
# pool is created and hands the live engine to the initializer — fork does not
# pickle initargs, so every worker starts with the precomputed kernels and
# target index already in (copy-on-write shared) memory.  Other start methods
# receive pickled copies and rebuild the µ-independent state once per worker
# in the initializer instead of lazily per task.

_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    forest: WDPatternForest,
    width_bound: Optional[int],
    graph: RDFGraph,
    method: str,
    width: Optional[int],
    warm_engine: Optional[Engine] = None,
) -> None:
    if warm_engine is not None:
        # Fork path: the parent's engine (and its warmed cache) arrives by
        # address, not by pickle; reuse it directly.
        engine = warm_engine
    else:
        engine = Engine(forest=forest, width_bound=width_bound, cache=EvaluationCache())
        cache = engine.cache
        if cache is not None:
            plan = engine.plan(method, width)
            plan.strategy_obj.warm(engine.forest, graph, plan, cache)
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["method"] = method
    _WORKER_STATE["width"] = width


def _worker_contains(mu: Mapping) -> bool:
    engine: Engine = _WORKER_STATE["engine"]  # type: ignore[assignment]
    return engine.contains(
        _WORKER_STATE["graph"],  # type: ignore[arg-type]
        mu,
        method=_WORKER_STATE["method"],  # type: ignore[arg-type]
        width=_WORKER_STATE["width"],  # type: ignore[arg-type]
    )


# Enumeration workers are initialised once per pool with every forest and
# graph the batch touches (pickled once per worker under non-fork start
# methods) and then receive cells as plain index pairs.  With the ``fork``
# start method the parent warms its cache first and hands its **live
# session** to the initializer — fork does not pickle initargs, so every
# worker starts with the parent's target indexes, memoized homomorphism
# lists and child-test verdicts already in (copy-on-write shared) memory
# instead of rebuilding them from scratch.

_ENUM_STATE: Dict[str, object] = {}


def _init_enum_worker(
    forests: List[WDPatternForest],
    graphs: List[RDFGraph],
    method: str,
    warm_session: Optional["Session"] = None,
) -> None:
    if warm_session is not None:
        # Fork path: the parent's session (engines + warmed cache) arrives
        # by address, not by pickle; reuse it directly.
        session = warm_session
    else:
        session = Session()
    _ENUM_STATE["session"] = session
    _ENUM_STATE["forests"] = forests
    _ENUM_STATE["graphs"] = graphs
    _ENUM_STATE["method"] = method


def _enum_worker_cell(task: Tuple[int, int, int]) -> Tuple[int, Set[Mapping]]:
    """Enumerate one distinct (pattern, graph) cell in a worker process.

    Only forests cross the process boundary (the picklable normal form); the
    naive strategy evaluates the pattern rebuilt from the forest, which has
    the same solutions by the normal-form semantics.
    """
    position, forest_index, graph_index = task
    session: "Session" = _ENUM_STATE["session"]  # type: ignore[assignment]
    answers = session.solutions(
        _ENUM_STATE["forests"][forest_index],  # type: ignore[index]
        _ENUM_STATE["graphs"][graph_index],  # type: ignore[index]
        method=_ENUM_STATE["method"],  # type: ignore[arg-type]
    )
    return position, answers


class Session:
    """Evaluate many patterns against many graphs through one shared cache.

    The service-layer front door: engines are memoized per pattern
    (structurally for :class:`~repro.sparql.algebra.GraphPattern` inputs),
    every ``method=`` resolves through the pattern's cost-based
    :class:`~repro.evaluation.plan.Planner` (:meth:`plan` / :meth:`explain`
    expose the decision per graph), :meth:`check_many` batches membership,
    :meth:`solutions_many` batches enumeration, and :meth:`solutions_iter`
    streams batched enumeration results as cells complete.  Parallel entry
    points warm the µ-independent cache state before forking so workers
    inherit hot indexes, kernels, homomorphism lists and recorded answer
    lists.  Every cache/pool/warm feature is answer-preserving.

    Parameters
    ----------
    cache:
        The shared :class:`~repro.evaluation.cache.EvaluationCache`; a fresh
        one is created when omitted (bounded by *max_entries_per_graph*).
    processes:
        Default worker-pool size for the batched entry points; ``None`` (or
        1) keeps everything serial.  Per-call ``processes=`` overrides it.
    max_entries_per_graph:
        Budget for the implicitly created cache (ignored when *cache* is
        given); see :class:`~repro.evaluation.cache.EvaluationCache`.
    max_engines:
        Bound on the engine memo; the least recently used engines (and the
        pins on their source patterns) are evicted first.  ``None`` (the
        default) means unbounded — like the cache, prefer a bound for
        long-lived sessions serving a stream of distinct ad-hoc patterns.
    warm_on_fork:
        Whether batched parallel membership warms the µ-independent cache
        state in the parent before forking workers (default ``True``; see
        :meth:`warm`).

    >>> from repro.sparql import parse_pattern
    >>> from repro.rdf import RDFGraph, Triple
    >>> from repro.sparql.mappings import Mapping
    >>> session = Session()
    >>> g = RDFGraph([Triple.of("a", "knows", "b")])
    >>> p = parse_pattern("((?x knows ?y) OPT (?y email ?e))")
    >>> session.check_many(p, g, [Mapping.of(x="a", y="b")])
    [True]
    """

    def __init__(
        self,
        cache: Optional[EvaluationCache] = None,
        processes: Optional[int] = None,
        max_entries_per_graph: Optional[int] = None,
        max_engines: Optional[int] = None,
        warm_on_fork: bool = True,
    ) -> None:
        if processes is not None and processes < 1:
            raise EvaluationError("processes must be a positive integer")
        if max_engines is not None and max_engines < 1:
            raise EvaluationError("max_engines must be a positive integer")
        self._cache = (
            cache if cache is not None else EvaluationCache(max_entries_per_graph)
        )
        self._context = EvalContext(
            cache=self._cache, processes=processes, warm_on_fork=warm_on_fork
        )
        self._max_engines = max_engines
        # Engine memo: key -> (source object, engine), insertion-ordered by
        # recency (hits re-insert).  The source reference keeps id()-based
        # keys valid while the entry lives; eviction drops both.
        self._engines: Dict[object, Tuple[object, Engine]] = {}

    # --- introspection -----------------------------------------------------
    @property
    def cache(self) -> EvaluationCache:
        """The evaluation cache shared by every engine of this session."""
        return self._cache

    @property
    def context(self) -> EvalContext:
        """The base evaluation context (cache + pool settings)."""
        return self._context

    @property
    def engine_count(self) -> int:
        """How many engines the session currently memoizes."""
        return len(self._engines)

    def __repr__(self) -> str:
        return (
            f"Session(<{len(self._engines)} engines, "
            f"processes={self._context.processes}>)"
        )

    # --- engines -----------------------------------------------------------
    def engine(self, pattern: PatternLike, width_bound: Optional[int] = None) -> Engine:
        """The session engine for *pattern*, created once and memoized.

        Accepts a :class:`~repro.sparql.algebra.GraphPattern` (memoized
        structurally, so equal patterns share one engine), a
        :class:`~repro.patterns.forest.WDPatternForest`, or an existing
        :class:`Engine` (re-wired onto the session cache when necessary).
        """
        if isinstance(pattern, Engine):
            if pattern.cache is self._cache and width_bound is None:
                # Already wired to this session (typically one of our own
                # memoized engines routed back in): use it as-is.  No memo
                # entry — the caller holds the reference, and re-memoizing
                # under a second id-based key would defeat the LRU bound.
                return pattern
            key = ("engine", id(pattern), width_bound)
        elif isinstance(pattern, GraphPattern):
            key = ("pattern", pattern, width_bound)
        elif isinstance(pattern, WDPatternForest):
            key = ("forest", id(pattern), width_bound)
        else:
            raise EvaluationError(
                f"expected an Engine, GraphPattern or WDPatternForest, "
                f"got {type(pattern).__name__}"
            )
        hit = self._engines.pop(key, None)
        if hit is not None:
            self._engines[key] = hit  # re-insert at the recent end (LRU)
            return hit[1]
        if isinstance(pattern, Engine):
            engine = Engine(
                pattern.pattern,
                pattern.forest,
                width_bound if width_bound is not None else pattern.width_bound,
                cache=self._cache,
            )
        elif isinstance(pattern, WDPatternForest):
            engine = Engine(forest=pattern, width_bound=width_bound, cache=self._cache)
        else:
            engine = Engine(pattern, width_bound=width_bound, cache=self._cache)
        if self._max_engines is not None:
            while len(self._engines) >= self._max_engines:
                self._engines.pop(next(iter(self._engines)))
        self._engines[key] = (pattern, engine)
        return engine

    # --- planning ----------------------------------------------------------
    def plan(
        self,
        pattern: PatternLike,
        method: str = "auto",
        width: Optional[int] = None,
        graph: Optional[RDFGraph] = None,
    ) -> Plan:
        """The plan :meth:`check` would execute for this pattern/method.

        With a *graph* the plan is resolved per ``(pattern, graph)`` cell
        through the cost model and carries the
        :class:`~repro.evaluation.plan.CostEstimate` — exactly what
        :meth:`check` / :meth:`check_many` run against that graph.
        """
        return self.engine(pattern).plan(method, width, graph=graph)

    def explain(
        self,
        pattern: PatternLike,
        method: str = "auto",
        width: Optional[int] = None,
        graph: Optional[RDFGraph] = None,
    ) -> str:
        """Human-readable account of the strategy choice (see :meth:`plan`)."""
        return self.plan(pattern, method, width, graph=graph).explain()

    # --- membership --------------------------------------------------------
    def check(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        mu: Mapping,
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> bool:
        """Decide ``µ ∈ ⟦P⟧G`` through the session cache."""
        return self.engine(pattern).contains(
            graph, mu, method=method, width=width, statistics=statistics
        )

    def check_many(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        mappings: Iterable[Mapping],
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
        processes: Optional[int] = None,
    ) -> List[bool]:
        """Decide ``µ ∈ ⟦P⟧G`` for every mapping, in input order.

        Guaranteed to return exactly the booleans a loop of
        :meth:`Engine.contains` calls would, but sharing the cache across
        instances, deduplicating repeated mappings, resolving the method
        once per batch, and — when *processes* (or the session default) asks
        for it — fanning the instances out over a worker pool.

        *statistics* is only accumulated on the serial path; worker-side
        counters are not collected.
        """
        engine = self.engine(pattern)
        mappings = list(mappings)
        if not mappings:
            return []
        plan = engine.plan(method, width, graph=graph)
        strategy = plan.strategy_obj
        unique: List[Mapping] = []
        seen: Set[Mapping] = set()
        for mu in mappings:
            if mu not in seen:
                seen.add(mu)
                unique.append(mu)

        processes = processes if processes is not None else self._context.processes
        if (
            processes is not None
            and processes > 1
            and len(unique) > 1
            and strategy.parallel_safe
        ):
            answers = dict(zip(unique, self._parallel_contains(engine, graph, unique, plan, processes)))
        else:
            context = self._context.with_statistics(statistics)
            answers = dict(
                zip(
                    unique,
                    strategy.contains_many(
                        engine.pattern, engine.forest, graph, unique, plan, context
                    ),
                )
            )
        return [answers[mu] for mu in mappings]

    def _parallel_contains(
        self,
        engine: Engine,
        graph: RDFGraph,
        mappings: Sequence[Mapping],
        plan: Plan,
        processes: int,
    ) -> List[bool]:
        processes = min(processes, len(mappings))
        chunksize = max(1, len(mappings) // (processes * 4))
        ctx = multiprocessing.get_context()
        warm_engine: Optional[Engine] = None
        if ctx.get_start_method() == "fork" and self._context.warm_on_fork:
            # Build the µ-independent state once in the parent so the workers
            # fork with warm kernels/indexes instead of rebuilding them.  No
            # mappings here on purpose: per-mapping witness-subtree lookups
            # would serialise in the parent (Amdahl); workers do those in
            # parallel against the copy-on-write shared kernels.
            plan.strategy_obj.warm(engine.forest, graph, plan, self._cache)
            warm_engine = engine
        with ctx.Pool(
            processes,
            initializer=_init_worker,
            initargs=(
                engine.forest,
                engine.width_bound,
                graph,
                plan.strategy,
                plan.width,
                warm_engine,
            ),
        ) as pool:
            return pool.map(_worker_contains, mappings, chunksize=chunksize)

    def warm(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        mappings: Optional[Iterable[Mapping]] = None,
        method: str = "auto",
        width: Optional[int] = None,
    ) -> int:
        """Precompute the µ-independent evaluation state for *graph*.

        For the pebble strategy this builds the shared target index, the
        graph domain, and the consistency kernels of every ``(witness
        subtree, child)`` instance the given *mappings* reach (the
        root-subtree instances when no mappings are given); for the natural
        strategy it builds the target index.  Returns the number of kernels
        ensured.  Warming is a pure performance feature — answers are
        identical with and without it — and is what :meth:`check_many` does
        before forking a worker pool.
        """
        engine = self.engine(pattern)
        plan = engine.plan(method, width, graph=graph)
        return plan.strategy_obj.warm(engine.forest, graph, plan, self._cache, mappings)

    # --- enumeration -------------------------------------------------------
    def solutions_stream(
        self, pattern: PatternLike, graph: RDFGraph, method: str = "auto"
    ) -> Iterator[Mapping]:
        """Stream ``⟦P⟧G`` lazily as a deduplicated generator.

        ``method="auto"`` resolves to the natural strategy (the planner
        rejects the pebble strategy, which decides membership only).
        """
        return self.engine(pattern).solutions_stream(graph, method)

    def solutions(
        self, pattern: PatternLike, graph: RDFGraph, method: str = "auto"
    ) -> Set[Mapping]:
        """Enumerate the full answer set ``⟦P⟧G`` through the session cache."""
        return set(self.solutions_stream(pattern, graph, method))

    def _distinct_cells(
        self, engines: Sequence[Engine], graph_list: Sequence[RDFGraph]
    ) -> List[Tuple[Engine, RDFGraph, Tuple[int, int]]]:
        """The distinct ``(engine, graph)`` cells in first-occurrence order."""
        seen: Set[Tuple[int, int]] = set()
        order: List[Tuple[Engine, RDFGraph, Tuple[int, int]]] = []
        for engine in engines:
            for graph in graph_list:
                key = (id(engine), id(graph))
                if key not in seen:
                    seen.add(key)
                    order.append((engine, graph, key))
        return order

    def _enumerate_distinct(
        self,
        order: Sequence[Tuple[Engine, RDFGraph, Tuple[int, int]]],
        method: str,
        processes: Optional[int],
        in_order: bool = False,
    ) -> Iterator[Tuple[Tuple[int, int], Set[Mapping]]]:
        """Enumerate every distinct cell, yielding ``(key, answers)`` pairs.

        Serial (``processes`` unset or 1) cells are evaluated lazily in
        submission order through the session cache.  With a pool, distinct
        cells fan out to enumeration workers; results are yielded **as they
        complete** (``in_order=False``) or in submission order.  On the
        ``fork`` start method the parent first warms the µ-independent state
        of every cell (respecting ``warm_on_fork``) and workers inherit the
        live session, so they replay memoized searches instead of rebuilding
        caches from scratch.
        """
        processes = processes if processes is not None else self._context.processes
        if processes is None or processes <= 1 or len(order) <= 1:
            for engine, graph, key in order:
                yield key, self.solutions(engine, graph, method=method)
            return
        # Validate the method once in the parent (rejects e.g. "pebble"
        # before any worker is spawned); workers re-resolve per cell so the
        # cost model can still pick naive vs natural per (pattern, graph).
        Planner().plan_enumeration(method)
        workers = min(processes, len(order))
        forests: List[WDPatternForest] = []
        forest_index: Dict[int, int] = {}
        graphs: List[RDFGraph] = []
        graph_index: Dict[int, int] = {}
        tasks: List[Tuple[int, int, int]] = []
        for position, (engine, graph, _key) in enumerate(order):
            fi = forest_index.get(id(engine.forest))
            if fi is None:
                fi = forest_index[id(engine.forest)] = len(forests)
                forests.append(engine.forest)
            gi = graph_index.get(id(graph))
            if gi is None:
                gi = graph_index[id(graph)] = len(graphs)
                graphs.append(graph)
            tasks.append((position, fi, gi))
        ctx = multiprocessing.get_context()
        warm_session: Optional["Session"] = None
        if ctx.get_start_method() == "fork" and self._context.warm_on_fork:
            # Warm the µ-independent state (target indexes, graph domains)
            # in the parent; forked workers inherit it — together with every
            # homomorphism list and child test this session has already
            # memoized — as copy-on-write shared memory.
            for engine, graph, _key in order:
                plan = engine.planner.plan_enumeration(method, graph=graph)
                plan.strategy_obj.warm(engine.forest, graph, plan, self._cache)
            warm_session = self
        with ctx.Pool(
            workers,
            initializer=_init_enum_worker,
            initargs=(forests, graphs, method, warm_session),
        ) as pool:
            mapper = pool.imap if in_order else pool.imap_unordered
            for position, answers in mapper(_enum_worker_cell, tasks):
                yield order[position][2], answers

    def solutions_many(
        self,
        patterns: Sequence[PatternLike],
        graphs: Union[RDFGraph, Sequence[RDFGraph]],
        method: str = "auto",
        processes: Optional[int] = None,
    ) -> Union[List[Set[Mapping]], List[List[Set[Mapping]]]]:
        """Batched enumeration over many patterns × many graphs.

        Returns one answer set per ``(pattern, graph)`` cell: a flat list
        (one set per pattern) when *graphs* is a single graph, else a matrix
        with one row per pattern and one column per graph.  Duplicate cells
        — repeated patterns (structurally, for
        :class:`~repro.sparql.algebra.GraphPattern` inputs) or repeated
        graphs — are enumerated **once** and fanned back out, all cells
        share the session cache, and *processes* (or the session default)
        enumerates distinct cells in parallel (with warm worker forks, see
        :meth:`solutions_iter`).  Answer sets are guaranteed identical to
        per-pattern :meth:`Engine.solutions
        <repro.evaluation.engine.Engine.solutions>` calls.  For results as
        they complete, use :meth:`solutions_iter`.
        """
        single = isinstance(graphs, RDFGraph)
        graph_list: List[RDFGraph] = [graphs] if single else list(graphs)
        engines = [self.engine(pattern) for pattern in patterns]
        order = self._distinct_cells(engines, graph_list)
        distinct: Dict[Tuple[int, int], Set[Mapping]] = dict(
            self._enumerate_distinct(order, method, processes)
        )

        # Duplicate cells fan out as *independent copies*, exactly like the
        # equivalent loop of per-pattern Engine.solutions calls; a cell used
        # once hands out the computed set itself (no copy).
        uses = {key: 0 for key in distinct}
        for engine in engines:
            for graph in graph_list:
                uses[(id(engine), id(graph))] += 1

        def hand_out(key: Tuple[int, int]) -> Set[Mapping]:
            uses[key] -= 1
            answers = distinct[key]
            return set(answers) if uses[key] > 0 else answers

        matrix = [
            [hand_out((id(engine), id(graph))) for graph in graph_list] for engine in engines
        ]
        if single:
            return [row[0] for row in matrix]
        return matrix

    def solutions_iter(
        self,
        patterns: Sequence[PatternLike],
        graphs: Union[RDFGraph, Sequence[RDFGraph]],
        method: str = "auto",
        order: str = "submitted",
        processes: Optional[int] = None,
    ) -> Iterator[Tuple[Tuple[int, int], Mapping]]:
        """Stream batched enumeration results as cells complete.

        Yields ``((pattern_index, graph_index), mapping)`` pairs covering
        exactly the same answer sets as :meth:`solutions_many` over the same
        inputs, but incrementally — consumers see the first solutions while
        later cells are still being evaluated, instead of waiting for the
        whole batch.  *graphs* may be a single graph (all cells then have
        ``graph_index == 0``) or a sequence.

        ``order="submitted"`` (the default) yields cells in input order —
        row by row, every solution of a cell before the next cell.  Serially
        each **first occurrence** of a cell streams truly lazily from
        :meth:`solutions_stream`; with a pool, whole cells arrive from the
        enumeration workers as units.  ``order="completed"`` relaxes cell
        ordering to completion order, which keeps the consumer busy while
        slow cells are still running in the pool (within one cell, all of
        its duplicate positions are emitted together, in submission order).
        Parallel runs use the same warm-fork worker path as
        :meth:`solutions_many`.
        """
        if order not in ("submitted", "completed"):
            raise EvaluationError(
                f"order must be 'submitted' or 'completed', got {order!r}"
            )
        single = isinstance(graphs, RDFGraph)
        graph_list: List[RDFGraph] = [graphs] if single else list(graphs)
        engines = [self.engine(pattern) for pattern in patterns]
        cells: List[Tuple[Tuple[int, int], Tuple[int, int]]] = [
            ((i, j), (id(engine), id(graph)))
            for i, engine in enumerate(engines)
            for j, graph in enumerate(graph_list)
        ]
        uses: Dict[Tuple[int, int], int] = {}
        for _cell, key in cells:
            uses[key] = uses.get(key, 0) + 1
        distinct = self._distinct_cells(engines, graph_list)

        processes = processes if processes is not None else self._context.processes
        serial = processes is None or processes <= 1 or len(distinct) <= 1
        if serial:
            # True per-solution streaming: the first occurrence of each cell
            # is consumed lazily; repeats replay the recorded answers.
            by_key = {key: (engine, graph) for engine, graph, key in distinct}
            done: Dict[Tuple[int, int], Set[Mapping]] = {}
            for cell, key in cells:
                if key in done:
                    for mu in done[key]:
                        yield cell, mu
                    continue
                engine, graph = by_key[key]
                recorder: Optional[Set[Mapping]] = set() if uses[key] > 1 else None
                for mu in self.solutions_stream(engine, graph, method=method):
                    if recorder is not None:
                        recorder.add(mu)
                    yield cell, mu
                if recorder is not None:
                    done[key] = recorder
            return

        if order == "completed":
            positions: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
            for cell, key in cells:
                positions.setdefault(key, []).append(cell)
            for key, answers in self._enumerate_distinct(
                distinct, method, processes, in_order=False
            ):
                for cell in positions[key]:
                    for mu in answers:
                        yield cell, mu
            return

        # order == "submitted": consume the (submission-ordered) worker
        # results exactly as far as the next cell to emit requires.
        results = self._enumerate_distinct(distinct, method, processes, in_order=True)
        done = {}
        for cell, key in cells:
            while key not in done:
                finished_key, answers = next(results)
                done[finished_key] = answers
            for mu in done[key]:
                yield cell, mu
