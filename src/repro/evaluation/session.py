"""A multi-pattern, multi-graph evaluation workspace.

Serving realistic wdEVAL traffic means answering *sets* of instances — many
candidate mappings, many patterns, many graphs — behind one shared cache.
:class:`Session` is that workspace:

* engines are created (and memoized) per pattern through one shared
  :class:`~repro.evaluation.cache.EvaluationCache`, so structurally
  overlapping patterns reuse each other's homomorphism tests, kernels and
  target indexes;
* every entry point resolves its ``method=`` through the pattern's
  :class:`~repro.evaluation.plan.Planner` — exactly once per batch — and
  :meth:`plan` / :meth:`explain` expose the decision;
* :meth:`check_many` answers many mappings (deduplicated, optionally over a
  ``multiprocessing`` pool) with answers guaranteed identical to a loop of
  :meth:`Engine.contains <repro.evaluation.engine.Engine.contains>` calls;
* :meth:`solutions_stream` enumerates lazily (a deduplicated generator);
  :meth:`solutions_many` batches enumeration over many patterns × many
  graphs — duplicate cells are evaluated once and fanned back out, and an
  opt-in pool enumerates distinct cells in parallel;
* :meth:`solutions_iter` streams those batched results **incrementally** —
  ``(cell, solution)`` pairs as cells complete, in submission or completion
  order — instead of blocking until the whole batch is done; parallel runs
  stream *within* a cell too: workers push fixed-size solution chunks over
  a bounded IPC queue, so the consumer sees the first solutions of a cell
  while the worker is still enumerating it;
* parallel enumeration uses the same warm-fork path as membership: on the
  ``fork`` start method the parent warms the µ-independent cache state and
  workers inherit the live session (indexes, homomorphism lists, memoized
  child tests) instead of rebuilding caches from scratch;
* every parallel entry point has a **return channel**: workers journal what
  they learn and ship it back as a picklable, version-stamped
  :class:`~repro.evaluation.cache.CacheDelta` the parent merges through
  :meth:`EvaluationCache.absorb
  <repro.evaluation.cache.EvaluationCache.absorb>` — so a repeated batch
  over the same cells replays from the parent cache instead of recomputing
  (cells the parent can already answer completely never reach the pool);
* every pool path is **crash-aware**: worker deaths are detected (not
  waited out), the affected tasks are retried once on the surviving
  workers, and a second failure degrades the remainder to serial
  re-execution in the parent — answers are never lost and never
  duplicated, and the recovery is accounted in
  :class:`~repro.evaluation.wdeval.EvaluationStatistics`
  (``worker_crashes`` / ``cells_degraded_serial`` / ``cells_lost``);
* wall-clock / step budgets (:class:`~repro.evaluation.budget.Budget`)
  travel with the tasks into the workers; a deadline-bounded
  :meth:`solutions_iter` yields its partial results and then a terminal
  :class:`~repro.evaluation.budget.TimeoutReport` instead of hanging; and
  a deterministic fault-injection harness
  (:mod:`repro.evaluation.faults`) drives all of these paths in tests
  with real SIGKILLs and real queue stalls.

:class:`~repro.evaluation.batch.BatchEngine` is a single-pattern adapter
over this class.
"""

from __future__ import annotations

import multiprocessing
import threading
import warnings
from queue import Empty
from time import monotonic, sleep
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .budget import Budget, TimeoutReport, budget_from
from .cache import CacheDelta, EvaluationCache
from .context import EvalContext
from .engine import Engine
from .plan import Plan, Planner
from .wdeval import EvaluationStatistics
from ..patterns.forest import WDPatternForest
from ..rdf.graph import RDFGraph
from ..sparql.algebra import GraphPattern
from ..sparql.mappings import Mapping
from ..exceptions import (
    DeadlineExceeded,
    EvaluationError,
    ReproError,
    WorkerCrashError,
)

__all__ = ["Session", "PatternLike"]

#: Anything a session entry point accepts as "a pattern".
PatternLike = Union[Engine, GraphPattern, WDPatternForest]

#: How many times one task may be attempted on the pool before the parent
#: re-runs it serially (1 original + 1 retry after a worker crash).
_MAX_TASK_ATTEMPTS = 2

#: Backoff after a detected worker crash, giving the pool a beat to reap
#: the corpse and respawn a replacement before tasks are resubmitted.
_CRASH_BACKOFF_SECONDS = 0.05


# --- multiprocessing plumbing -------------------------------------------------
#
# Membership workers are initialised once per pool with the forest and graph
# and then stream mappings; each worker owns an EvaluationCache so the
# per-graph index, memo tables and consistency kernels are built once per
# worker, not per task.
#
# With the ``fork`` start method the parent warms its own cache *before* the
# pool is created and hands the live engine to the initializer — fork does not
# pickle initargs, so every worker starts with the precomputed kernels and
# target index already in (copy-on-write shared) memory.  Other start methods
# receive pickled copies and rebuild the µ-independent state once per worker
# in the initializer instead of lazily per task.
#
# Either way the learning is two-directional: every worker journals what it
# memoizes (EvaluationCache.collect_deltas) and ships the journal back as a
# version-stamped CacheDelta alongside its results; the parent absorbs the
# deltas, so the pool's work outlives the pool.  Version stamps are the
# *parent's* graph versions at pool creation — a worker's own (pickled or
# forked) version counter is meaningless parent-side — and a worker whose
# graph copy mutated withholds the stamp, so stale state is never shipped.
#
# Tasks carry their submission *position* so that (a) the parent can match
# retried / degraded work without trusting pool ordering and (b) the
# fault-injection harness can target "the worker that picks up task N"
# deterministically.  An optional Budget travels in the initargs (absolute
# monotonic deadlines stay meaningful across processes on Linux), as does
# the test-only FaultPlan.

# fork-safe: rebound wholesale by _init_worker in every worker process
# before any task runs, and never read in the parent — fork-inherited
# contents are inert, so worker writes cannot leak across the boundary.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    forest: WDPatternForest,
    width_bound: Optional[int],
    graph: RDFGraph,
    method: str,
    width: Optional[int],
    warm_engine: Optional[Engine] = None,
    parent_version: Optional[int] = None,
    budget: Optional[Budget] = None,
    faults: Optional[object] = None,
) -> None:
    if warm_engine is not None:
        # Fork path: the parent's engine (and its warmed cache) arrives by
        # address, not by pickle; reuse it directly.
        engine = warm_engine
    else:
        engine = Engine(forest=forest, width_bound=width_bound, cache=EvaluationCache())
        cache = engine.cache
        if cache is not None:
            plan = engine.plan(method, width)
            plan.strategy_obj.warm(engine.forest, graph, plan, cache)
    if engine.cache is not None:
        engine.cache.collect_deltas()
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["method"] = method
    _WORKER_STATE["width"] = width
    _WORKER_STATE["trees"] = list(forest)
    _WORKER_STATE["parent_version"] = parent_version
    _WORKER_STATE["base_version"] = graph.version
    _WORKER_STATE["budget"] = budget
    _WORKER_STATE["faults"] = faults


def _export_membership_delta() -> Optional[CacheDelta]:
    """The membership worker's learned-state delta since the last export."""
    engine: Engine = _WORKER_STATE["engine"]  # type: ignore[assignment]
    if engine.cache is None:
        return None
    graph: RDFGraph = _WORKER_STATE["graph"]  # type: ignore[assignment]
    # Stamp with the parent's version only while our copy is unmutated.
    stamp = (
        _WORKER_STATE["parent_version"]
        if graph.version == _WORKER_STATE["base_version"]
        else None
    )
    delta = engine.cache.export_delta(
        [graph], _WORKER_STATE["trees"], [stamp]  # type: ignore[arg-type]
    )
    faults = _WORKER_STATE.get("faults")
    if faults is not None:
        delta = faults.tamper_delta(delta)  # type: ignore[union-attr]
    return delta


def _worker_contains(task: Tuple[int, Mapping]) -> Tuple[bool, Optional[CacheDelta]]:
    """One verdict + delta per task — the streaming (check_iter) shape."""
    position, mu = task
    engine: Engine = _WORKER_STATE["engine"]  # type: ignore[assignment]
    graph: RDFGraph = _WORKER_STATE["graph"]  # type: ignore[assignment]
    faults = _WORKER_STATE.get("faults")
    if faults is not None:
        faults.fire(position, graph)  # type: ignore[union-attr]
    answer = engine.contains(
        graph,
        mu,
        method=_WORKER_STATE["method"],  # type: ignore[arg-type]
        width=_WORKER_STATE["width"],  # type: ignore[arg-type]
        budget=_WORKER_STATE.get("budget"),  # type: ignore[arg-type]
    )
    return answer, _export_membership_delta()


def _worker_contains_chunk(
    task: Tuple[int, List[Mapping]],
) -> Tuple[List[bool], Optional[CacheDelta]]:
    """Many verdicts + one delta per task — the blocking (check_many) shape.

    The blocking path absorbs deltas only after the chunk returns, so
    shipping one per mapping would pay per-message pickling for zero
    latency gain; the parent chunks the batch instead.
    """
    position, mappings = task
    engine: Engine = _WORKER_STATE["engine"]  # type: ignore[assignment]
    graph: RDFGraph = _WORKER_STATE["graph"]  # type: ignore[assignment]
    faults = _WORKER_STATE.get("faults")
    if faults is not None:
        faults.fire(position, graph)  # type: ignore[union-attr]
    answers = [
        engine.contains(
            graph,
            mu,
            method=_WORKER_STATE["method"],  # type: ignore[arg-type]
            width=_WORKER_STATE["width"],  # type: ignore[arg-type]
            budget=_WORKER_STATE.get("budget"),  # type: ignore[arg-type]
        )
        for mu in mappings
    ]
    return answers, _export_membership_delta()


# Enumeration workers are initialised once per pool with every forest and
# graph the batch touches (pickled once per worker under non-fork start
# methods) and then receive cells as plain index triples.  With the ``fork``
# start method the parent warms its cache first and hands its **live
# session** to the initializer — fork does not pickle initargs, so every
# worker starts with the parent's target indexes, memoized homomorphism
# lists and child-test verdicts already in (copy-on-write shared) memory
# instead of rebuilding them from scratch.  Streaming pools additionally
# receive a bounded result queue: workers push fixed-size solution chunks
# while they enumerate (backpressured by the queue bound) instead of
# returning whole cells.

# fork-safe: rebound wholesale by _init_enum_worker in every worker process
# before any task runs, and never read in the parent — fork-inherited
# contents are inert, so worker writes cannot leak across the boundary.
_ENUM_STATE: Dict[str, object] = {}


def _init_enum_worker(
    forests: List[WDPatternForest],
    graphs: List[RDFGraph],
    method: str,
    warm_session: Optional["Session"] = None,
    parent_versions: Optional[List[int]] = None,
    result_queue: Optional[object] = None,
    chunk_size: int = 1,
    budget: Optional[Budget] = None,
    faults: Optional[object] = None,
) -> None:
    if warm_session is not None:
        # Fork path: the parent's session (engines + warmed cache) arrives
        # by address, not by pickle; reuse it directly.
        session = warm_session
    else:
        session = Session()
    session.cache.collect_deltas()
    _ENUM_STATE["session"] = session
    _ENUM_STATE["forests"] = forests
    _ENUM_STATE["graphs"] = graphs
    _ENUM_STATE["method"] = method
    _ENUM_STATE["trees"] = [tree for forest in forests for tree in forest]
    _ENUM_STATE["parent_versions"] = (
        parent_versions if parent_versions is not None else [g.version for g in graphs]
    )
    _ENUM_STATE["base_versions"] = [g.version for g in graphs]
    _ENUM_STATE["queue"] = result_queue
    _ENUM_STATE["chunk_size"] = chunk_size
    _ENUM_STATE["budget"] = budget
    _ENUM_STATE["faults"] = faults


def _export_enum_delta() -> Optional[CacheDelta]:
    """The worker's learned-state delta since the last export (or ``None``)."""
    session: "Session" = _ENUM_STATE["session"]  # type: ignore[assignment]
    graphs: List[RDFGraph] = _ENUM_STATE["graphs"]  # type: ignore[assignment]
    stamps = [
        parent if graph.version == base else None
        for graph, base, parent in zip(
            graphs,
            _ENUM_STATE["base_versions"],  # type: ignore[arg-type]
            _ENUM_STATE["parent_versions"],  # type: ignore[arg-type]
        )
    ]
    delta = session.cache.export_delta(graphs, _ENUM_STATE["trees"], stamps)  # type: ignore[arg-type]
    faults = _ENUM_STATE.get("faults")
    if faults is not None:
        delta = faults.tamper_delta(delta)  # type: ignore[union-attr]
    return delta


def _enum_worker_cell(
    task: Tuple[int, int, int],
) -> Tuple[Set[Mapping], Optional[CacheDelta]]:
    """Enumerate one distinct (pattern, graph) cell in a worker process.

    Only forests cross the process boundary (the picklable normal form); the
    naive strategy evaluates the pattern rebuilt from the forest, which has
    the same solutions by the normal-form semantics.  The returned delta
    carries whatever the worker memoized for the cell.
    """
    position, forest_index, graph_index = task
    session: "Session" = _ENUM_STATE["session"]  # type: ignore[assignment]
    graph: RDFGraph = _ENUM_STATE["graphs"][graph_index]  # type: ignore[index]
    faults = _ENUM_STATE.get("faults")
    if faults is not None:
        faults.fire(position, graph)  # type: ignore[union-attr]
    answers = session.solutions(
        _ENUM_STATE["forests"][forest_index],  # type: ignore[index]
        graph,
        method=_ENUM_STATE["method"],  # type: ignore[arg-type]
        budget=_ENUM_STATE.get("budget"),  # type: ignore[arg-type]
    )
    return answers, _export_enum_delta()


def _enum_stream_worker_cell(task: Tuple[int, int, int]) -> int:
    """Stream one cell's solutions back in fixed-size chunks over the queue.

    Messages are ``("chunk", position, [mappings])`` while enumerating,
    ``("done", position, [tail mappings], delta)`` on completion,
    ``("deadline", position, description)`` when the cell's budget trips,
    and ``("error", position, description)`` on any other failure.  The
    queue is bounded, so a slow parent backpressures the workers instead of
    buffering whole cells in the pipe.  Every task ends with exactly one
    terminal message (or a dead worker, which the parent detects) — the
    parent counts terminals, so a cell can never go missing silently.
    """
    position, forest_index, graph_index = task
    queue = _ENUM_STATE["queue"]
    chunk_size: int = _ENUM_STATE["chunk_size"]  # type: ignore[assignment]
    session: "Session" = _ENUM_STATE["session"]  # type: ignore[assignment]
    graph: RDFGraph = _ENUM_STATE["graphs"][graph_index]  # type: ignore[index]
    faults = _ENUM_STATE.get("faults")
    try:
        if faults is not None:
            faults.fire(position, graph)  # type: ignore[union-attr]
        buffer: List[Mapping] = []
        for mu in session.solutions_stream(
            _ENUM_STATE["forests"][forest_index],  # type: ignore[index]
            graph,
            method=_ENUM_STATE["method"],  # type: ignore[arg-type]
            budget=_ENUM_STATE.get("budget"),  # type: ignore[arg-type]
        ):
            buffer.append(mu)
            if len(buffer) >= chunk_size:
                queue.put(("chunk", position, buffer))  # type: ignore[union-attr]
                buffer = []
        delta = _export_enum_delta()
        if faults is not None and faults.drop_done(position):  # type: ignore[union-attr]
            return position  # injected silent loss: swallow the terminal event
        queue.put(("done", position, buffer, delta))  # type: ignore[union-attr]
    except DeadlineExceeded as error:
        queue.put(("deadline", position, str(error)))  # type: ignore[union-attr]
    except Exception as error:  # surfaced parent-side as an EvaluationError
        queue.put(("error", position, f"{type(error).__name__}: {error}"))  # type: ignore[union-attr]
    return position


# --- crash detection ----------------------------------------------------------


class _PoolWatch:
    """Observe a pool's worker processes and report deaths.

    ``multiprocessing.Pool`` never surfaces a SIGKILLed worker: the task it
    was running simply never completes.  This watch keeps its own handle on
    every worker ``Process`` the pool spawns (including respawned
    replacements) and reports each nonzero exit exactly once.  It reads the
    pool's private ``_pool`` list behind ``getattr`` guards — if a future
    stdlib drops the attribute, detection degrades to "no crashes observed"
    rather than breaking.
    """

    def __init__(self, pool) -> None:
        self._pool = pool
        self._seen: Dict[int, object] = {}
        self._accounted: Set[int] = set()
        #: Total nonzero worker exits observed so far.
        self.crashes = 0
        self.poll()

    def poll(self) -> int:
        """Newly observed worker deaths since the previous poll."""
        for proc in getattr(self._pool, "_pool", None) or ():
            pid = getattr(proc, "pid", None)
            if pid is not None and pid not in self._seen:
                self._seen[pid] = proc
        fresh = 0
        for pid, proc in self._seen.items():
            if pid in self._accounted:
                continue
            exitcode = getattr(proc, "exitcode", None)
            if exitcode is None:
                continue  # still running
            self._accounted.add(pid)
            if exitcode != 0:  # clean exits (pool shutdown) are not crashes
                fresh += 1
        self.crashes += fresh
        return fresh


# --- worker-mode introspection ------------------------------------------------

_warned_cold_pool = False


def _start_method() -> str:
    """The effective multiprocessing start method (monkeypatchable seam).

    Uses ``allow_none`` so that pure introspection (``worker_mode()``,
    ``repr``) never fixes the default context as a side effect — a later
    ``multiprocessing.set_start_method()`` in application code must still
    work.  While unfixed, the platform default (the first entry of
    ``get_all_start_methods()``) is what a pool would use.
    """
    method = multiprocessing.get_start_method(allow_none=True)
    if method is None:
        method = multiprocessing.get_all_start_methods()[0]
    return method


def _warn_cold_pool(start_method: str) -> None:
    """One-time warning: ``warm_on_fork=True`` cannot engage without fork."""
    global _warned_cold_pool
    if _warned_cold_pool:
        return
    _warned_cold_pool = True
    warnings.warn(
        f"warm_on_fork=True has no effect under the {start_method!r} start "
        "method: worker pools start cold (workers rebuild the µ-independent "
        "state in their initializer; learned state still returns through the "
        "CacheDelta channel).  Check Session.worker_mode() for the effective "
        "mode.",
        RuntimeWarning,
        stacklevel=4,
    )


class Session:
    """Evaluate many patterns against many graphs through one shared cache.

    The service-layer front door: engines are memoized per pattern
    (structurally for :class:`~repro.sparql.algebra.GraphPattern` inputs),
    every ``method=`` resolves through the pattern's cost-based
    :class:`~repro.evaluation.plan.Planner` (:meth:`plan` / :meth:`explain`
    expose the decision per graph), :meth:`check_many` batches membership,
    :meth:`solutions_many` batches enumeration, and :meth:`solutions_iter`
    streams batched enumeration results as cells complete.  Parallel entry
    points warm the µ-independent cache state before forking so workers
    inherit hot indexes, kernels, homomorphism lists and recorded answer
    lists.  Every cache/pool/warm feature is answer-preserving, and every
    pool path recovers from worker crashes (retry once, then serial re-run
    in the parent) without losing or duplicating answers.

    **Thread safety.**  One session may be driven from multiple threads —
    the :class:`~repro.service.QueryService` evaluates requests on a
    thread pool over one shared session.  The engine memo and the
    session-lifetime resilience counters are lock-guarded here, and the
    shared :class:`~repro.evaluation.cache.EvaluationCache` serializes its
    own structural operations (see its module docs).  The contract is
    *safe for concurrent readers of unmutated graphs*: callers that mutate
    a served graph must serialize the mutation against in-flight calls
    themselves (the service does this with its reader/writer gate).

    Parameters
    ----------
    cache:
        The shared :class:`~repro.evaluation.cache.EvaluationCache`; a fresh
        one is created when omitted (bounded by *max_entries_per_graph*).
    processes:
        Default worker-pool size for the batched entry points; ``None`` (or
        1) keeps everything serial.  Per-call ``processes=`` overrides it.
    max_entries_per_graph:
        Budget for the implicitly created cache (ignored when *cache* is
        given); see :class:`~repro.evaluation.cache.EvaluationCache`.
    max_engines:
        Bound on the engine memo; the least recently used engines (and the
        pins on their source patterns) are evicted first.  ``None`` (the
        default) means unbounded — like the cache, prefer a bound for
        long-lived sessions serving a stream of distinct ad-hoc patterns.
    warm_on_fork:
        Whether batched parallel membership warms the µ-independent cache
        state in the parent before forking workers (default ``True``; see
        :meth:`warm`).  On start methods other than ``fork`` warming cannot
        engage — the session then emits a one-time :class:`RuntimeWarning`
        and runs the pool cold (see :meth:`worker_mode`).
    stream_chunk_size:
        How many solutions a parallel :meth:`solutions_iter` worker bundles
        per IPC message (default 16).  Smaller chunks lower the latency to
        the first solution of a cell; larger chunks lower the queue
        overhead.  Per-call ``chunk_size=`` overrides it.
    stream_grace_seconds:
        How long a pool path waits on a **silent** result channel before
        acting (default 5.0).  After a worker crash, silence this long
        triggers serial degradation of the unfinished work (a killed worker
        can poison the shared task queue, wedging the survivors); without a
        crash, it is how long the streaming path keeps draining after every
        worker returned before declaring missing terminal events an error.
        Liveness-based: any message or crash observation resets the clock,
        so slow cells are never cut off — only genuinely dead channels.
    faults:
        Test-only :class:`~repro.evaluation.faults.FaultPlan` injecting
        deterministic worker faults into the pool paths; ``None`` (always,
        in production) disables injection entirely.

    >>> from repro.sparql import parse_pattern
    >>> from repro.rdf import RDFGraph, Triple
    >>> from repro.sparql.mappings import Mapping
    >>> session = Session()
    >>> g = RDFGraph([Triple.of("a", "knows", "b")])
    >>> p = parse_pattern("((?x knows ?y) OPT (?y email ?e))")
    >>> session.check_many(p, g, [Mapping.of(x="a", y="b")])
    [True]
    """

    def __init__(
        self,
        cache: Optional[EvaluationCache] = None,
        processes: Optional[int] = None,
        max_entries_per_graph: Optional[int] = None,
        max_engines: Optional[int] = None,
        warm_on_fork: bool = True,
        stream_chunk_size: int = 16,
        stream_grace_seconds: float = 5.0,
        faults: Optional[object] = None,
    ) -> None:
        if processes is not None and processes < 1:
            raise EvaluationError("processes must be a positive integer")
        if max_engines is not None and max_engines < 1:
            raise EvaluationError("max_engines must be a positive integer")
        if stream_chunk_size < 1:
            raise EvaluationError("stream_chunk_size must be a positive integer")
        if stream_grace_seconds <= 0:
            raise EvaluationError("stream_grace_seconds must be positive")
        self._cache = (
            cache if cache is not None else EvaluationCache(max_entries_per_graph)
        )
        self._context = EvalContext(
            cache=self._cache,
            processes=processes,
            warm_on_fork=warm_on_fork,
            stream_chunk_size=stream_chunk_size,
            faults=faults,
        )
        self._max_engines = max_engines
        self._stream_grace_seconds = float(stream_grace_seconds)
        self._faults = faults
        # Session-lifetime resilience counters; per-call `statistics=`
        # arguments additionally receive the events of their own call.
        self._statistics = EvaluationStatistics()
        # Engine memo: key -> (source object, engine), insertion-ordered by
        # recency (hits re-insert).  The source reference keeps id()-based
        # keys valid while the entry lives; eviction drops both.
        self._engines: Dict[object, Tuple[object, Engine]] = {}
        # Guards the engine memo (the LRU hit pops and re-inserts) and the
        # session-lifetime resilience counters: the query service drives one
        # session from many threads, and the shared EvaluationCache already
        # carries its own lock.  See the class docstring's thread-safety
        # paragraph.
        self._memo_lock = threading.Lock()

    # --- introspection -----------------------------------------------------
    @property
    def cache(self) -> EvaluationCache:
        """The evaluation cache shared by every engine of this session."""
        return self._cache

    @property
    def context(self) -> EvalContext:
        """The base evaluation context (cache + pool settings)."""
        return self._context

    @property
    def engine_count(self) -> int:
        """How many engines the session currently memoizes."""
        with self._memo_lock:
            return len(self._engines)

    @property
    def statistics(self) -> EvaluationStatistics:
        """Session-lifetime counters (resilience events accumulate here
        across calls; see
        :meth:`EvaluationStatistics.resilience_summary
        <repro.evaluation.wdeval.EvaluationStatistics.resilience_summary>`)."""
        # Documented live-counter publication: the object reference is fixed
        # for the session's lifetime (only the counters inside mutate, under
        # _memo_lock via _note/_trip), so handing it out unlocked is safe.
        return self._statistics  # repro: ignore[RP-GUARD]

    def __repr__(self) -> str:
        return (
            f"Session(<{self.engine_count} engines, "
            f"processes={self._context.processes}, "
            f"workers={self.worker_mode()}>)"
        )

    def worker_mode(self, processes: Optional[int] = None) -> str:
        """The effective worker mode of this session's parallel entry points.

        One of ``"serial"`` (no pool would be used), ``"fork-warm"`` (fork
        start method, workers inherit the warmed parent state),
        ``"fork-cold"`` (fork, but ``warm_on_fork=False``), or the start
        method name (``"spawn"`` / ``"forkserver"``) when forking is
        unavailable — in which case ``warm_on_fork=True`` cannot engage and
        pools run cold.  This is what the one-time cold-pool warning points
        at, and what ``batch --stats`` prints.  Once the session has seen
        resilience events (worker crashes, serial degradations, deadline
        trips, lost cells) the mode string carries a bracketed summary.
        """
        processes = processes if processes is not None else self._context.processes
        if processes is None or processes <= 1:
            mode = "serial"
        else:
            start_method = _start_method()
            if start_method == "fork":
                mode = "fork-warm" if self._context.warm_on_fork else "fork-cold"
            else:
                mode = start_method
        with self._memo_lock:
            s = self._statistics
            eventful = bool(
                s.worker_crashes
                or s.cells_degraded_serial
                or s.deadline_trips
                or s.cells_lost
            )
            summary = s.resilience_summary() if eventful else ""
        if eventful:
            return f"{mode} [{summary}]"
        return mode

    # --- resilience plumbing ------------------------------------------------
    def _note(
        self,
        attr: str,
        n: int = 1,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> None:
        """Bump a resilience counter on the session (and per-call) stats."""
        with self._memo_lock:
            setattr(self._statistics, attr, getattr(self._statistics, attr) + n)
        if statistics is not None:
            setattr(statistics, attr, getattr(statistics, attr) + n)

    def _trip(
        self, statistics: Optional[EvaluationStatistics], exc: DeadlineExceeded
    ) -> None:
        """Account a deadline trip once, wherever it was first raised."""
        with self._memo_lock:
            self._statistics.deadline_trips += 1
        if statistics is not None and exc.statistics is not statistics:
            # Not yet accounted on this object by a lower layer (Engine
            # attaches the statistics it bumped to the exception).
            statistics.deadline_trips += 1
            if exc.statistics is None:
                exc.statistics = statistics

    def _armed_faults(self, ctx) -> Optional[object]:
        """The session's fault plan, armed for *ctx* (``None`` in production)."""
        if self._faults is None:
            return None
        return self._faults.arm(ctx)  # type: ignore[union-attr]

    @staticmethod
    def _harvest(result):
        """Unwrap one async result, normalising raw escapes to ReproError.

        Library exceptions (including :class:`DeadlineExceeded`) pass
        through unchanged; transport-layer failures (broken pipes, EOF on a
        dead connection) become :class:`WorkerCrashError`; anything else a
        worker raised becomes :class:`EvaluationError` — no raw
        ``multiprocessing`` exception ever escapes a session entry point.
        """
        try:
            return result.get()
        except ReproError:
            raise
        except (OSError, EOFError, multiprocessing.ProcessError) as error:
            raise WorkerCrashError(
                f"worker result lost to a transport failure: "
                f"{type(error).__name__}: {error}"
            ) from None
        except Exception as error:
            raise EvaluationError(
                f"evaluation worker failed: {type(error).__name__}: {error}"
            ) from error

    def _supervise(
        self,
        pool,
        func,
        tasks: Sequence[object],
        serial_fallback,
        budget: Optional[Budget] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> Iterator[Tuple[int, object]]:
        """Run *tasks* through *pool* with crash detection and bounded retry.

        Every task is submitted individually (``apply_async``) and the
        pool's worker processes are watched for deaths; recovery follows a
        three-rung ladder:

        1. healthy pool — results are harvested as they become ready;
        2. after a crash, every unfinished task is resubmitted once on the
           surviving/respawned workers (first completion wins, so a task
           that was healthy all along is never answered twice);
        3. a task whose retry is also lost — or any task still unfinished
           once post-crash silence outlasts ``stream_grace_seconds`` (a
           killed worker can die holding the shared task-queue lock and
           wedge the survivors) — is re-run serially in the parent through
           *serial_fallback*.

        Yields ``(position, value)`` exactly once per task, in completion
        order.  A *budget* is checked between sweeps, so a deadline fires
        promptly even while the pool is quiet.
        """
        watch = _PoolWatch(pool)
        pending: Dict[int, List[object]] = {}
        attempts: Dict[int, int] = {}

        def submit(position: int) -> bool:
            try:
                pending.setdefault(position, []).append(
                    pool.apply_async(func, (tasks[position],))
                )
                return True
            except Exception:  # pool already broken/closed: degrade
                return False

        def degrade(position: int) -> Tuple[int, object]:
            pending.pop(position, None)
            self._note("cells_degraded_serial", statistics=statistics)
            return position, serial_fallback(position)

        for position in range(len(tasks)):
            attempts[position] = 1
            if not submit(position):
                yield degrade(position)
        last_progress = monotonic()
        while pending:
            if budget is not None:
                budget.check()  # raises DeadlineExceeded; pool exits with us
            progressed = False
            for position in sorted(pending):
                value, completed = None, False
                for result in pending[position]:
                    if result.ready():
                        value = self._harvest(result)
                        completed = True
                        break
                if completed:
                    del pending[position]
                    progressed = True
                    last_progress = monotonic()
                    yield position, value
            if not pending:
                break
            fresh = watch.poll()
            if fresh:
                self._note("worker_crashes", fresh, statistics)
                last_progress = monotonic()
                sleep(_CRASH_BACKOFF_SECONDS)
                # The dying worker's in-flight task is unknowable from the
                # outside, so resubmit *all* unfinished tasks; duplicates
                # are harmless (first completion wins) and the common case
                # is a handful of stragglers.
                for position in sorted(pending):
                    attempts[position] += 1
                    if attempts[position] > _MAX_TASK_ATTEMPTS or not submit(position):
                        yield degrade(position)
            elif watch.crashes and monotonic() - last_progress >= self._stream_grace_seconds:
                # Post-crash stall: the retry never surfaced either (e.g. a
                # poisoned task queue).  Stop waiting on the pool entirely.
                for position in sorted(pending):
                    yield degrade(position)
            if pending and not progressed:
                sleep(0.005)

    # --- engines -----------------------------------------------------------
    def engine(self, pattern: PatternLike, width_bound: Optional[int] = None) -> Engine:
        """The session engine for *pattern*, created once and memoized.

        Accepts a :class:`~repro.sparql.algebra.GraphPattern` (memoized
        structurally, so equal patterns share one engine), a
        :class:`~repro.patterns.forest.WDPatternForest`, or an existing
        :class:`Engine` (re-wired onto the session cache when necessary).
        """
        if isinstance(pattern, Engine):
            if pattern.cache is self._cache and width_bound is None:
                # Already wired to this session (typically one of our own
                # memoized engines routed back in): use it as-is.  No memo
                # entry — the caller holds the reference, and re-memoizing
                # under a second id-based key would defeat the LRU bound.
                return pattern
            key = ("engine", id(pattern), width_bound)
        elif isinstance(pattern, GraphPattern):
            key = ("pattern", pattern, width_bound)
        elif isinstance(pattern, WDPatternForest):
            key = ("forest", id(pattern), width_bound)
        else:
            raise EvaluationError(
                f"expected an Engine, GraphPattern or WDPatternForest, "
                f"got {type(pattern).__name__}"
            )
        with self._memo_lock:
            hit = self._engines.pop(key, None)
            if hit is not None:
                self._engines[key] = hit  # re-insert at the recent end (LRU)
                return hit[1]
        if isinstance(pattern, Engine):
            engine = Engine(
                pattern.pattern,
                pattern.forest,
                width_bound if width_bound is not None else pattern.width_bound,
                cache=self._cache,
            )
        elif isinstance(pattern, WDPatternForest):
            engine = Engine(forest=pattern, width_bound=width_bound, cache=self._cache)
        else:
            engine = Engine(pattern, width_bound=width_bound, cache=self._cache)
        with self._memo_lock:
            # A concurrent builder may have memoized the same structural key
            # while this engine was constructed; keep the first one so every
            # thread converges on a single shared engine.
            hit = self._engines.pop(key, None)
            if hit is not None:
                self._engines[key] = hit
                return hit[1]
            if self._max_engines is not None:
                while len(self._engines) >= self._max_engines:
                    self._engines.pop(next(iter(self._engines)))
            self._engines[key] = (pattern, engine)
        return engine

    # --- planning ----------------------------------------------------------
    def plan(
        self,
        pattern: PatternLike,
        method: str = "auto",
        width: Optional[int] = None,
        graph: Optional[RDFGraph] = None,
    ) -> Plan:
        """The plan :meth:`check` would execute for this pattern/method.

        With a *graph* the plan is resolved per ``(pattern, graph)`` cell
        through the cost model and carries the
        :class:`~repro.evaluation.plan.CostEstimate` — exactly what
        :meth:`check` / :meth:`check_many` run against that graph.
        """
        return self.engine(pattern).plan(method, width, graph=graph)

    def explain(
        self,
        pattern: PatternLike,
        method: str = "auto",
        width: Optional[int] = None,
        graph: Optional[RDFGraph] = None,
    ) -> str:
        """Human-readable account of the strategy choice (see :meth:`plan`)."""
        return self.plan(pattern, method, width, graph=graph).explain()

    # --- membership --------------------------------------------------------
    def check(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        mu: Mapping,
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> bool:
        """Decide ``µ ∈ ⟦P⟧G`` through the session cache.

        ``deadline`` (seconds) or an explicit ``budget`` bounds the check;
        a violation raises :class:`~repro.exceptions.DeadlineExceeded`.
        """
        try:
            return self.engine(pattern).contains(
                graph,
                mu,
                method=method,
                width=width,
                statistics=statistics,
                deadline=deadline,
                budget=budget,
            )
        except DeadlineExceeded as exc:
            self._trip(statistics, exc)
            raise

    def check_many(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        mappings: Iterable[Mapping],
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
        processes: Optional[int] = None,
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> List[bool]:
        """Decide ``µ ∈ ⟦P⟧G`` for every mapping, in input order.

        Guaranteed to return exactly the booleans a loop of
        :meth:`Engine.contains` calls would, but sharing the cache across
        instances, deduplicating repeated mappings, resolving the method
        once per batch, and — when *processes* (or the session default) asks
        for it — fanning the instances out over a worker pool.  The pool is
        crash-tolerant: tasks of a killed worker are retried once and then
        re-run serially in the parent (events are counted on *statistics*
        and on :attr:`statistics`).  ``deadline``/``budget`` bound the whole
        batch, parent and workers alike; a violation raises
        :class:`~repro.exceptions.DeadlineExceeded`.

        The algorithmic counters of *statistics* (trees visited, child
        checks, ...) are only accumulated on the serial path; worker-side
        counters are not collected.
        """
        engine = self.engine(pattern)
        mappings = list(mappings)
        if not mappings:
            return []
        run_budget = budget_from(deadline, budget)
        plan = engine.plan(method, width, graph=graph)
        strategy = plan.strategy_obj
        unique: List[Mapping] = []
        seen: Set[Mapping] = set()
        for mu in mappings:
            if mu not in seen:
                seen.add(mu)
                unique.append(mu)

        processes = processes if processes is not None else self._context.processes
        try:
            if run_budget is not None:
                run_budget.check()  # pre-expired budgets trip up front
            if (
                processes is not None
                and processes > 1
                and len(unique) > 1
                and strategy.parallel_safe
            ):
                answers = dict(
                    zip(
                        unique,
                        self._parallel_contains(
                            engine, graph, unique, plan, processes, run_budget, statistics
                        ),
                    )
                )
            else:
                context = self._context.with_statistics(statistics).with_budget(
                    run_budget
                )
                answers = dict(
                    zip(
                        unique,
                        strategy.contains_many(
                            engine.pattern, engine.forest, graph, unique, plan, context
                        ),
                    )
                )
        except DeadlineExceeded as exc:
            self._trip(statistics, exc)
            raise
        return [answers[mu] for mu in mappings]

    def check_iter(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        mappings: Iterable[Mapping],
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
        processes: Optional[int] = None,
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> Iterator[bool]:
        """Stream the verdicts of :meth:`check_many`, in input order.

        Yields exactly the booleans :meth:`check_many` would return over the
        same arguments, but incrementally — each verdict as soon as it is
        decided, instead of blocking until the whole batch is done (what
        ``batch --stream`` prints).  Repeated mappings replay their first
        verdict.  With *processes* (or the session default) the distinct
        mappings fan out over the same crash-tolerant worker pool as
        :meth:`check_many` and the workers' learned state is absorbed back
        into the session cache; the algorithmic *statistics* counters are
        only accumulated on the serial path.  ``deadline``/``budget`` bound
        the whole stream and raise
        :class:`~repro.exceptions.DeadlineExceeded` mid-iteration.
        """
        engine = self.engine(pattern)
        mappings = list(mappings)
        if not mappings:
            return
        run_budget = budget_from(deadline, budget)
        plan = engine.plan(method, width, graph=graph)
        strategy = plan.strategy_obj
        unique: List[Mapping] = []
        seen: Set[Mapping] = set()
        for mu in mappings:
            if mu not in seen:
                seen.add(mu)
                unique.append(mu)
        processes = processes if processes is not None else self._context.processes
        try:
            if run_budget is not None:
                run_budget.check()  # pre-expired budgets trip up front
            if (
                processes is not None
                and processes > 1
                and len(unique) > 1
                and strategy.parallel_safe
            ):
                yield from self._parallel_check_iter(
                    engine, graph, mappings, unique, plan, processes, run_budget, statistics
                )
                return
            known: Dict[Mapping, bool] = {}
            for mu in mappings:
                if mu not in known:
                    known[mu] = engine.contains(
                        graph,
                        mu,
                        method=method,
                        width=width,
                        statistics=statistics,
                        budget=run_budget,
                    )
                yield known[mu]
        except DeadlineExceeded as exc:
            self._trip(statistics, exc)
            raise

    def _parallel_check_iter(
        self,
        engine: Engine,
        graph: RDFGraph,
        mappings: Sequence[Mapping],
        unique: Sequence[Mapping],
        plan: Plan,
        processes: int,
        budget: Optional[Budget] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> Iterator[bool]:
        """Fan distinct mappings out and yield verdicts in input order.

        Tasks are supervised individually (see :meth:`_supervise`), so a
        crashed worker costs one retry — or, at worst, a serial re-check in
        the parent — never a hung iterator; the k-th input mapping's verdict
        is released as soon as its distinct instance is decided.
        """
        processes = min(processes, len(unique))
        ctx, warm_engine = self._membership_pool_setup(engine, graph, plan)
        faults = self._armed_faults(ctx)
        trees = list(engine.forest)
        tasks: List[Tuple[int, Mapping]] = list(enumerate(unique))
        index_of = {mu: position for position, mu in tasks}

        def fallback(position: int):
            return (
                engine.contains(
                    graph,
                    unique[position],
                    method=plan.strategy,
                    width=plan.width,
                    budget=budget,
                ),
                None,
            )

        with ctx.Pool(
            processes,
            initializer=_init_worker,
            initargs=(
                engine.forest,
                engine.width_bound,
                graph,
                plan.strategy,
                plan.width,
                warm_engine,
                graph.version,
                budget,
                faults,
            ),
        ) as pool:
            supervised = self._supervise(
                pool, _worker_contains, tasks, fallback, budget, statistics
            )
            verdicts: Dict[int, bool] = {}
            for mu in mappings:
                wanted = index_of[mu]
                while wanted not in verdicts:
                    position, (answer, delta) = next(supervised)
                    if delta is not None:
                        self._cache.absorb(delta, [graph], trees)
                    verdicts[position] = answer
                yield verdicts[wanted]

    def _membership_pool_setup(
        self, engine: Engine, graph: RDFGraph, plan: Plan
    ) -> Tuple[object, Optional[Engine]]:
        """Warm (or warn) before a membership pool; returns (ctx, warm_engine)."""
        ctx = multiprocessing.get_context()
        warm_engine: Optional[Engine] = None
        start_method = _start_method()
        if start_method == "fork" and self._context.warm_on_fork:
            # Build the µ-independent state once in the parent so the workers
            # fork with warm kernels/indexes instead of rebuilding them.  No
            # mappings here on purpose: per-mapping witness-subtree lookups
            # would serialise in the parent (Amdahl); workers do those in
            # parallel against the copy-on-write shared kernels.
            plan.strategy_obj.warm(engine.forest, graph, plan, self._cache)
            warm_engine = engine
        elif self._context.warm_on_fork:
            _warn_cold_pool(start_method)
        return ctx, warm_engine

    def _parallel_contains(
        self,
        engine: Engine,
        graph: RDFGraph,
        mappings: Sequence[Mapping],
        plan: Plan,
        processes: int,
        budget: Optional[Budget] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> List[bool]:
        processes = min(processes, len(mappings))
        chunksize = max(1, len(mappings) // (processes * 4))
        chunks = [
            list(mappings[start : start + chunksize])
            for start in range(0, len(mappings), chunksize)
        ]
        ctx, warm_engine = self._membership_pool_setup(engine, graph, plan)
        faults = self._armed_faults(ctx)
        trees = list(engine.forest)
        tasks: List[Tuple[int, List[Mapping]]] = list(enumerate(chunks))

        def fallback(position: int):
            return (
                [
                    engine.contains(
                        graph, mu, method=plan.strategy, width=plan.width, budget=budget
                    )
                    for mu in chunks[position]
                ],
                None,
            )

        collected: Dict[int, List[bool]] = {}
        with ctx.Pool(
            processes,
            initializer=_init_worker,
            initargs=(
                engine.forest,
                engine.width_bound,
                graph,
                plan.strategy,
                plan.width,
                warm_engine,
                graph.version,
                budget,
                faults,
            ),
        ) as pool:
            for position, (chunk_answers, delta) in self._supervise(
                pool, _worker_contains_chunk, tasks, fallback, budget, statistics
            ):
                if delta is not None:
                    self._cache.absorb(delta, [graph], trees)
                collected[position] = chunk_answers
        answers: List[bool] = []
        for position in range(len(chunks)):
            answers.extend(collected[position])
        return answers

    def warm(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        mappings: Optional[Iterable[Mapping]] = None,
        method: str = "auto",
        width: Optional[int] = None,
    ) -> int:
        """Precompute the µ-independent evaluation state for *graph*.

        For the pebble strategy this builds the shared target index, the
        graph domain, and the consistency kernels of every ``(witness
        subtree, child)`` instance the given *mappings* reach (the
        root-subtree instances when no mappings are given); for the natural
        strategy it builds the target index.  Returns the number of kernels
        ensured.  Warming is a pure performance feature — answers are
        identical with and without it — and is what :meth:`check_many` does
        before forking a worker pool.
        """
        engine = self.engine(pattern)
        plan = engine.plan(method, width, graph=graph)
        return plan.strategy_obj.warm(engine.forest, graph, plan, self._cache, mappings)

    # --- enumeration -------------------------------------------------------
    def solutions_stream(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        method: str = "auto",
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> Iterator[Mapping]:
        """Stream ``⟦P⟧G`` lazily as a deduplicated generator.

        ``method="auto"`` resolves to the natural strategy (the planner
        rejects the pebble strategy, which decides membership only).  A
        violated ``deadline``/``budget`` raises
        :class:`~repro.exceptions.DeadlineExceeded` mid-stream.
        """
        return self.engine(pattern).solutions_stream(graph, method, deadline, budget)

    def _cell_solutions(
        self,
        engine: Engine,
        graph: RDFGraph,
        method: str,
        budget: Optional[Budget],
    ) -> Set[Mapping]:
        """One cell's full answer set, attaching partials on a deadline trip."""
        partial: Set[Mapping] = set()
        try:
            for mu in engine.solutions_stream(graph, method, budget=budget):
                partial.add(mu)
        except DeadlineExceeded as exc:
            if not exc.partial:
                exc.partial = tuple(partial)
            raise
        return partial

    def solutions(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        method: str = "auto",
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
    ) -> Set[Mapping]:
        """Enumerate the full answer set ``⟦P⟧G`` through the session cache.

        A violated ``deadline``/``budget`` raises
        :class:`~repro.exceptions.DeadlineExceeded` whose ``partial``
        attribute carries the solutions found before the trip.
        """
        try:
            return self._cell_solutions(
                self.engine(pattern), graph, method, budget_from(deadline, budget)
            )
        except DeadlineExceeded as exc:
            self._trip(None, exc)
            raise

    def _distinct_cells(
        self, engines: Sequence[Engine], graph_list: Sequence[RDFGraph]
    ) -> List[Tuple[Engine, RDFGraph, Tuple[int, int]]]:
        """The distinct ``(engine, graph)`` cells in first-occurrence order."""
        seen: Set[Tuple[int, int]] = set()
        order: List[Tuple[Engine, RDFGraph, Tuple[int, int]]] = []
        for engine in engines:
            for graph in graph_list:
                key = (id(engine), id(graph))
                if key not in seen:
                    seen.add(key)
                    order.append((engine, graph, key))
        return order

    def _cached_cell_answers(
        self, engine: Engine, graph: RDFGraph
    ) -> Optional[Set[Mapping]]:
        """The cell's full answer set if the parent cache can replay it.

        A cell replays when every tree of the forest has a recorded complete
        answer list (``⟦T⟧G``) for the current graph version — recorded by an
        earlier serial run or absorbed from a worker's
        :class:`~repro.evaluation.cache.CacheDelta`.  Returns ``None`` when
        any tree is missing; the recorded lists are answer-identical to a
        fresh enumeration by construction, so replaying is method-independent.
        """
        answers: Set[Mapping] = set()
        for tree in engine.forest:
            replay = self._cache.tree_solution_list(tree, graph)
            if replay is None:
                return None
            answers.update(replay)
        return answers

    def _partition_replayable(
        self, order: Sequence[Tuple[Engine, RDFGraph, Tuple[int, int]]]
    ) -> Tuple[
        List[Tuple[Tuple[int, int], Set[Mapping]]],
        List[Tuple[Engine, RDFGraph, Tuple[int, int]]],
    ]:
        """Split cells into (replayed-from-cache, still-to-compute)."""
        replayed: List[Tuple[Tuple[int, int], Set[Mapping]]] = []
        pending: List[Tuple[Engine, RDFGraph, Tuple[int, int]]] = []
        for engine, graph, key in order:
            cached = self._cached_cell_answers(engine, graph)
            if cached is not None:
                replayed.append((key, cached))
            else:
                pending.append((engine, graph, key))
        return replayed, pending

    def _enum_pool_setup(
        self,
        pending: Sequence[Tuple[Engine, RDFGraph, Tuple[int, int]]],
        method: str,
    ) -> Tuple[
        object,
        Optional["Session"],
        List[WDPatternForest],
        List[RDFGraph],
        List[Tuple[int, int, int]],
    ]:
        """Shared pool preamble: dedup ship lists, tasks, warm-or-warn.

        Returns ``(ctx, warm_session, forests, graphs, tasks)`` where tasks
        are ``(position, forest_slot, graph_slot)`` triples indexing into
        *pending* and the ship lists.
        """
        forests: List[WDPatternForest] = []
        forest_index: Dict[int, int] = {}
        graphs: List[RDFGraph] = []
        graph_index: Dict[int, int] = {}
        tasks: List[Tuple[int, int, int]] = []
        for position, (engine, graph, _key) in enumerate(pending):
            fi = forest_index.get(id(engine.forest))
            if fi is None:
                fi = forest_index[id(engine.forest)] = len(forests)
                forests.append(engine.forest)
            gi = graph_index.get(id(graph))
            if gi is None:
                gi = graph_index[id(graph)] = len(graphs)
                graphs.append(graph)
            tasks.append((position, fi, gi))
        ctx = multiprocessing.get_context()
        warm_session: Optional["Session"] = None
        start_method = _start_method()
        if start_method == "fork" and self._context.warm_on_fork:
            # Warm the µ-independent state (target indexes, graph domains)
            # in the parent; forked workers inherit it — together with every
            # homomorphism list and child test this session has already
            # memoized — as copy-on-write shared memory.
            for engine, graph, _key in pending:
                plan = engine.planner.plan_enumeration(method, graph=graph)
                plan.strategy_obj.warm(engine.forest, graph, plan, self._cache)
            warm_session = self
        elif self._context.warm_on_fork:
            _warn_cold_pool(start_method)
        return ctx, warm_session, forests, graphs, tasks

    def _enumerate_distinct(
        self,
        order: Sequence[Tuple[Engine, RDFGraph, Tuple[int, int]]],
        method: str,
        processes: Optional[int],
        budget: Optional[Budget] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> Iterator[Tuple[Tuple[int, int], Set[Mapping]]]:
        """Enumerate every distinct cell, yielding ``(key, answers)`` pairs.

        Serial (``processes`` unset or 1) cells are evaluated lazily in
        submission order through the session cache.  With a pool, cells the
        parent cache can already answer completely are **replayed first
        without touching the pool** (this is what makes a repeated parallel
        batch cheap); the remaining cells fan out to supervised enumeration
        workers (crash ladder: retry once, then serial re-run in the
        parent) and are yielded as they complete.  On the ``fork`` start
        method the parent first warms the µ-independent state of every
        pending cell (respecting ``warm_on_fork``) and workers inherit the
        live session, so they replay memoized searches instead of
        rebuilding caches from scratch; every worker ships its learned
        state back as a :class:`~repro.evaluation.cache.CacheDelta` which
        the parent absorbs before yielding the cell.
        """
        processes = processes if processes is not None else self._context.processes
        if processes is None or processes <= 1 or len(order) <= 1:
            for engine, graph, key in order:
                yield key, self._cell_solutions(engine, graph, method, budget)
            return
        # Validate the method once in the parent, *before* the replay
        # short-circuit (a warm session must reject e.g. "pebble" exactly
        # like a cold one); workers re-resolve per cell so the cost model
        # can still pick naive vs natural per (pattern, graph).
        Planner().plan_enumeration(method)
        replayed, pending = self._partition_replayable(order)
        yield from replayed
        if not pending:
            return
        ctx, warm_session, forests, graphs, tasks = self._enum_pool_setup(
            pending, method
        )
        workers = min(processes, len(pending))
        parent_versions = [graph.version for graph in graphs]
        trees = [tree for forest in forests for tree in forest]
        faults = self._armed_faults(ctx)

        def fallback(position: int):
            engine, graph, _key = pending[position]
            return self._cell_solutions(engine, graph, method, budget), None

        with ctx.Pool(
            workers,
            initializer=_init_enum_worker,
            initargs=(
                forests,
                graphs,
                method,
                warm_session,
                parent_versions,
                None,
                1,
                budget,
                faults,
            ),
        ) as pool:
            for position, (answers, delta) in self._supervise(
                pool, _enum_worker_cell, tasks, fallback, budget, statistics
            ):
                if delta is not None:
                    self._cache.absorb(delta, graphs, trees)
                yield pending[position][2], answers

    def _stream_timeout_report(
        self,
        budget: Optional[Budget],
        cells_done: int,
        outstanding: Set[int],
        solutions_yielded: int,
        statistics: Optional[EvaluationStatistics],
    ) -> TimeoutReport:
        """The terminal report a deadline-tripped streaming batch yields."""
        elapsed, allowance = 0.0, None
        if budget is not None:
            elapsed = budget.elapsed()
            if budget.expires_at is not None:
                allowance = budget.expires_at - budget.started_at
        return TimeoutReport(
            elapsed=elapsed,
            deadline=allowance,
            cells_done=cells_done,
            cells_pending=len(outstanding),
            solutions_yielded=solutions_yielded,
            statistics=statistics,
            pending=tuple(f"cell #{position}" for position in sorted(outstanding)),
        )

    def _stream_distinct(
        self,
        order: Sequence[Tuple[Engine, RDFGraph, Tuple[int, int]]],
        method: str,
        processes: int,
        chunk_size: int,
        budget: Optional[Budget] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> Iterator[Tuple[str, Optional[Tuple[int, int]], object]]:
        """Stream every distinct cell as ``("chunk"|"done", key, mappings)``.

        The true cross-process streaming core of :meth:`solutions_iter`:
        replayable cells are emitted straight from the parent cache, the
        rest fan out to a pool whose workers push fixed-size solution
        chunks over a **bounded** IPC queue (slow consumers backpressure
        the workers) and finish each cell with a ``done`` message carrying
        the worker's :class:`~repro.evaluation.cache.CacheDelta`.  A
        ``chunk`` event carries newly arrived solutions of the cell; the
        closing ``done`` event carries no payload — every solution has
        already been emitted through the cell's chunks, and consumers that
        need a cell's complete list accumulate those.

        **Every submitted cell produces exactly one terminal event.**  The
        drain is liveness-based (any message or crash observation resets a
        ``stream_grace_seconds`` clock; there is no fixed overall grace):

        * a worker crash followed by a silent queue degrades every
          unfinished cell to a serial re-run in the parent, emitting only
          the solutions that had not already been streamed (so answers are
          neither lost nor duplicated) and closing each cell with its
          ``done``;
        * a tripped *budget* emits one terminal ``("timeout", None,
          TimeoutReport)`` event and stops;
        * workers that all returned while cells still lack their terminal
          event — the silent-loss case — are reported as a clear
          :class:`~repro.exceptions.EvaluationError` with the shortfall
          counted in ``cells_lost``, never swallowed.
        """
        # Same up-front validation as _enumerate_distinct: a warm session
        # whose every cell replays must still reject invalid methods.
        Planner().plan_enumeration(method)
        replayed, pending = self._partition_replayable(order)
        for key, answers in replayed:
            yield ("chunk", key, list(answers))
            yield ("done", key, [])
        if not pending:
            return
        ctx, warm_session, forests, graphs, tasks = self._enum_pool_setup(
            pending, method
        )
        workers = min(processes, len(pending))
        parent_versions = [graph.version for graph in graphs]
        trees = [tree for forest in forests for tree in forest]
        faults = self._armed_faults(ctx)
        try:
            # Bounded: workers block once the parent falls this many chunks
            # behind, instead of buffering whole cells in the pipe.
            queue = ctx.Queue(maxsize=max(4, 2 * workers))
        except (ImportError, OSError) as error:  # pragma: no cover - platform
            raise EvaluationError(
                "cross-process streaming needs multiprocessing queues, which "
                f"are unavailable on this platform ({error}); run "
                "solutions_iter serially (processes=None) instead"
            ) from error
        grace = self._stream_grace_seconds
        #: Per-position solutions already handed to the consumer — the dedup
        #: ledger that makes serial degradation emit each answer exactly once.
        emitted: Dict[int, Set[Mapping]] = {
            position: set() for position, _fi, _gi in tasks
        }
        cells_done = len(replayed)
        solutions_yielded = 0
        with ctx.Pool(
            workers,
            initializer=_init_enum_worker,
            initargs=(
                forests,
                graphs,
                method,
                warm_session,
                parent_versions,
                queue,
                chunk_size,
                budget,
                faults,
            ),
        ) as pool:
            results = [
                pool.apply_async(_enum_stream_worker_cell, (task,)) for task in tasks
            ]
            watch = _PoolWatch(pool)
            outstanding = {position for position, _fi, _gi in tasks}
            last_event = monotonic()
            degraded = False
            while outstanding:
                if budget is not None and budget.expired():
                    self._note("deadline_trips", statistics=statistics)
                    yield (
                        "timeout",
                        None,
                        self._stream_timeout_report(
                            budget, cells_done, outstanding, solutions_yielded, statistics
                        ),
                    )
                    return
                fresh = watch.poll()
                if fresh:
                    self._note("worker_crashes", fresh, statistics)
                    last_event = monotonic()  # grace counts from the crash
                try:
                    message = queue.get(timeout=0.05)
                except Empty:
                    message = None
                except (OSError, ValueError, EOFError) as error:
                    raise WorkerCrashError(
                        f"streaming result queue failed mid-batch: "
                        f"{type(error).__name__}: {error}"
                    ) from None
                if message is None:
                    quiet = monotonic() - last_event
                    if watch.crashes and quiet >= grace:
                        # A worker died and the queue has gone silent: the
                        # missing terminal events will never arrive (a killed
                        # worker can even poison the shared task queue and
                        # wedge the survivors).  Stop reading and degrade.
                        degraded = True
                        break
                    if not watch.crashes and quiet >= grace and all(
                        result.ready() for result in results
                    ):
                        # Every worker returned cleanly, nothing in flight,
                        # yet cells lack their terminal event: silent loss.
                        for result in results:
                            self._harvest(result)  # surface hidden failures
                        self._note("cells_lost", len(outstanding), statistics)
                        raise EvaluationError(
                            f"streaming enumeration lost {len(outstanding)} "
                            f"cell(s): all workers exited but no terminal "
                            f"event arrived for position(s) "
                            f"{sorted(outstanding)} within "
                            f"{grace:.1f}s of queue silence"
                        )
                    continue
                last_event = monotonic()
                tag, position = message[0], message[1]
                if tag == "deadline":
                    self._note("deadline_trips", statistics=statistics)
                    yield (
                        "timeout",
                        None,
                        self._stream_timeout_report(
                            budget, cells_done, outstanding, solutions_yielded, statistics
                        ),
                    )
                    return
                key = pending[position][2]
                if tag == "chunk":
                    fresh_solutions = [
                        mu for mu in message[2] if mu not in emitted[position]
                    ]
                    if fresh_solutions:
                        emitted[position].update(fresh_solutions)
                        solutions_yielded += len(fresh_solutions)
                        yield ("chunk", key, fresh_solutions)
                elif tag == "done":
                    if position not in outstanding:
                        continue  # duplicate terminal (already degraded/served)
                    tail, delta = message[2], message[3]
                    if delta is not None:
                        self._cache.absorb(delta, graphs, trees)
                    outstanding.discard(position)
                    cells_done += 1
                    fresh_solutions = [
                        mu for mu in tail if mu not in emitted[position]
                    ]
                    if fresh_solutions:
                        emitted[position].update(fresh_solutions)
                        solutions_yielded += len(fresh_solutions)
                        yield ("chunk", key, fresh_solutions)
                    yield ("done", key, [])
                else:  # "error"
                    raise EvaluationError(
                        f"enumeration worker failed: {message[2]}"
                    )
            if degraded and outstanding:
                # Serial degradation: re-run every unfinished cell in the
                # parent.  The queue is never read again (messages from
                # surviving workers are deliberately dropped) — the parent's
                # own enumeration is a superset, and the `emitted` ledger
                # filters what the consumer already received, so each
                # solution is delivered exactly once.
                self._note("cells_degraded_serial", len(outstanding), statistics)
                for position in sorted(outstanding):
                    engine, graph, key = pending[position]
                    try:
                        answers = self._cell_solutions(engine, graph, method, budget)
                    except DeadlineExceeded:
                        self._note("deadline_trips", statistics=statistics)
                        yield (
                            "timeout",
                            None,
                            self._stream_timeout_report(
                                budget,
                                cells_done,
                                outstanding,
                                solutions_yielded,
                                statistics,
                            ),
                        )
                        return
                    outstanding.discard(position)
                    cells_done += 1
                    fresh_solutions = [
                        mu for mu in answers if mu not in emitted[position]
                    ]
                    if fresh_solutions:
                        solutions_yielded += len(fresh_solutions)
                        yield ("chunk", key, fresh_solutions)
                    yield ("done", key, [])

    def solutions_many(
        self,
        patterns: Sequence[PatternLike],
        graphs: Union[RDFGraph, Sequence[RDFGraph]],
        method: str = "auto",
        processes: Optional[int] = None,
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> Union[List[Set[Mapping]], List[List[Set[Mapping]]]]:
        """Batched enumeration over many patterns × many graphs.

        Returns one answer set per ``(pattern, graph)`` cell: a flat list
        (one set per pattern) when *graphs* is a single graph, else a matrix
        with one row per pattern and one column per graph.  Duplicate cells
        — repeated patterns (structurally, for
        :class:`~repro.sparql.algebra.GraphPattern` inputs) or repeated
        graphs — are enumerated **once** and fanned back out, all cells
        share the session cache, and *processes* (or the session default)
        enumerates distinct cells in parallel (with warm worker forks and
        the crash-recovery ladder of :meth:`solutions_iter`).  Answer sets
        are guaranteed identical to per-pattern :meth:`Engine.solutions
        <repro.evaluation.engine.Engine.solutions>` calls — including
        across worker crashes, which cost a retry or a serial re-run, never
        an answer.  ``deadline``/``budget`` bound the whole batch and raise
        :class:`~repro.exceptions.DeadlineExceeded`; resilience events are
        counted on *statistics* and on :attr:`statistics`.  For results as
        they complete, use :meth:`solutions_iter`.
        """
        single = isinstance(graphs, RDFGraph)
        graph_list: List[RDFGraph] = [graphs] if single else list(graphs)
        engines = [self.engine(pattern) for pattern in patterns]
        run_budget = budget_from(deadline, budget)
        order = self._distinct_cells(engines, graph_list)
        try:
            distinct: Dict[Tuple[int, int], Set[Mapping]] = dict(
                self._enumerate_distinct(order, method, processes, run_budget, statistics)
            )
        except DeadlineExceeded as exc:
            self._trip(statistics, exc)
            raise

        # Duplicate cells fan out as *independent copies*, exactly like the
        # equivalent loop of per-pattern Engine.solutions calls; a cell used
        # once hands out the computed set itself (no copy).
        uses = {key: 0 for key in distinct}
        for engine in engines:
            for graph in graph_list:
                uses[(id(engine), id(graph))] += 1

        def hand_out(key: Tuple[int, int]) -> Set[Mapping]:
            uses[key] -= 1
            answers = distinct[key]
            return set(answers) if uses[key] > 0 else answers

        matrix = [
            [hand_out((id(engine), id(graph))) for graph in graph_list] for engine in engines
        ]
        if single:
            return [row[0] for row in matrix]
        return matrix

    def solutions_iter(
        self,
        patterns: Sequence[PatternLike],
        graphs: Union[RDFGraph, Sequence[RDFGraph]],
        method: str = "auto",
        order: str = "submitted",
        processes: Optional[int] = None,
        chunk_size: Optional[int] = None,
        deadline: Optional[float] = None,
        budget: Optional[Budget] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> Iterator[Union[Tuple[Tuple[int, int], Mapping], TimeoutReport]]:
        """Stream batched enumeration results as they are discovered.

        Yields ``((pattern_index, graph_index), mapping)`` pairs covering
        exactly the same answer sets as :meth:`solutions_many` over the same
        inputs, but incrementally — consumers see the first solutions while
        later cells are still being evaluated, instead of waiting for the
        whole batch.  *graphs* may be a single graph (all cells then have
        ``graph_index == 0``) or a sequence.

        ``order="submitted"`` (the default) yields cells in input order —
        row by row, every solution of a cell before the next cell.  The
        cell at the front streams truly incrementally: serially its first
        occurrence is consumed lazily from :meth:`solutions_stream`; with a
        pool its solutions arrive in fixed-size chunks (*chunk_size*, the
        session's ``stream_chunk_size`` by default) over a bounded IPC
        queue **while the worker is still enumerating the cell**.
        ``order="completed"`` relaxes cell ordering entirely: chunks are
        yielded in arrival order, interleaving cells, which keeps the
        consumer busy while slow cells are still running (duplicate
        positions of a cell are emitted together per chunk, in submission
        order).  Parallel runs use the same warm-fork worker path and
        :class:`~repro.evaluation.cache.CacheDelta` return channel as
        :meth:`solutions_many`, so repeated batches replay from the parent
        cache — and the same crash-recovery ladder, so a killed worker
        costs a retry or a serial re-run, never a hung consumer or a
        missing solution.

        With a ``deadline``/``budget``, the stream yields whatever it
        discovered in time and then **exactly one terminal**
        :class:`~repro.evaluation.budget.TimeoutReport` (instead of raising
        mid-iteration), then stops; check ``isinstance(item,
        TimeoutReport)`` when consuming bounded streams.
        """
        if order not in ("submitted", "completed"):
            raise EvaluationError(
                f"order must be 'submitted' or 'completed', got {order!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise EvaluationError("chunk_size must be a positive integer")
        single = isinstance(graphs, RDFGraph)
        graph_list: List[RDFGraph] = [graphs] if single else list(graphs)
        engines = [self.engine(pattern) for pattern in patterns]
        run_budget = budget_from(deadline, budget)
        cells: List[Tuple[Tuple[int, int], Tuple[int, int]]] = [
            ((i, j), (id(engine), id(graph)))
            for i, engine in enumerate(engines)
            for j, graph in enumerate(graph_list)
        ]
        uses: Dict[Tuple[int, int], int] = {}
        for _cell, key in cells:
            uses[key] = uses.get(key, 0) + 1
        distinct = self._distinct_cells(engines, graph_list)

        processes = processes if processes is not None else self._context.processes
        serial = processes is None or processes <= 1 or len(distinct) <= 1
        if serial:
            # True per-solution streaming: the first occurrence of each cell
            # is consumed lazily; repeats replay the recorded answers.
            by_key = {key: (engine, graph) for engine, graph, key in distinct}
            done: Dict[Tuple[int, int], Set[Mapping]] = {}
            cells_done = 0
            solutions_yielded = 0
            try:
                for cell, key in cells:
                    if key in done:
                        for mu in done[key]:
                            yield cell, mu
                            solutions_yielded += 1
                        cells_done += 1
                        continue
                    engine, graph = by_key[key]
                    recorder: Optional[Set[Mapping]] = set() if uses[key] > 1 else None
                    for mu in engine.solutions_stream(graph, method, budget=run_budget):
                        if recorder is not None:
                            recorder.add(mu)
                        yield cell, mu
                        solutions_yielded += 1
                    if recorder is not None:
                        done[key] = recorder
                    cells_done += 1
            except DeadlineExceeded:
                self._note("deadline_trips", statistics=statistics)
                elapsed, allowance = 0.0, None
                if run_budget is not None:
                    elapsed = run_budget.elapsed()
                    if run_budget.expires_at is not None:
                        allowance = run_budget.expires_at - run_budget.started_at
                yield TimeoutReport(
                    elapsed=elapsed,
                    deadline=allowance,
                    cells_done=cells_done,
                    cells_pending=len(cells) - cells_done,
                    solutions_yielded=solutions_yielded,
                    statistics=statistics,
                    pending=tuple(
                        f"cell {cell}" for cell, _key in cells[cells_done:]
                    ),
                )
            return

        chunk = (
            chunk_size
            if chunk_size is not None
            else self._context.stream_chunk_size
        )
        events = self._stream_distinct(
            distinct, method, processes, chunk, run_budget, statistics
        )

        if order == "completed":
            positions: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
            for cell, key in cells:
                positions.setdefault(key, []).append(cell)
            for tag, key, payload in events:
                if tag == "timeout":
                    yield payload  # the terminal TimeoutReport
                    return
                if tag != "chunk":
                    continue  # "done" closes a cell; its chunks are yielded
                for cell in positions[key]:
                    for mu in payload:
                        yield cell, mu
            return

        # order == "submitted": stream the front cell's chunks as they
        # arrive; buffer chunks of later cells until their turn.  A cell's
        # complete list is the concatenation of its chunk events (the
        # closing "done" carries no payload).
        finished: Dict[Tuple[int, int], List[Mapping]] = {}
        buffers: Dict[Tuple[int, int], List[Mapping]] = {}
        for cell, key in cells:
            if key in finished:
                for mu in finished[key]:
                    yield cell, mu
                continue
            # Flush whatever arrived for this cell while an earlier cell
            # held the front — don't wait for its next event to release it.
            emitted = 0
            for mu in buffers.get(key, ()):
                yield cell, mu
                emitted += 1
            while key not in finished:
                tag, event_key, payload = next(events)
                if tag == "timeout":
                    yield payload  # the terminal TimeoutReport
                    return
                if tag == "chunk":
                    buffers.setdefault(event_key, []).extend(payload)
                    if event_key == key:
                        buffered = buffers[key]
                        while emitted < len(buffered):
                            yield cell, buffered[emitted]
                            emitted += 1
                else:
                    finished[event_key] = buffers.pop(event_key, [])
            for mu in finished[key][emitted:]:
                yield cell, mu
        # Drain cells that finished after the last position needing them so
        # their workers' deltas are still absorbed into the session cache.
        for _tag, _key, _payload in events:
            pass
