"""A multi-pattern, multi-graph evaluation workspace.

Serving realistic wdEVAL traffic means answering *sets* of instances — many
candidate mappings, many patterns, many graphs — behind one shared cache.
:class:`Session` is that workspace:

* engines are created (and memoized) per pattern through one shared
  :class:`~repro.evaluation.cache.EvaluationCache`, so structurally
  overlapping patterns reuse each other's homomorphism tests, kernels and
  target indexes;
* every entry point resolves its ``method=`` through the pattern's
  :class:`~repro.evaluation.plan.Planner` — exactly once per batch — and
  :meth:`plan` / :meth:`explain` expose the decision;
* :meth:`check_many` answers many mappings (deduplicated, optionally over a
  ``multiprocessing`` pool) with answers guaranteed identical to a loop of
  :meth:`Engine.contains <repro.evaluation.engine.Engine.contains>` calls;
* :meth:`solutions_stream` enumerates lazily (a deduplicated generator);
  :meth:`solutions_many` batches enumeration over many patterns × many
  graphs — duplicate cells are evaluated once and fanned back out, and an
  opt-in pool enumerates distinct cells in parallel.

:class:`~repro.evaluation.batch.BatchEngine` is a single-pattern adapter
over this class.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .cache import EvaluationCache
from .context import EvalContext
from .engine import Engine
from .plan import Plan, Planner
from .wdeval import EvaluationStatistics
from ..patterns.forest import WDPatternForest
from ..rdf.graph import RDFGraph
from ..sparql.algebra import GraphPattern
from ..sparql.mappings import Mapping
from ..exceptions import EvaluationError

__all__ = ["Session", "PatternLike"]

#: Anything a session entry point accepts as "a pattern".
PatternLike = Union[Engine, GraphPattern, WDPatternForest]


# --- multiprocessing plumbing -------------------------------------------------
#
# Membership workers are initialised once per pool with the forest and graph
# and then stream mappings; each worker owns an EvaluationCache so the
# per-graph index, memo tables and consistency kernels are built once per
# worker, not per task.
#
# With the ``fork`` start method the parent warms its own cache *before* the
# pool is created and hands the live engine to the initializer — fork does not
# pickle initargs, so every worker starts with the precomputed kernels and
# target index already in (copy-on-write shared) memory.  Other start methods
# receive pickled copies and rebuild the µ-independent state once per worker
# in the initializer instead of lazily per task.

_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    forest: WDPatternForest,
    width_bound: Optional[int],
    graph: RDFGraph,
    method: str,
    width: Optional[int],
    warm_engine: Optional[Engine] = None,
) -> None:
    if warm_engine is not None:
        # Fork path: the parent's engine (and its warmed cache) arrives by
        # address, not by pickle; reuse it directly.
        engine = warm_engine
    else:
        engine = Engine(forest=forest, width_bound=width_bound, cache=EvaluationCache())
        cache = engine.cache
        if cache is not None:
            plan = engine.plan(method, width)
            plan.strategy_obj.warm(engine.forest, graph, plan, cache)
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["method"] = method
    _WORKER_STATE["width"] = width


def _worker_contains(mu: Mapping) -> bool:
    engine: Engine = _WORKER_STATE["engine"]  # type: ignore[assignment]
    return engine.contains(
        _WORKER_STATE["graph"],  # type: ignore[arg-type]
        mu,
        method=_WORKER_STATE["method"],  # type: ignore[arg-type]
        width=_WORKER_STATE["width"],  # type: ignore[arg-type]
    )


def _enumerate_chunk(
    task: Tuple[List[RDFGraph], List[Tuple[WDPatternForest, int]], str]
) -> List[Set[Mapping]]:
    """Enumerate a chunk of (pattern, graph) cells in a worker process.

    The task ships each graph the chunk touches once (not once per cell)
    and the worker enumerates all its cells through one local session, so
    per-graph state (target index, memoized child tests) is shared across
    the chunk.  Only forests cross the process boundary (the picklable
    normal form); the naive strategy evaluates the pattern rebuilt from the
    forest, which has the same solutions by the normal-form semantics.
    """
    graphs, cells, method = task
    session = Session()
    return [
        session.solutions(forest, graphs[graph_index], method=method)
        for forest, graph_index in cells
    ]


class Session:
    """Evaluate many patterns against many graphs through one shared cache.

    Parameters
    ----------
    cache:
        The shared :class:`~repro.evaluation.cache.EvaluationCache`; a fresh
        one is created when omitted (bounded by *max_entries_per_graph*).
    processes:
        Default worker-pool size for the batched entry points; ``None`` (or
        1) keeps everything serial.  Per-call ``processes=`` overrides it.
    max_entries_per_graph:
        Budget for the implicitly created cache (ignored when *cache* is
        given); see :class:`~repro.evaluation.cache.EvaluationCache`.
    max_engines:
        Bound on the engine memo; the least recently used engines (and the
        pins on their source patterns) are evicted first.  ``None`` (the
        default) means unbounded — like the cache, prefer a bound for
        long-lived sessions serving a stream of distinct ad-hoc patterns.
    warm_on_fork:
        Whether batched parallel membership warms the µ-independent cache
        state in the parent before forking workers (default ``True``; see
        :meth:`warm`).

    >>> from repro.sparql import parse_pattern
    >>> from repro.rdf import RDFGraph, Triple
    >>> from repro.sparql.mappings import Mapping
    >>> session = Session()
    >>> g = RDFGraph([Triple.of("a", "knows", "b")])
    >>> p = parse_pattern("((?x knows ?y) OPT (?y email ?e))")
    >>> session.check_many(p, g, [Mapping.of(x="a", y="b")])
    [True]
    """

    def __init__(
        self,
        cache: Optional[EvaluationCache] = None,
        processes: Optional[int] = None,
        max_entries_per_graph: Optional[int] = None,
        max_engines: Optional[int] = None,
        warm_on_fork: bool = True,
    ) -> None:
        if processes is not None and processes < 1:
            raise EvaluationError("processes must be a positive integer")
        if max_engines is not None and max_engines < 1:
            raise EvaluationError("max_engines must be a positive integer")
        self._cache = (
            cache if cache is not None else EvaluationCache(max_entries_per_graph)
        )
        self._context = EvalContext(
            cache=self._cache, processes=processes, warm_on_fork=warm_on_fork
        )
        self._max_engines = max_engines
        # Engine memo: key -> (source object, engine), insertion-ordered by
        # recency (hits re-insert).  The source reference keeps id()-based
        # keys valid while the entry lives; eviction drops both.
        self._engines: Dict[object, Tuple[object, Engine]] = {}

    # --- introspection -----------------------------------------------------
    @property
    def cache(self) -> EvaluationCache:
        """The evaluation cache shared by every engine of this session."""
        return self._cache

    @property
    def context(self) -> EvalContext:
        """The base evaluation context (cache + pool settings)."""
        return self._context

    @property
    def engine_count(self) -> int:
        """How many engines the session currently memoizes."""
        return len(self._engines)

    def __repr__(self) -> str:
        return (
            f"Session(<{len(self._engines)} engines, "
            f"processes={self._context.processes}>)"
        )

    # --- engines -----------------------------------------------------------
    def engine(self, pattern: PatternLike, width_bound: Optional[int] = None) -> Engine:
        """The session engine for *pattern*, created once and memoized.

        Accepts a :class:`~repro.sparql.algebra.GraphPattern` (memoized
        structurally, so equal patterns share one engine), a
        :class:`~repro.patterns.forest.WDPatternForest`, or an existing
        :class:`Engine` (re-wired onto the session cache when necessary).
        """
        if isinstance(pattern, Engine):
            if pattern.cache is self._cache and width_bound is None:
                # Already wired to this session (typically one of our own
                # memoized engines routed back in): use it as-is.  No memo
                # entry — the caller holds the reference, and re-memoizing
                # under a second id-based key would defeat the LRU bound.
                return pattern
            key = ("engine", id(pattern), width_bound)
        elif isinstance(pattern, GraphPattern):
            key = ("pattern", pattern, width_bound)
        elif isinstance(pattern, WDPatternForest):
            key = ("forest", id(pattern), width_bound)
        else:
            raise EvaluationError(
                f"expected an Engine, GraphPattern or WDPatternForest, "
                f"got {type(pattern).__name__}"
            )
        hit = self._engines.pop(key, None)
        if hit is not None:
            self._engines[key] = hit  # re-insert at the recent end (LRU)
            return hit[1]
        if isinstance(pattern, Engine):
            engine = Engine(
                pattern.pattern,
                pattern.forest,
                width_bound if width_bound is not None else pattern.width_bound,
                cache=self._cache,
            )
        elif isinstance(pattern, WDPatternForest):
            engine = Engine(forest=pattern, width_bound=width_bound, cache=self._cache)
        else:
            engine = Engine(pattern, width_bound=width_bound, cache=self._cache)
        if self._max_engines is not None:
            while len(self._engines) >= self._max_engines:
                self._engines.pop(next(iter(self._engines)))
        self._engines[key] = (pattern, engine)
        return engine

    # --- planning ----------------------------------------------------------
    def plan(
        self, pattern: PatternLike, method: str = "auto", width: Optional[int] = None
    ) -> Plan:
        """The plan :meth:`check` would execute for this pattern/method."""
        return self.engine(pattern).plan(method, width)

    def explain(
        self, pattern: PatternLike, method: str = "auto", width: Optional[int] = None
    ) -> str:
        """Human-readable account of the strategy choice (see :meth:`plan`)."""
        return self.plan(pattern, method, width).explain()

    # --- membership --------------------------------------------------------
    def check(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        mu: Mapping,
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> bool:
        """Decide ``µ ∈ ⟦P⟧G`` through the session cache."""
        return self.engine(pattern).contains(
            graph, mu, method=method, width=width, statistics=statistics
        )

    def check_many(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        mappings: Iterable[Mapping],
        method: str = "auto",
        width: Optional[int] = None,
        statistics: Optional[EvaluationStatistics] = None,
        processes: Optional[int] = None,
    ) -> List[bool]:
        """Decide ``µ ∈ ⟦P⟧G`` for every mapping, in input order.

        Guaranteed to return exactly the booleans a loop of
        :meth:`Engine.contains` calls would, but sharing the cache across
        instances, deduplicating repeated mappings, resolving the method
        once per batch, and — when *processes* (or the session default) asks
        for it — fanning the instances out over a worker pool.

        *statistics* is only accumulated on the serial path; worker-side
        counters are not collected.
        """
        engine = self.engine(pattern)
        mappings = list(mappings)
        if not mappings:
            return []
        plan = engine.plan(method, width)
        strategy = plan.strategy_obj
        unique: List[Mapping] = []
        seen: Set[Mapping] = set()
        for mu in mappings:
            if mu not in seen:
                seen.add(mu)
                unique.append(mu)

        processes = processes if processes is not None else self._context.processes
        if (
            processes is not None
            and processes > 1
            and len(unique) > 1
            and strategy.parallel_safe
        ):
            answers = dict(zip(unique, self._parallel_contains(engine, graph, unique, plan, processes)))
        else:
            context = self._context.with_statistics(statistics)
            answers = dict(
                zip(
                    unique,
                    strategy.contains_many(
                        engine.pattern, engine.forest, graph, unique, plan, context
                    ),
                )
            )
        return [answers[mu] for mu in mappings]

    def _parallel_contains(
        self,
        engine: Engine,
        graph: RDFGraph,
        mappings: Sequence[Mapping],
        plan: Plan,
        processes: int,
    ) -> List[bool]:
        processes = min(processes, len(mappings))
        chunksize = max(1, len(mappings) // (processes * 4))
        ctx = multiprocessing.get_context()
        warm_engine: Optional[Engine] = None
        if ctx.get_start_method() == "fork" and self._context.warm_on_fork:
            # Build the µ-independent state once in the parent so the workers
            # fork with warm kernels/indexes instead of rebuilding them.  No
            # mappings here on purpose: per-mapping witness-subtree lookups
            # would serialise in the parent (Amdahl); workers do those in
            # parallel against the copy-on-write shared kernels.
            plan.strategy_obj.warm(engine.forest, graph, plan, self._cache)
            warm_engine = engine
        with ctx.Pool(
            processes,
            initializer=_init_worker,
            initargs=(
                engine.forest,
                engine.width_bound,
                graph,
                plan.strategy,
                plan.width,
                warm_engine,
            ),
        ) as pool:
            return pool.map(_worker_contains, mappings, chunksize=chunksize)

    def warm(
        self,
        pattern: PatternLike,
        graph: RDFGraph,
        mappings: Optional[Iterable[Mapping]] = None,
        method: str = "auto",
        width: Optional[int] = None,
    ) -> int:
        """Precompute the µ-independent evaluation state for *graph*.

        For the pebble strategy this builds the shared target index, the
        graph domain, and the consistency kernels of every ``(witness
        subtree, child)`` instance the given *mappings* reach (the
        root-subtree instances when no mappings are given); for the natural
        strategy it builds the target index.  Returns the number of kernels
        ensured.  Warming is a pure performance feature — answers are
        identical with and without it — and is what :meth:`check_many` does
        before forking a worker pool.
        """
        engine = self.engine(pattern)
        plan = engine.plan(method, width)
        return plan.strategy_obj.warm(engine.forest, graph, plan, self._cache, mappings)

    # --- enumeration -------------------------------------------------------
    def solutions_stream(
        self, pattern: PatternLike, graph: RDFGraph, method: str = "auto"
    ) -> Iterator[Mapping]:
        """Stream ``⟦P⟧G`` lazily as a deduplicated generator.

        ``method="auto"`` resolves to the natural strategy (the planner
        rejects the pebble strategy, which decides membership only).
        """
        return self.engine(pattern).solutions_stream(graph, method)

    def solutions(
        self, pattern: PatternLike, graph: RDFGraph, method: str = "auto"
    ) -> Set[Mapping]:
        """Enumerate the full answer set ``⟦P⟧G`` through the session cache."""
        return set(self.solutions_stream(pattern, graph, method))

    def solutions_many(
        self,
        patterns: Sequence[PatternLike],
        graphs: Union[RDFGraph, Sequence[RDFGraph]],
        method: str = "auto",
        processes: Optional[int] = None,
    ) -> Union[List[Set[Mapping]], List[List[Set[Mapping]]]]:
        """Batched enumeration over many patterns × many graphs.

        Returns one answer set per ``(pattern, graph)`` cell: a flat list
        (one set per pattern) when *graphs* is a single graph, else a matrix
        with one row per pattern and one column per graph.  Duplicate cells
        — repeated patterns (structurally, for
        :class:`~repro.sparql.algebra.GraphPattern` inputs) or repeated
        graphs — are enumerated **once** and fanned back out, all cells
        share the session cache, and *processes* (or the session default)
        enumerates distinct cells in parallel.  Answer sets are guaranteed
        identical to per-pattern :meth:`Engine.solutions` calls.
        """
        single = isinstance(graphs, RDFGraph)
        graph_list: List[RDFGraph] = [graphs] if single else list(graphs)
        engines = [self.engine(pattern) for pattern in patterns]

        distinct: Dict[Tuple[int, int], Optional[Set[Mapping]]] = {}
        order: List[Tuple[Engine, RDFGraph, Tuple[int, int]]] = []
        for engine in engines:
            for graph in graph_list:
                key = (id(engine), id(graph))
                if key not in distinct:
                    distinct[key] = None
                    order.append((engine, graph, key))

        processes = processes if processes is not None else self._context.processes
        if processes is not None and processes > 1 and len(order) > 1:
            # Enumeration planning is pattern-independent, so resolve once.
            strategy = Planner().plan_enumeration(method).strategy
            workers = min(processes, len(order))
            chunks = [order[i::workers] for i in range(workers)]
            tasks = []
            for chunk in chunks:
                local_index: Dict[int, int] = {}
                chunk_graphs: List[RDFGraph] = []
                cells: List[Tuple[WDPatternForest, int]] = []
                for engine, graph, _key in chunk:
                    if id(graph) not in local_index:
                        local_index[id(graph)] = len(chunk_graphs)
                        chunk_graphs.append(graph)
                    cells.append((engine.forest, local_index[id(graph)]))
                tasks.append((chunk_graphs, cells, strategy))
            ctx = multiprocessing.get_context()
            with ctx.Pool(workers) as pool:
                for chunk, answers in zip(chunks, pool.map(_enumerate_chunk, tasks)):
                    for (_, _, key), cell_answers in zip(chunk, answers):
                        distinct[key] = cell_answers
        else:
            for engine, graph, key in order:
                distinct[key] = self.solutions(engine, graph, method=method)

        # Duplicate cells fan out as *independent copies*, exactly like the
        # equivalent loop of per-pattern Engine.solutions calls; a cell used
        # once hands out the computed set itself (no copy).
        uses = {key: 0 for key in distinct}
        for engine in engines:
            for graph in graph_list:
                uses[(id(engine), id(graph))] += 1

        def hand_out(key: Tuple[int, int]) -> Set[Mapping]:
            uses[key] -= 1
            answers = distinct[key]
            return set(answers) if uses[key] > 0 else answers

        matrix = [
            [hand_out((id(engine), id(graph))) for graph in graph_list] for engine in engines
        ]
        if single:
            return [row[0] for row in matrix]
        return matrix
