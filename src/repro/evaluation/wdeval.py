"""The natural evaluation algorithm for well-designed pattern forests.

This is the classical algorithm of Letelier et al. / Pichler–Skritek that the
paper takes as the starting point (beginning of Section 3.1): to decide
``µ ∈ ⟦F⟧G`` for ``F = {T1, ..., Tm}``,

1. for each tree ``Ti`` find the unique subtree ``T^µ_i`` whose variables are
   exactly ``dom(µ)`` and whose pattern ``µ`` maps homomorphically into
   ``G`` (if none exists, ``µ ∉ ⟦Ti⟧G``);
2. ``µ ∈ ⟦Ti⟧G`` iff additionally *no* child ``n`` of ``T^µ_i`` admits a
   homomorphism from ``pat(n)`` to ``G`` compatible with ``µ``
   (equivalently ``(pat(T^µ_i) ∪ pat(n), vars(T^µ_i)) →µ G`` fails).

The child test is a full homomorphism test, so this engine runs in
exponential time in the query size in the worst case — it is the coNP
baseline that the Theorem 1 algorithm relaxes.

The canonical implementations (the ``*_ctx`` functions) take an
:class:`~repro.evaluation.context.EvalContext` bundling the cache and the
statistics accumulator; the historical ``(statistics, cache)`` signatures
are kept as thin shims.  The module also provides solution *enumeration*
through Lemma 1 — both as sets and as deduplicated generators
(:func:`tree_solutions_stream` / :func:`forest_solutions_stream`), which is
what :meth:`~repro.evaluation.session.Session.solutions_stream` exposes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Set

from .context import EvalContext
from ..patterns.forest import WDPatternForest
from ..patterns.tree import Subtree, WDPatternTree
from ..rdf.graph import RDFGraph
from ..sparql.mappings import Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .cache import EvaluationCache

__all__ = [
    "find_mu_subtree",
    "tree_contains",
    "tree_contains_ctx",
    "forest_contains",
    "forest_contains_ctx",
    "tree_solutions",
    "tree_solutions_stream",
    "forest_solutions",
    "forest_solutions_stream",
    "EvaluationStatistics",
]

#: Shared empty context for the shim signatures with neither cache nor stats.
_PLAIN_CONTEXT = EvalContext()


class EvaluationStatistics:
    """Counters describing one evaluation run (used by the benchmarks).

    Besides the algorithmic counters (trees visited, witness subtrees found,
    child extension tests), the resilience layer accounts here too:

    * ``worker_crashes`` — pool workers observed dead (SIGKILL, OOM, ...);
    * ``cells_degraded_serial`` — ``(pattern, graph)`` cells re-run serially
      in the parent after the parallel path failed twice;
    * ``deadline_trips`` — budget violations surfaced by this run;
    * ``cells_lost`` — cells that produced no terminal event at pool exit
      (always reported, never silently swallowed).
    """

    __slots__ = (
        "trees_visited",
        "subtree_found",
        "child_checks",
        "worker_crashes",
        "cells_degraded_serial",
        "deadline_trips",
        "cells_lost",
    )

    def __init__(self) -> None:
        self.trees_visited = 0
        self.subtree_found = 0
        self.child_checks = 0
        self.worker_crashes = 0
        self.cells_degraded_serial = 0
        self.deadline_trips = 0
        self.cells_lost = 0

    def merge(self, other: "EvaluationStatistics") -> None:
        """Accumulate *other*'s counters into this instance."""
        for slot in self.__slots__:
            setattr(self, slot, getattr(self, slot) + getattr(other, slot))

    def resilience_summary(self) -> str:
        """One line for ``batch --stats`` and the session accumulator."""
        return (
            f"{self.worker_crashes} worker crash(es), "
            f"{self.cells_degraded_serial} cell(s) degraded serial, "
            f"{self.deadline_trips} deadline trip(s), "
            f"{self.cells_lost} cell(s) lost"
        )

    def __repr__(self) -> str:
        extra = ""
        if any(
            (
                self.worker_crashes,
                self.cells_degraded_serial,
                self.deadline_trips,
                self.cells_lost,
            )
        ):
            extra = (
                f", crashes={self.worker_crashes}, "
                f"degraded={self.cells_degraded_serial}, "
                f"deadline_trips={self.deadline_trips}, lost={self.cells_lost}"
            )
        return (
            f"EvaluationStatistics(trees={self.trees_visited}, "
            f"subtrees={self.subtree_found}, child_checks={self.child_checks}{extra})"
        )


def find_mu_subtree(tree: WDPatternTree, graph: RDFGraph, mu: Mapping) -> Optional[Subtree]:
    """The subtree ``T^µ`` of *tree*: variables exactly ``dom(µ)`` and ``µ`` a
    homomorphism from its pattern into the graph; ``None`` if there is none.

    Computed greedily from the root: a node can join as soon as its variables
    are covered by ``dom(µ)`` and ``µ`` satisfies its label; by NR normal form
    and variable connectivity the maximal such node set is the unique witness
    whenever a witness exists.
    """
    domain = mu.domain()

    def node_satisfied(node: int) -> bool:
        if not tree.vars(node) <= domain:
            return False
        for t in tree.pat(node):
            if mu.apply(t) not in graph:
                return False
        return True

    if not node_satisfied(tree.root):
        return None
    selected = {tree.root}
    frontier = list(tree.children_of(tree.root))
    while frontier:
        node = frontier.pop()
        if node_satisfied(node):
            selected.add(node)
            frontier.extend(tree.children_of(node))
    subtree = tree.subtree(selected)
    if subtree.variables() != domain:
        return None
    return subtree


# --- membership (canonical, context-based) --------------------------------------


def tree_contains_ctx(
    tree: WDPatternTree, graph: RDFGraph, mu: Mapping, context: EvalContext
) -> bool:
    """``µ ∈ ⟦T⟧G`` via Lemma 1 (the natural algorithm, exact but with
    NP-hard child tests).

    The *context* supplies the cache (witness-subtree lookups and child
    extension tests are then memoized per graph version — identical answers,
    see :mod:`repro.evaluation.cache`) and the statistics accumulator.
    """
    subtree = context.mu_subtree(tree, graph, mu)
    if subtree is None:
        return False
    context.note_subtree_found()
    for child in context.children_of(tree, subtree):
        context.note_child_check()
        if context.extension_exists(tree.pat(child), graph, mu):
            return False
    return True


def forest_contains_ctx(
    forest: WDPatternForest, graph: RDFGraph, mu: Mapping, context: EvalContext
) -> bool:
    """``µ ∈ ⟦F⟧G = ⟦T1⟧G ∪ ... ∪ ⟦Tm⟧G`` via the natural algorithm."""
    for tree in forest:
        context.note_tree_visited()
        if tree_contains_ctx(tree, graph, mu, context):
            return True
    return False


# --- membership (legacy signatures, thin shims) ------------------------------------


def tree_contains(
    tree: WDPatternTree,
    graph: RDFGraph,
    mu: Mapping,
    statistics: Optional[EvaluationStatistics] = None,
    cache: Optional["EvaluationCache"] = None,
) -> bool:
    """Shim for :func:`tree_contains_ctx` with the historical signature."""
    return tree_contains_ctx(tree, graph, mu, EvalContext.of(statistics, cache))


def forest_contains(
    forest: WDPatternForest,
    graph: RDFGraph,
    mu: Mapping,
    statistics: Optional[EvaluationStatistics] = None,
    cache: Optional["EvaluationCache"] = None,
) -> bool:
    """Shim for :func:`forest_contains_ctx` with the historical signature."""
    return forest_contains_ctx(forest, graph, mu, EvalContext.of(statistics, cache))


# --- enumeration ---------------------------------------------------------------------


def tree_solutions_stream(
    tree: WDPatternTree, graph: RDFGraph, context: Optional[EvalContext] = None
) -> Iterator[Mapping]:
    """Stream ``⟦T⟧G`` through Lemma 1, deduplicated, in discovery order.

    For every subtree ``T'`` and every homomorphism ``µ`` from ``pat(T')``
    into the graph, ``µ`` is a solution iff no child of ``T'`` admits a
    compatible extension.  With a caching *context* the homomorphism lists
    and the child extension tests are memoized, and a run that completes
    records the whole answer list per graph version — later enumerations of
    the same tree (including warm-forked enumeration workers that inherit
    the cache) replay it straight from memory.  Enumerating many
    structurally overlapping patterns through one
    :class:`~repro.evaluation.session.Session` therefore shares work at
    every level: index, searches, child tests, and completed answer sets.
    """
    context = context if context is not None else _PLAIN_CONTEXT
    replay = context.tree_solutions_list(tree, graph)
    if replay is not None:
        yield from replay
        return
    version = graph.version
    recorded: Optional[list] = [] if context.cache is not None else None
    seen: Set[Mapping] = set()
    for subtree in tree.subtrees():
        child_pats = [tree.pat(child) for child in context.children_of(tree, subtree)]
        for hom in context.homomorphisms(subtree.pat(), graph):
            context.tick()
            mu = Mapping(hom)
            if mu in seen:
                continue
            if all(not context.extension_exists(pat, graph, mu) for pat in child_pats):
                seen.add(mu)
                if recorded is not None:
                    recorded.append(mu)
                yield mu
    # Record only complete, mutation-free enumerations: an abandoned
    # generator never reaches this line, and a mid-stream graph mutation
    # would make the recorded list stale for the new version.
    if recorded is not None and graph.version == version:
        context.record_tree_solutions(tree, graph, recorded)


def forest_solutions_stream(
    forest: WDPatternForest, graph: RDFGraph, context: Optional[EvalContext] = None
) -> Iterator[Mapping]:
    """Stream ``⟦F⟧G`` (union over the member trees, deduplicated)."""
    context = context if context is not None else _PLAIN_CONTEXT
    seen: Set[Mapping] = set()
    for tree in forest:
        context.tick()
        for mu in tree_solutions_stream(tree, graph, context):
            if mu not in seen:
                seen.add(mu)
                yield mu


def tree_solutions(
    tree: WDPatternTree, graph: RDFGraph, context: Optional[EvalContext] = None
) -> Set[Mapping]:
    """Enumerate ``⟦T⟧G`` as a set (see :func:`tree_solutions_stream`)."""
    return set(tree_solutions_stream(tree, graph, context))


def forest_solutions(
    forest: WDPatternForest, graph: RDFGraph, context: Optional[EvalContext] = None
) -> Set[Mapping]:
    """Enumerate ``⟦F⟧G`` as a set (union over the member trees)."""
    return set(forest_solutions_stream(forest, graph, context))
