"""The natural evaluation algorithm for well-designed pattern forests.

This is the classical algorithm of Letelier et al. / Pichler–Skritek that the
paper takes as the starting point (beginning of Section 3.1): to decide
``µ ∈ ⟦F⟧G`` for ``F = {T1, ..., Tm}``,

1. for each tree ``Ti`` find the unique subtree ``T^µ_i`` whose variables are
   exactly ``dom(µ)`` and whose pattern ``µ`` maps homomorphically into
   ``G`` (if none exists, ``µ ∉ ⟦Ti⟧G``);
2. ``µ ∈ ⟦Ti⟧G`` iff additionally *no* child ``n`` of ``T^µ_i`` admits a
   homomorphism from ``pat(n)`` to ``G`` compatible with ``µ``
   (equivalently ``(pat(T^µ_i) ∪ pat(n), vars(T^µ_i)) →µ G`` fails).

The child test is a full homomorphism test, so this engine runs in
exponential time in the query size in the worst case — it is the coNP
baseline that the Theorem 1 algorithm relaxes.

The module also provides solution *enumeration* through Lemma 1, used by the
examples and as a second reference semantics in the tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from ..hom.homomorphism import all_homomorphisms, extends_into, find_homomorphism
from ..hom.tgraph import TGraph
from ..patterns.forest import WDPatternForest
from ..patterns.tree import Subtree, WDPatternTree
from ..rdf.graph import RDFGraph
from ..rdf.terms import Variable
from ..sparql.mappings import Mapping
from ..exceptions import EvaluationError

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .cache import EvaluationCache

__all__ = [
    "find_mu_subtree",
    "tree_contains",
    "forest_contains",
    "tree_solutions",
    "forest_solutions",
    "EvaluationStatistics",
]


class EvaluationStatistics:
    """Counters describing one membership check (used by the benchmarks)."""

    __slots__ = ("trees_visited", "subtree_found", "child_checks")

    def __init__(self) -> None:
        self.trees_visited = 0
        self.subtree_found = 0
        self.child_checks = 0

    def __repr__(self) -> str:
        return (
            f"EvaluationStatistics(trees={self.trees_visited}, "
            f"subtrees={self.subtree_found}, child_checks={self.child_checks})"
        )


def find_mu_subtree(tree: WDPatternTree, graph: RDFGraph, mu: Mapping) -> Optional[Subtree]:
    """The subtree ``T^µ`` of *tree*: variables exactly ``dom(µ)`` and ``µ`` a
    homomorphism from its pattern into the graph; ``None`` if there is none.

    Computed greedily from the root: a node can join as soon as its variables
    are covered by ``dom(µ)`` and ``µ`` satisfies its label; by NR normal form
    and variable connectivity the maximal such node set is the unique witness
    whenever a witness exists.
    """
    domain = mu.domain()

    def node_satisfied(node: int) -> bool:
        if not tree.vars(node) <= domain:
            return False
        for t in tree.pat(node):
            if mu.apply(t) not in graph:
                return False
        return True

    if not node_satisfied(tree.root):
        return None
    selected = {tree.root}
    frontier = list(tree.children_of(tree.root))
    while frontier:
        node = frontier.pop()
        if node_satisfied(node):
            selected.add(node)
            frontier.extend(tree.children_of(node))
    subtree = tree.subtree(selected)
    if subtree.variables() != domain:
        return None
    return subtree


def tree_contains(
    tree: WDPatternTree,
    graph: RDFGraph,
    mu: Mapping,
    statistics: Optional[EvaluationStatistics] = None,
    cache: Optional["EvaluationCache"] = None,
) -> bool:
    """``µ ∈ ⟦T⟧G`` via Lemma 1 (the natural algorithm, exact but with
    NP-hard child tests).

    With a *cache*, the witness-subtree lookup and the child extension tests
    are memoized per graph version (identical answers, see
    :mod:`repro.evaluation.cache`).
    """
    if cache is not None:
        subtree = cache.mu_subtree(tree, graph, mu)
    else:
        subtree = find_mu_subtree(tree, graph, mu)
    if subtree is None:
        return False
    if statistics is not None:
        statistics.subtree_found += 1
    children = (
        cache.subtree_children(tree, subtree.nodes) if cache is not None else subtree.children()
    )
    for child in children:
        if statistics is not None:
            statistics.child_checks += 1
        if cache is not None:
            if cache.extension_exists(tree.pat(child), graph, mu):
                return False
        elif extends_into(tree.pat(child), graph, mu) is not None:
            return False
    return True


def forest_contains(
    forest: WDPatternForest,
    graph: RDFGraph,
    mu: Mapping,
    statistics: Optional[EvaluationStatistics] = None,
    cache: Optional["EvaluationCache"] = None,
) -> bool:
    """``µ ∈ ⟦F⟧G = ⟦T1⟧G ∪ ... ∪ ⟦Tm⟧G`` via the natural algorithm."""
    for tree in forest:
        if statistics is not None:
            statistics.trees_visited += 1
        if tree_contains(tree, graph, mu, statistics, cache):
            return True
    return False


def tree_solutions(tree: WDPatternTree, graph: RDFGraph) -> Set[Mapping]:
    """Enumerate ``⟦T⟧G`` through Lemma 1.

    For every subtree ``T'`` and every homomorphism ``µ`` from ``pat(T')``
    into the graph, ``µ`` is a solution iff no child of ``T'`` admits a
    compatible extension.
    """
    solutions: Set[Mapping] = set()
    for subtree in tree.subtrees():
        children = subtree.children()
        for hom in all_homomorphisms(subtree.pat(), graph):
            mu = Mapping(hom)
            if mu in solutions:
                continue
            if all(extends_into(tree.pat(child), graph, mu) is None for child in children):
                solutions.add(mu)
    return solutions


def forest_solutions(forest: WDPatternForest, graph: RDFGraph) -> Set[Mapping]:
    """Enumerate ``⟦F⟧G`` (union over the member trees)."""
    result: Set[Mapping] = set()
    for tree in forest:
        result |= tree_solutions(tree, graph)
    return result
