"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  The more specific subclasses mirror the main
subsystems: RDF data handling, SPARQL parsing / validation, pattern-tree
construction and evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class RDFError(ReproError):
    """Raised for malformed RDF data (non-ground triples in a graph, ...)."""


class ParseError(ReproError):
    """Raised when the SPARQL-like textual syntax cannot be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class NotWellDesignedError(ReproError):
    """Raised when an operation requires a well-designed pattern but the
    supplied pattern violates the well-designedness condition."""

    def __init__(self, message: str, violation: object | None = None) -> None:
        self.violation = violation
        super().__init__(message)


class PatternTreeError(ReproError):
    """Raised for structurally invalid well-designed pattern trees."""


class EvaluationError(ReproError):
    """Raised when an evaluation engine is used incorrectly (for instance a
    mapping whose domain does not match the required distinguished set)."""


class DeadlineExceeded(EvaluationError):
    """Raised when an evaluation crosses its :class:`Budget` bounds.

    Carries whatever progress information the raising layer had at hand:

    * ``elapsed`` — seconds the evaluation ran before tripping;
    * ``statistics`` — the ``EvaluationStatistics`` snapshot, attached by
      the entry point that owned the statistics object (``None`` below it);
    * ``partial`` — for enumeration, the solutions already produced before
      the trip (an empty tuple elsewhere);
    * ``budget`` — the violated budget object itself, when known.
    """

    def __init__(
        self,
        message: str,
        elapsed: float | None = None,
        statistics: object | None = None,
        partial: tuple = (),
        budget: object | None = None,
    ) -> None:
        self.elapsed = elapsed
        self.statistics = statistics
        self.partial = partial
        self.budget = budget
        super().__init__(message)


class WorkerCrashError(EvaluationError):
    """Raised when a pool worker died (SIGKILL, OOM, broken pipe) and the
    session could not recover the affected work by retry or serial
    degradation.  Wraps every raw ``multiprocessing`` / ``queue.Empty`` /
    ``BrokenPipeError`` escape of the pool paths so callers only ever see
    ``ReproError`` subtypes."""

    def __init__(self, message: str, crashes: int = 1) -> None:
        self.crashes = crashes
        super().__init__(message)


class ServiceError(ReproError):
    """Raised for failures of the long-lived query service layer
    (:mod:`repro.service`): bad requests, unknown graphs or operations,
    and lifecycle misuse.  The admission-control and lifecycle rejections
    have dedicated subclasses so clients can react in a typed way."""


class ServiceOverloadedError(ServiceError):
    """Typed admission-control rejection of the query service: the request
    backlog is full (``max_pending``) and every worker is busy
    (``max_inflight``), so instead of queueing forever the service rejects
    immediately.  Carries the observed backlog so clients can back off."""

    def __init__(self, message: str, pending: int = 0, max_pending: int = 0) -> None:
        self.pending = pending
        self.max_pending = max_pending
        super().__init__(message)


class ServiceClosedError(ServiceError):
    """Raised when a request is submitted to a closed (or closing)
    :class:`~repro.service.QueryService`, and used as the typed error of
    responses drained during shutdown."""


class ProtocolError(ServiceError):
    """Raised for malformed line-delimited JSON protocol messages: bad
    JSON, missing/unknown fields, oversized lines, wrong value shapes."""


class WidthComputationError(ReproError):
    """Raised when a width measure cannot be computed for the given input."""


class ReductionError(ReproError):
    """Raised when the hardness-reduction machinery receives inputs it cannot
    handle (for instance no grid minor map can be found)."""
