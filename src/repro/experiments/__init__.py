"""Experiment harness regenerating the paper's figures and claims (E1-E9)."""

from .harness import (
    ExperimentResult,
    time_callable,
    time_batched_membership,
    EXPERIMENT_REGISTRY,
    register_experiment,
    run_experiment,
)
from . import experiments as _experiments  # noqa: F401  (populates the registry)
from .experiments import (
    experiment_e1_figure1_cores,
    experiment_e2_figure2_widths,
    experiment_e3_figure3_domination,
    experiment_e4_theorem1_scaling,
    experiment_e5_unionfree_family,
    experiment_e6_prop5_dw_equals_bw,
    experiment_e7_hardness_reduction,
    experiment_e8_local_vs_domination,
    experiment_e9_dichotomy_frontier,
)

__all__ = [
    "ExperimentResult",
    "time_callable",
    "time_batched_membership",
    "EXPERIMENT_REGISTRY",
    "register_experiment",
    "run_experiment",
    "experiment_e1_figure1_cores",
    "experiment_e2_figure2_widths",
    "experiment_e3_figure3_domination",
    "experiment_e4_theorem1_scaling",
    "experiment_e5_unionfree_family",
    "experiment_e6_prop5_dw_equals_bw",
    "experiment_e7_hardness_reduction",
    "experiment_e8_local_vs_domination",
    "experiment_e9_dichotomy_frontier",
]
