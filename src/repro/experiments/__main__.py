"""Command line entry point: run the experiments and print their tables.

Usage::

    python -m repro.experiments            # run every experiment
    python -m repro.experiments E1 E2      # run a selection
"""

from __future__ import annotations

import sys

from .harness import EXPERIMENT_REGISTRY, run_experiment


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    selected = argv or sorted(EXPERIMENT_REGISTRY)
    for experiment_id in selected:
        result = run_experiment(experiment_id)
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
