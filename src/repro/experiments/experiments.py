"""The per-experiment drivers (E1–E9 of DESIGN.md).

Each function regenerates one of the paper's figures/claims on synthetic
workloads and returns an :class:`~repro.experiments.harness.ExperimentResult`
whose rows are the "table" for that experiment.  The ``scale`` arguments are
deliberately modest by default so that the whole suite runs on a laptop; the
benchmark scripts pass larger values.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence

from .harness import ExperimentResult, register_experiment, time_batched_membership, time_callable
from ..evaluation import Session, forest_contains, forest_contains_pebble
from ..hom import ctw, tw, maps_to
from ..patterns import WDPatternForest, wdpf
from ..patterns.gtg import gtg
from ..reductions import minimum_family_index, solve_clique_via_wdeval
from ..rdf.terms import IRI
from ..sparql.mappings import Mapping
from ..width import branch_treewidth, domination_width, local_width, local_width_of_forest
from ..workloads.clique_instances import has_clique_bruteforce, random_host_graph, plant_clique
from ..workloads.families import (
    chain_tree,
    example3_gtgraphs,
    fk_data_graph,
    fk_forest,
    hard_clique_tree,
    tprime_data_graph,
    tprime_tree,
)
from ..workloads.random_patterns import random_wd_tree

__all__ = [
    "experiment_e1_figure1_cores",
    "experiment_e2_figure2_widths",
    "experiment_e3_figure3_domination",
    "experiment_e4_theorem1_scaling",
    "experiment_e5_unionfree_family",
    "experiment_e6_prop5_dw_equals_bw",
    "experiment_e7_hardness_reduction",
    "experiment_e8_local_vs_domination",
    "experiment_e9_dichotomy_frontier",
]


def _solution_sample(forest: WDPatternForest, graph, limit: int = 3) -> List[Mapping]:
    """A few solutions of the forest over the graph (used to pick membership
    queries that exercise both accept and reject paths)."""
    from ..evaluation import forest_solutions

    return sorted(forest_solutions(forest, graph), key=repr)[:limit]


def _membership_queries(forest: WDPatternForest, graph, limit: int = 4) -> List[Mapping]:
    """Membership queries mixing true solutions and perturbed non-solutions."""
    queries = _solution_sample(forest, graph, limit)
    perturbed: List[Mapping] = []
    for mu in queries[: max(1, limit // 2)]:
        bindings = mu.as_dict()
        if bindings:
            first = sorted(bindings, key=lambda v: v.name)[0]
            bindings[first] = IRI("http://example.org/__nowhere__")
            perturbed.append(Mapping(bindings))
    return queries + perturbed


@register_experiment("E1")
def experiment_e1_figure1_cores(ks: Sequence[int] = (2, 3, 4, 5)) -> ExperimentResult:
    """Figure 1 / Example 3: core treewidth versus treewidth."""
    result = ExperimentResult(
        experiment_id="E1",
        title="Figure 1 / Example 3: (S, X) and (S', X)",
        claim="ctw(S,X) = k-1; ctw(S',X) = 1 while tw(S',X) = k-1",
        columns=["k", "ctw(S,X)", "expected", "ctw(S',X)", "tw(S',X)", "expected tw"],
    )
    for k in ks:
        s, s_prime = example3_gtgraphs(k)
        result.add_row(
            **{
                "k": k,
                "ctw(S,X)": ctw(s),
                "expected": k - 1,
                "ctw(S',X)": ctw(s_prime),
                "tw(S',X)": tw(s_prime),
                "expected tw": k - 1,
            }
        )
    return result


@register_experiment("E2")
def experiment_e2_figure2_widths(ks: Sequence[int] = (2, 3, 4)) -> ExperimentResult:
    """Figure 2 / Examples 4-5: dw(F_k) = 1 while the local width grows."""
    result = ExperimentResult(
        experiment_id="E2",
        title="Figure 2 / Examples 4-5: the forest F_k",
        claim="dw(F_k) = 1 for every k, local width = k-1 (not locally tractable)",
        columns=["k", "dw(F_k)", "local width", "expected local", "subtrees"],
    )
    for k in ks:
        forest = fk_forest(k)
        per_subtree: Dict = {}
        width = domination_width(forest, per_subtree)
        result.add_row(
            **{
                "k": k,
                "dw(F_k)": width,
                "local width": local_width_of_forest(forest),
                "expected local": k - 1,
                "subtrees": len(per_subtree),
            }
        )
    return result


@register_experiment("E3")
def experiment_e3_figure3_domination(ks: Sequence[int] = (2, 3, 4)) -> ExperimentResult:
    """Figure 3 / Example 4: GtG(T1[r1]) and the domination S_Δ1 → S_Δ2."""
    result = ExperimentResult(
        experiment_id="E3",
        title="Figure 3 / Example 4: GtG(T1[r1]) for F_k",
        claim="GtG(T1[r1]) has widths {1, k-1} and the width-1 member dominates",
        columns=["k", "|GtG|", "widths", "1-dominated"],
    )
    for k in ks:
        forest = fk_forest(k)
        tree = forest[0]
        subtree = tree.root_subtree()
        members = sorted(gtg(forest, subtree), key=lambda g: len(g.triples()))
        widths = sorted(ctw(member) for member in members)
        low = [member for member in members if ctw(member) <= 1]
        dominated = all(
            any(maps_to(candidate, member) for candidate in low) or member in low
            for member in members
        )
        result.add_row(
            **{"k": k, "|GtG|": len(members), "widths": widths, "1-dominated": dominated}
        )
    return result


@register_experiment("E4")
def experiment_e4_theorem1_scaling(
    ks: Sequence[int] = (2, 3, 4),
    graph_sizes: Sequence[int] = (10, 20, 30),
    triples_per_node: int = 6,
) -> ExperimentResult:
    """Theorem 1: the pebble algorithm stays polynomial on the bounded-dw
    family F_k while agreeing with the exact baseline."""
    result = ExperimentResult(
        experiment_id="E4",
        title="Theorem 1: pebble evaluation vs natural evaluation on F_k",
        claim="the k=1 pebble relaxation is exact on F_k and scales polynomially",
        columns=["k", "|G|", "queries", "agreement", "t_natural (s)", "t_pebble (s)"],
    )
    session = Session()
    for k in ks:
        forest = fk_forest(k)
        for size in graph_sizes:
            graph = fk_data_graph(size, size * triples_per_node, clique_size=k, seed=size)
            queries = _membership_queries(forest, graph)
            if not queries:
                continue
            t_nat, answers_nat = time_batched_membership(forest, graph, queries, method="natural")
            t_peb, answers_peb = time_batched_membership(
                forest, graph, queries, method="pebble", width=1
            )
            result.add_row(
                **{
                    "k": k,
                    "|G|": len(graph),
                    "queries": len(queries),
                    "agreement": answers_nat == answers_peb,
                    "t_natural (s)": t_nat,
                    "t_pebble (s)": t_peb,
                }
            )
    result.add_note(
        f"plan: {session.plan(fk_forest(min(ks)), method='pebble', width=1).summary()} "
        "(dw(F_k) = 1, so the 2-pebble run is exact)"
    )
    return result


@register_experiment("E5")
def experiment_e5_unionfree_family(
    ks: Sequence[int] = (2, 3, 4, 5),
    graph_size: int = 15,
) -> ExperimentResult:
    """Section 3.2: the UNION-free family T'_k has bw = 1 but local width k-1,
    and is evaluated exactly by the 2-pebble algorithm."""
    result = ExperimentResult(
        experiment_id="E5",
        title="Section 3.2: the UNION-free family T'_k",
        claim="bw(T'_k) = 1, local width = k-1, 2-pebble evaluation is exact",
        columns=["k", "bw", "local width", "dw (forest)", "agreement"],
    )
    for k in ks:
        tree = tprime_tree(k)
        forest = WDPatternForest([tree])
        graph = tprime_data_graph(graph_size, graph_size * 4, seed=k)
        queries = _membership_queries(forest, graph)
        agreement = all(
            forest_contains(forest, graph, mu) == forest_contains_pebble(forest, graph, mu, 1)
            for mu in queries
        )
        result.add_row(
            **{
                "k": k,
                "bw": branch_treewidth(tree),
                "local width": local_width(tree),
                "dw (forest)": domination_width(forest),
                "agreement": agreement,
            }
        )
    return result


@register_experiment("E6")
def experiment_e6_prop5_dw_equals_bw(
    num_patterns: int = 10, num_nodes: int = 3, seed: int = 7
) -> ExperimentResult:
    """Proposition 5: dw = bw on random UNION-free patterns."""
    result = ExperimentResult(
        experiment_id="E6",
        title="Proposition 5: dw(P) = bw(P) for UNION-free patterns",
        claim="domination width equals branch treewidth on UNION-free patterns",
        columns=["pattern", "nodes", "bw", "dw", "equal"],
    )
    equal_count = 0
    for index in range(num_patterns):
        tree = random_wd_tree(num_nodes=num_nodes, seed=seed + index)
        forest = WDPatternForest([tree])
        bw = branch_treewidth(tree)
        dw = domination_width(forest)
        equal_count += int(bw == dw)
        result.add_row(pattern=index, nodes=tree.size(), bw=bw, dw=dw, equal=bw == dw)
    result.add_note(f"{equal_count}/{num_patterns} patterns satisfy dw = bw (expected: all)")
    return result


@register_experiment("E7")
def experiment_e7_hardness_reduction(
    ks: Sequence[int] = (2, 3),
    host_sizes: Sequence[int] = (5, 6),
    edge_probability: float = 0.5,
    seed: int = 3,
) -> ExperimentResult:
    """Theorem 2 / Lemma 2: the CLIQUE reduction is correct and its cost grows
    with the clique size parameter."""
    result = ExperimentResult(
        experiment_id="E7",
        title="Theorem 2: solving CLIQUE through co-wdEVAL",
        claim="H has a k-clique iff the reduced mapping is NOT a solution",
        columns=["k", "|V(H)|", "family index", "reduction+solve (s)", "answer", "brute force", "correct"],
    )
    for k in ks:
        for size in host_sizes:
            host = random_host_graph(size, edge_probability, seed=seed + size)
            if k == max(ks):
                host, _ = plant_clique(host, k, seed=seed)
            expected = has_clique_bruteforce(host, k)
            elapsed, answer = time_callable(lambda: solve_clique_via_wdeval(host, k))
            result.add_row(
                **{
                    "k": k,
                    "|V(H)|": size,
                    "family index": minimum_family_index(k),
                    "reduction+solve (s)": elapsed,
                    "answer": answer,
                    "brute force": expected,
                    "correct": answer == expected,
                }
            )
    return result


@register_experiment("E8")
def experiment_e8_local_vs_domination(ks: Sequence[int] = (2, 3, 4, 5)) -> ExperimentResult:
    """The tractability gap: families with unbounded local width but constant
    domination width / branch treewidth (F_k and T'_k) versus the locally
    tractable control family (OPT chains)."""
    result = ExperimentResult(
        experiment_id="E8",
        title="Local tractability vs domination width",
        claim="bounded dw strictly extends local tractability (Examples 4-5, Sec. 3.2)",
        columns=["k", "family", "local width", "dw / bw"],
    )
    for k in ks:
        forest = fk_forest(k)
        result.add_row(
            **{"k": k, "family": "F_k", "local width": local_width_of_forest(forest), "dw / bw": domination_width(forest)}
        )
        tree = tprime_tree(k)
        result.add_row(
            **{"k": k, "family": "T'_k", "local width": local_width(tree), "dw / bw": branch_treewidth(tree)}
        )
        chain = chain_tree(min(k, 4))
        result.add_row(
            **{"k": k, "family": "OPT chain", "local width": local_width(chain), "dw / bw": branch_treewidth(chain)}
        )
    return result


@register_experiment("E9")
def experiment_e9_dichotomy_frontier(
    bounded_ks: Sequence[int] = (2, 3, 4),
    unbounded_ks: Sequence[int] = (2, 3, 4),
    graph_size: int = 12,
) -> ExperimentResult:
    """The dichotomy frontier: query-size scaling of the exact baseline on a
    bounded-dw family (polynomial) versus the unbounded-dw family Q_k (the
    child test degenerates into clique search)."""
    result = ExperimentResult(
        experiment_id="E9",
        title="Theorem 3: bounded vs unbounded domination width",
        claim="evaluation cost stays flat on bounded-dw queries and grows on unbounded-dw queries",
        columns=["family", "k", "dw/bw", "t_membership (s)"],
    )
    session = Session()
    for k in bounded_ks:
        forest = fk_forest(k)
        graph = fk_data_graph(graph_size, graph_size * 6, clique_size=k, seed=k)
        queries = _membership_queries(forest, graph)
        elapsed, _ = time_batched_membership(forest, graph, queries, method="pebble", width=1)
        result.add_row(**{"family": "F_k (dw=1)", "k": k, "dw/bw": 1, "t_membership (s)": elapsed})
        if k == min(bounded_ks):
            result.add_note(
                f"bounded-side plan: {session.plan(forest, method='pebble', width=1).summary()}"
            )
    for k in unbounded_ks:
        tree = hard_clique_tree(k)
        forest = WDPatternForest([tree])
        host = random_host_graph(graph_size, 0.5, seed=k)
        from ..workloads.families import clique_query_data_graph

        graph = clique_query_data_graph(host)
        queries = _membership_queries(forest, graph)
        elapsed, _ = time_batched_membership(forest, graph, queries, method="natural")
        result.add_row(
            **{"family": "Q_k (dw=k-1)", "k": k, "dw/bw": k - 1, "t_membership (s)": elapsed}
        )
    return result
