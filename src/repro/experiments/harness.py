"""Experiment harness: result tables, timing helpers and a registry.

The benchmark scripts in ``benchmarks/`` and the command line entry point
``python -m repro.experiments`` both drive the experiment functions defined
in :mod:`repro.experiments.experiments`; this module provides the shared
plumbing: a result container that renders as a text table (the "rows/series
the paper reports"), a timing helper and the experiment registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "ExperimentResult",
    "time_callable",
    "time_batched_membership",
    "time_batched_enumeration",
    "EXPERIMENT_REGISTRY",
    "register_experiment",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """The outcome of one experiment.

    Attributes
    ----------
    experiment_id:
        Short identifier (``"E1"`` ... ``"E9"``).
    title:
        Human-readable description tying the experiment to the paper artefact.
    claim:
        The paper's claim being checked.
    columns:
        Ordered column names of the result table.
    rows:
        Table rows (one dict per row, keyed by column name).
    notes:
        Free-form remarks (e.g. observed asymptotics).
    """

    experiment_id: str
    title: str
    claim: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append a row; values are keyed by column name."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-form note."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Render the result as a fixed-width text table."""
        header = f"[{self.experiment_id}] {self.title}"
        claim = f"claim: {self.claim}"
        widths = {
            column: max(
                len(str(column)),
                *(len(_format_cell(row.get(column, ""))) for row in self.rows),
            )
            if self.rows
            else len(str(column))
            for column in self.columns
        }
        lines = [header, claim, ""]
        lines.append(" | ".join(str(c).ljust(widths[c]) for c in self.columns))
        lines.append("-+-".join("-" * widths[c] for c in self.columns))
        for row in self.rows:
            lines.append(
                " | ".join(_format_cell(row.get(c, "")).ljust(widths[c]) for c in self.columns)
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def time_callable(function: Callable[[], object], repeat: int = 1) -> tuple[float, object]:
    """Run *function* ``repeat`` times and return (best wall-clock seconds, last result)."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = function()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def time_batched_membership(
    forest,
    graph,
    queries: Sequence,
    method: str = "natural",
    width: Optional[int] = None,
    width_bound: Optional[int] = None,
    processes: Optional[int] = None,
    repeat: int = 1,
) -> tuple[float, List[bool]]:
    """Time a whole membership workload through a cached evaluation session.

    Answers every query in *queries* against *graph* in one batched
    :meth:`~repro.evaluation.session.Session.check_many` call (best
    wall-clock over *repeat* runs, like :func:`time_callable`).  A fresh
    :class:`~repro.evaluation.session.Session` — and hence a fresh, cold
    cache — is built inside the timed callable, so every repeat measures the
    full batched evaluation rather than warm-cache lookups.  This is the
    path the experiment drivers use for their timing series.
    """
    from ..evaluation import Session

    def run() -> List[bool]:
        session = Session(processes=processes)
        engine = session.engine(forest, width_bound=width_bound)
        return session.check_many(engine, graph, queries, method=method, width=width)

    return time_callable(run, repeat)


def time_batched_enumeration(
    forests: Sequence,
    graph,
    method: str = "auto",
    processes: Optional[int] = None,
    warm: bool = False,
    warm_on_fork: bool = True,
    warm_processes: Optional[int] = 1,
    repeat: int = 1,
) -> tuple[float, List]:
    """Time a batched enumeration workload through an evaluation session.

    Enumerates every forest in *forests* against *graph* in one
    :meth:`~repro.evaluation.session.Session.solutions_many` call (best
    wall-clock over *repeat* runs).  With ``warm=False`` a fresh session —
    and hence a cold cache — is built inside the timed callable, measuring
    the full batched evaluation.  With ``warm=True`` the session first
    enumerates the workload once *outside* the timing (steady-state serving:
    indexes, homomorphism lists and recorded answer lists are hot) and the
    timed runs measure warm batched enumeration — with *processes*, cells
    whose complete answer lists are recorded replay parent-side and never
    reach the pool, so this measures steady-state replay, not worker
    forking.  *warm_processes* sizes the warm-up pass itself: the
    default ``1`` warms serially in the parent; any larger value warms
    through a parallel batch whose workers ship their learned state back
    over the :class:`~repro.evaluation.cache.CacheDelta` return channel —
    the parent ends up warm either way (worker caches no longer die with
    the pool), which is exactly what the repeated-parallel-batch benchmark
    case measures.  *warm_on_fork* is forwarded to the session —
    ``warm_on_fork=False`` with a pool is the **cold-worker baseline**
    (every worker rebuilds its cache from scratch).  This is the trio of
    paths ``benchmarks/bench_session_enumeration.py`` compares in its
    parallel cases.
    """
    from ..evaluation import Session

    forests = list(forests)
    if warm:
        session = Session(processes=processes, warm_on_fork=warm_on_fork)
        session.solutions_many(
            forests, graph, method=method, processes=warm_processes
        )
        return time_callable(
            lambda: session.solutions_many(forests, graph, method=method), repeat
        )

    def run() -> List:
        session = Session(processes=processes, warm_on_fork=warm_on_fork)
        return session.solutions_many(forests, graph, method=method)

    return time_callable(run, repeat)


#: Registry mapping experiment id to a callable returning an ExperimentResult.
EXPERIMENT_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register_experiment(experiment_id: str) -> Callable:
    """Decorator registering an experiment function under the given id."""

    def decorator(function: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        EXPERIMENT_REGISTRY[experiment_id] = function
        return function

    return decorator


def run_experiment(experiment_id: str, **kwargs: object) -> ExperimentResult:
    """Run a registered experiment by id."""
    if experiment_id not in EXPERIMENT_REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENT_REGISTRY)}"
        )
    return EXPERIMENT_REGISTRY[experiment_id](**kwargs)
