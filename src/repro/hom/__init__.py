"""Homomorphism engine: t-graphs, Gaifman graphs, homomorphism search, cores,
treewidth and the derived width measures ``tw`` / ``ctw``."""

from .tgraph import TGraph, GeneralizedTGraph, freeze_tgraph, fresh_variable_renaming
from .gaifman import gaifman_graph, gaifman_graph_of_tgraph
from .homomorphism import (
    find_homomorphism,
    all_homomorphisms,
    has_homomorphism,
    homomorphism_count,
    maps_to,
    maps_into,
    extends_into,
    TargetIndex,
    ColumnarTargetIndex,
    target_index,
)
from .core import core_of, is_core, is_core_of, hom_equivalent
from .treewidth import (
    treewidth,
    treewidth_exact,
    treewidth_upper_bound,
    treewidth_lower_bound,
    tree_decomposition,
    tw,
    ctw,
    DEFAULT_EXACT_THRESHOLD,
)

__all__ = [
    "TGraph",
    "GeneralizedTGraph",
    "freeze_tgraph",
    "fresh_variable_renaming",
    "gaifman_graph",
    "gaifman_graph_of_tgraph",
    "find_homomorphism",
    "all_homomorphisms",
    "has_homomorphism",
    "homomorphism_count",
    "maps_to",
    "maps_into",
    "extends_into",
    "TargetIndex",
    "ColumnarTargetIndex",
    "target_index",
    "core_of",
    "is_core",
    "is_core_of",
    "hom_equivalent",
    "treewidth",
    "treewidth_exact",
    "treewidth_upper_bound",
    "treewidth_lower_bound",
    "tree_decomposition",
    "tw",
    "ctw",
    "DEFAULT_EXACT_THRESHOLD",
]
