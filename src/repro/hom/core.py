"""Cores of generalised t-graphs.

``(S', X)`` is a *core of* ``(S, X)`` when it is a subgraph of ``(S, X)``
that is itself a core (no homomorphism to a proper subgraph), with
``(S, X) → (S', X)`` and ``(S', X) → (S, X)``.  Every generalised t-graph
has a unique core up to variable renaming (Proposition 1 of the paper), so
``core(S, X)`` is well defined.

The computation uses the classical greedy folding argument: as long as some
single triple ``t`` can be dropped while ``(S, X) → (S \\ {t}, X)`` still
holds, drop it; the fixpoint is a core.  (If a homomorphism to *some* proper
subgraph existed, composing with the inclusion would give one to a subgraph
missing a single triple, so the fixpoint indeed has no homomorphism to any
proper subgraph.)
"""

from __future__ import annotations

from typing import Optional

from .homomorphism import has_homomorphism
from .tgraph import GeneralizedTGraph, TGraph
from ..rdf.terms import Variable

__all__ = ["core_of", "is_core", "is_core_of", "hom_equivalent"]


def _retractable_triple(gtgraph: GeneralizedTGraph) -> Optional[TGraph]:
    """Return ``S \\ {t}`` for some triple ``t`` such that ``(S,X) → (S\\{t},X)``,
    or ``None`` when no single triple can be dropped."""
    fixed = {var: var for var in gtgraph.distinguished}
    triples = gtgraph.tgraph.triples()
    for t in sorted(triples):
        candidate = TGraph(triples - {t})
        if has_homomorphism(gtgraph.tgraph, candidate, fixed):
            return candidate
    return None


def core_of(gtgraph: GeneralizedTGraph) -> GeneralizedTGraph:
    """The core of a generalised t-graph (a subgraph of the input).

    >>> g = GeneralizedTGraph.of([("?x", "p", "?y"), ("?x", "p", "?z")], ["x"])
    >>> len(core_of(g).triples())
    1
    """
    current = gtgraph
    while True:
        smaller = _retractable_triple(current)
        if smaller is None:
            return current
        current = GeneralizedTGraph(smaller, gtgraph.distinguished & smaller.variables())


def is_core(gtgraph: GeneralizedTGraph) -> bool:
    """``True`` iff the generalised t-graph has no homomorphism to a proper subgraph."""
    return _retractable_triple(gtgraph) is None


def is_core_of(candidate: GeneralizedTGraph, gtgraph: GeneralizedTGraph) -> bool:
    """Check the defining conditions of "``candidate`` is a core of ``gtgraph``"."""
    if not candidate.tgraph.issubset(gtgraph.tgraph):
        return False
    if not is_core(candidate):
        return False
    fixed = {var: var for var in gtgraph.distinguished}
    forward = has_homomorphism(gtgraph.tgraph, candidate.tgraph, fixed)
    backward = has_homomorphism(candidate.tgraph, gtgraph.tgraph, fixed)
    return forward and backward


def hom_equivalent(left: GeneralizedTGraph, right: GeneralizedTGraph) -> bool:
    """Homomorphic equivalence ``(S, X) ⇄ (S', X)`` (both directions)."""
    if left.distinguished != right.distinguished:
        return False
    fixed = {var: var for var in left.distinguished}
    return has_homomorphism(left.tgraph, right.tgraph, fixed) and has_homomorphism(
        right.tgraph, left.tgraph, fixed
    )
