"""Gaifman graphs of generalised t-graphs.

The Gaifman graph ``G(S, X)`` has as vertices the non-distinguished variables
``vars(S) \\ X`` and an edge between two distinct variables whenever they
co-occur in a triple pattern of ``S`` (Section 3 of the paper).  Treewidth of
a generalised t-graph is defined as the treewidth of its Gaifman graph.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

import networkx as nx

from .tgraph import GeneralizedTGraph, TGraph
from ..rdf.terms import Variable

__all__ = ["gaifman_graph", "gaifman_graph_of_tgraph"]


def gaifman_graph(gtgraph: GeneralizedTGraph) -> nx.Graph:
    """The Gaifman graph of ``(S, X)`` as a networkx graph.

    Vertices are the non-distinguished variables; distinguished variables and
    constants do not appear (they behave like constants for treewidth
    purposes, exactly as in the paper).
    """
    graph = nx.Graph()
    existential = gtgraph.existential_variables()
    graph.add_nodes_from(existential)
    for triple in gtgraph.triples():
        triple_vars = [v for v in triple.variables() if v in existential]
        for u, v in combinations(sorted(set(triple_vars), key=lambda x: x.name), 2):
            graph.add_edge(u, v)
    return graph


def gaifman_graph_of_tgraph(tgraph: TGraph, distinguished: Iterable[Variable] = ()) -> nx.Graph:
    """Convenience wrapper building the Gaifman graph directly from a t-graph."""
    return gaifman_graph(GeneralizedTGraph(tgraph, frozenset(distinguished) & tgraph.variables()))
