"""Homomorphisms between t-graphs and into RDF graphs.

This module implements the single NP oracle of the library: a backtracking
search for homomorphisms ``h`` from a t-graph ``S`` into a target t-graph or
RDF graph, subject to *fixed* bindings:

* constants (IRIs / literals) are always mapped to themselves;
* the distinguished variables ``X`` of a generalised t-graph are fixed to
  themselves (``(S, X) → (S', X)``) or to ``µ`` (``(S, X) →µ G``).

The search maintains per-variable candidate domains and prunes them by
forward checking along the triples that mention the variable just assigned
(most-constrained-variable ordering picks the next branching variable), which
keeps the common cases — conjunctive matching, core computation, the natural
wdPF evaluation algorithm and the Theorem 2 reduction instances — well within
reach even though the problem is NP-complete in general.

The public helpers mirror the relations used in the paper:

* :func:`find_homomorphism` / :func:`all_homomorphisms` — raw search;
* :func:`maps_to` — ``(S, X) → (S', X)``;
* :func:`maps_into` — ``(S, X) →µ G``;
* :func:`extends_into` — compatibility-style extension used by the baseline
  wdPF evaluation algorithm.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .tgraph import GeneralizedTGraph, TGraph
from ..rdf.columns import scan_mask
from ..rdf.graph import RDFGraph
from ..rdf.terms import Term, Variable, is_ground_term
from ..rdf.triples import TriplePattern
from ..sparql.mappings import Mapping as SolutionMapping
from ..exceptions import EvaluationError

__all__ = [
    "find_homomorphism",
    "all_homomorphisms",
    "has_homomorphism",
    "maps_to",
    "maps_into",
    "extends_into",
    "homomorphism_count",
    "TargetIndex",
    "ColumnarTargetIndex",
    "target_index",
]

_TargetTriples = FrozenSet[TriplePattern]


def _target_triples(target: TGraph | RDFGraph | Iterable[TriplePattern]) -> _TargetTriples:
    if isinstance(target, TGraph):
        return target.triples()
    if isinstance(target, RDFGraph):
        return target.triples()
    return frozenset(target)


class TargetIndex:
    """Index of the target triples by every mask of bound positions."""

    __slots__ = ("triples", "_index", "terms")

    def __init__(self, triples: _TargetTriples) -> None:
        self.triples = triples
        self._index: Dict[Tuple, List[TriplePattern]] = {}
        terms: Set[Term] = set()
        for t in triples:
            s, p, o = t.subject, t.predicate, t.object
            terms.update((s, p, o))
            for key in (
                (s, None, None),
                (None, p, None),
                (None, None, o),
                (s, p, None),
                (s, None, o),
                (None, p, o),
                (s, p, o),
            ):
                self._index.setdefault(key, []).append(t)
        self.terms = frozenset(terms)

    def candidates(self, s: Optional[Term], p: Optional[Term], o: Optional[Term]) -> Iterable[TriplePattern]:
        """Target triples agreeing with the bound positions (None = unbound)."""
        if s is None and p is None and o is None:
            return self.triples
        return self._index.get((s, p, o), ())

    def pattern_solutions(
        self,
        pattern: TriplePattern,
        fixed: Optional[Mapping[Variable, Term]] = None,
    ) -> Iterator[Dict[Variable, Term]]:
        """Bindings of the unbound variables of one triple pattern — an index
        join against the target triples.

        Positions bound by *fixed* (or holding constants) restrict the
        candidate lookup; repeated unbound variables must receive equal
        images.  Enumerating the bindings costs time proportional to the
        number of candidate triples for the bound-position mask, not to the
        size of the target — this is what the consistency kernel uses to
        build per-variable domains and binary support relations instead of
        generate-and-test over ``dom(G)`` squared.
        """
        assignment: Mapping[Variable, Term] = fixed if fixed is not None else {}
        for candidate in _compatible_targets(pattern, assignment, self):
            binding: Dict[Variable, Term] = {}
            for pat_term, target_term in zip(pattern, candidate):
                if isinstance(pat_term, Variable) and pat_term not in assignment:
                    binding[pat_term] = target_term
            yield binding


class ColumnarTargetIndex(TargetIndex):
    """A :class:`TargetIndex` over the sorted id-columns of an :class:`RDFGraph`.

    Instead of materialising a hash map from every bound-position mask to
    triple lists, this index snapshots the graph's three sorted permutation
    columns (flushed copies — later mutations of the graph never leak in)
    and answers :meth:`candidates` / :meth:`pattern_solutions` as binary-
    search **range scans** in the integer id domain
    (:func:`repro.rdf.columns.scan_mask`).  Building it is a few column
    copies — O(n) ``memcpy``-speed, no per-triple hashing — and it shares
    the graph's term dictionary (ids are never reassigned) and decoded-
    triple memo, so terms and triples are materialised lazily, once.
    """

    __slots__ = (
        "_bits",
        "_spo",
        "_pos",
        "_osp",
        "_dict",
        "_decoded",
        "_terms_cache",
        "_triples_cache",
    )

    def __init__(self, graph: RDFGraph) -> None:
        (
            self._bits,
            self._spo,
            self._pos,
            self._osp,
            self._dict,
            self._decoded,
        ) = graph._snapshot()
        self._terms_cache: Optional[FrozenSet[Term]] = None
        self._triples_cache: Optional[_TargetTriples] = None

    # ``triples`` and ``terms`` shadow the base-class slots with lazily
    # materialised views of the columns.
    @property  # type: ignore[override]
    def triples(self) -> _TargetTriples:
        cached = self._triples_cache
        if cached is None:
            decode = self._decode
            cached = frozenset(decode(key) for key in self._spo)
            self._triples_cache = cached
        return cached

    @property  # type: ignore[override]
    def terms(self) -> FrozenSet[Term]:
        cached = self._terms_cache
        if cached is None:
            shift = 2 * self._bits
            ids = {key >> shift for key in self._spo}
            ids.update(key >> shift for key in self._pos)
            ids.update(key >> shift for key in self._osp)
            term_of = self._dict.term_of
            cached = frozenset(term_of(i) for i in ids)
            self._terms_cache = cached
        return cached

    def _decode(self, key: int) -> TriplePattern:
        triple = self._decoded.get(key)
        if triple is None:
            bits = self._bits
            mask = (1 << bits) - 1
            term_of = self._dict.term_of
            triple = TriplePattern(
                term_of(key >> (2 * bits)),
                term_of((key >> bits) & mask),
                term_of(key & mask),
            )
            self._decoded[key] = triple
        return triple

    def _resolve(self, term: Optional[Term]) -> Optional[int]:
        """The id of a bound term; ``-1`` when it cannot occur in the target."""
        if term is None:
            return None
        term_id = self._dict.id_of(term)
        return -1 if term_id is None else term_id

    def candidates(
        self, s: Optional[Term], p: Optional[Term], o: Optional[Term]
    ) -> Iterable[TriplePattern]:
        """Target triples agreeing with the bound positions (None = unbound)."""
        si, pi, oi = self._resolve(s), self._resolve(p), self._resolve(o)
        if -1 in (si, pi, oi):
            return ()
        decode = self._decode
        return (
            decode(key)
            for _, key in scan_mask(self._bits, self._spo, self._pos, self._osp, si, pi, oi)
        )

    def pattern_solutions(
        self,
        pattern: TriplePattern,
        fixed: Optional[Mapping[Variable, Term]] = None,
    ) -> Iterator[Dict[Variable, Term]]:
        """Bindings of the unbound variables of one triple pattern — a single
        range scan over the permutation led by the bound positions, with the
        repeated-variable check and the binding construction both done on
        integer ids (terms are only materialised for the yielded bindings)."""
        assignment: Mapping[Variable, Term] = fixed if fixed is not None else {}
        id_of = self._dict.id_of
        bound: List[Optional[int]] = []
        unbound_positions: Dict[Variable, List[int]] = {}
        for position, term in enumerate(pattern):
            if isinstance(term, Variable):
                value = assignment.get(term)
                if value is None:
                    unbound_positions.setdefault(term, []).append(position)
                    bound.append(None)
                    continue
                term = value
            term_id = id_of(term)
            if term_id is None:
                # A bound term the target never interned (or a non-ground
                # fixed value): nothing in a ground target can match it.
                return
            bound.append(term_id)
        groups = [ps for ps in unbound_positions.values() if len(ps) > 1]
        term_of = self._dict.term_of
        for ids, _ in scan_mask(
            self._bits, self._spo, self._pos, self._osp, bound[0], bound[1], bound[2]
        ):
            if groups and any(
                len({ids[position] for position in group}) != 1 for group in groups
            ):
                continue
            yield {
                var: term_of(ids[positions[0]])
                for var, positions in unbound_positions.items()
            }


#: Backwards-compatible private alias.
_TargetIndex = TargetIndex


def target_index(target: TGraph | RDFGraph | Iterable[TriplePattern]) -> TargetIndex:
    """Build a reusable :class:`TargetIndex` over *target*.

    RDF graphs get a :class:`ColumnarTargetIndex` riding directly on the
    graph's sorted id-columns; t-graphs and raw triple iterables get the
    hash-indexed :class:`TargetIndex`.  The search helpers accept a prebuilt
    index via their ``index=`` parameter so that callers answering many
    homomorphism queries against one target (notably the evaluation cache)
    pay the construction cost only once.
    """
    if isinstance(target, RDFGraph):
        return ColumnarTargetIndex(target)
    return TargetIndex(_target_triples(target))


def _compatible_targets(
    pattern: TriplePattern, assignment: Mapping[Variable, Term], index: TargetIndex
) -> Iterator[TriplePattern]:
    """Target triples that the partially-assigned *pattern* could map onto."""

    def resolved(term: Term) -> Optional[Term]:
        if isinstance(term, Variable):
            return assignment.get(term)
        return term

    s, p, o = (resolved(t) for t in pattern)
    for candidate in index.candidates(s, p, o):
        # Repeated unbound variables in the pattern must receive equal images.
        local: Dict[Variable, Term] = {}
        ok = True
        for pat_term, target_term in zip(pattern, candidate):
            value = resolved(pat_term)
            if value is not None:
                if value != target_term:
                    ok = False
                    break
            else:
                assert isinstance(pat_term, Variable)
                seen = local.get(pat_term)
                if seen is None:
                    local[pat_term] = target_term
                elif seen != target_term:
                    ok = False
                    break
        if ok:
            yield candidate


def _triple_domains(
    pattern: TriplePattern,
    assignment: Mapping[Variable, Term],
    index: TargetIndex,
    restrict_to: Optional[Mapping[Variable, Set[Term]]] = None,
) -> Dict[Variable, Set[Term]]:
    """For one triple with at least one unassigned variable, the values its
    unassigned variables can take.

    When *restrict_to* is given, candidate values outside the current domains
    are discarded eagerly.
    """
    unassigned = [v for v in pattern.variables() if v not in assignment]
    domains: Dict[Variable, Set[Term]] = {v: set() for v in unassigned}
    for candidate in _compatible_targets(pattern, assignment, index):
        for pat_term, target_term in zip(pattern, candidate):
            if isinstance(pat_term, Variable) and pat_term in domains:
                if restrict_to is not None and target_term not in restrict_to.get(pat_term, ()):
                    continue
                domains[pat_term].add(target_term)
    return domains


def _search(
    source: Sequence[TriplePattern],
    index: TargetIndex,
    fixed: Dict[Variable, Term],
    budget=None,
) -> Iterator[Dict[Variable, Term]]:
    """Backtracking search with forward checking over maintained domains.

    *budget* is any object with an amortized ``tick()`` method (duck-typed
    so this layer need not import the evaluation layer); it is ticked once
    per value tried at a backtracking node, bounding the NP oracle."""
    source_vars: Set[Variable] = set()
    for t in source:
        source_vars.update(t.variables())
    unbound = sorted(source_vars - set(fixed), key=lambda v: v.name)
    assignment: Dict[Variable, Term] = dict(fixed)

    # Triples indexed by the variables they mention (only unbound ones matter
    # for propagation).
    triples_of_var: Dict[Variable, List[TriplePattern]] = {v: [] for v in unbound}
    for t in source:
        for v in t.variables():
            if v in triples_of_var:
                triples_of_var[v].append(t)

    # Triples without unbound variables must be satisfied outright.
    for t in source:
        if not (t.variables() - set(fixed)):
            if not any(True for _ in _compatible_targets(t, assignment, index)):
                return

    # Initial domains: intersect, for every triple mentioning the variable,
    # the values that triple allows.
    domains: Dict[Variable, Set[Term]] = {}
    for var in unbound:
        domain: Optional[Set[Term]] = None
        for t in triples_of_var[var]:
            values = _triple_domains(t, assignment, index).get(var, set())
            domain = set(values) if domain is None else (domain & values)
            if not domain:
                return
        domains[var] = domain if domain is not None else set(index.terms)

    def propagate(
        var: Variable, current: Dict[Variable, Set[Term]]
    ) -> Optional[Dict[Variable, Set[Term]]]:
        """Forward checking after assigning *var*: shrink the domains of the
        unassigned variables sharing a triple with it."""
        updated = current
        copied = False
        for t in triples_of_var[var]:
            others = [v for v in t.variables() if v not in assignment]
            if not others:
                # The triple just became fully assigned: it must be satisfied.
                if not any(True for _ in _compatible_targets(t, assignment, index)):
                    return None
                continue
            per_triple = _triple_domains(t, assignment, index, restrict_to=updated)
            for other in others:
                allowed = per_triple.get(other, set())
                if not copied:
                    updated = {v: set(d) for v, d in updated.items()}
                    copied = True
                updated[other] &= allowed
                if not updated[other]:
                    return None
        return updated

    def backtrack(current: Dict[Variable, Set[Term]]) -> Iterator[Dict[Variable, Term]]:
        remaining = [v for v in unbound if v not in assignment]
        if not remaining:
            yield dict(assignment)
            return
        var = min(remaining, key=lambda v: (len(current[v]), v.name))
        for value in sorted(current[var], key=str):
            if budget is not None:
                budget.tick()
            assignment[var] = value
            pruned = propagate(var, current)
            if pruned is not None:
                yield from backtrack(pruned)
            del assignment[var]

    yield from backtrack(domains)


def find_homomorphism(
    source: TGraph | Iterable[TriplePattern],
    target: TGraph | RDFGraph | Iterable[TriplePattern],
    fixed: Optional[Mapping[Variable, Term]] = None,
    index: Optional[TargetIndex] = None,
    budget=None,
) -> Optional[Dict[Variable, Term]]:
    """Find one homomorphism from *source* to *target* respecting *fixed*.

    Returns a dictionary with domain exactly ``vars(source)`` (including the
    fixed variables) or ``None`` when no homomorphism exists.
    """
    for hom in all_homomorphisms(source, target, fixed, index, budget):
        return hom
    return None


def all_homomorphisms(
    source: TGraph | Iterable[TriplePattern],
    target: TGraph | RDFGraph | Iterable[TriplePattern],
    fixed: Optional[Mapping[Variable, Term]] = None,
    index: Optional[TargetIndex] = None,
    budget=None,
) -> Iterator[Dict[Variable, Term]]:
    """Iterate over all homomorphisms from *source* to *target*.

    A prebuilt *index* over the target (from :func:`target_index`) skips the
    per-call index construction; it must describe exactly the triples of
    *target*.  *budget* (any object with ``tick()``) bounds the search.
    """
    source_triples = list(source.triples() if isinstance(source, TGraph) else source)
    if index is None:
        index = target_index(target)
    fixed_dict: Dict[Variable, Term] = dict(fixed or {})
    source_vars: Set[Variable] = set()
    for t in source_triples:
        source_vars.update(t.variables())
    # Fixed bindings for variables not occurring in the source are irrelevant.
    fixed_dict = {v: t for v, t in fixed_dict.items() if v in source_vars}
    yield from _search(source_triples, index, fixed_dict, budget)


def has_homomorphism(
    source: TGraph | Iterable[TriplePattern],
    target: TGraph | RDFGraph | Iterable[TriplePattern],
    fixed: Optional[Mapping[Variable, Term]] = None,
    index: Optional[TargetIndex] = None,
) -> bool:
    """``True`` iff some homomorphism exists."""
    return find_homomorphism(source, target, fixed, index) is not None


def homomorphism_count(
    source: TGraph | Iterable[TriplePattern],
    target: TGraph | RDFGraph | Iterable[TriplePattern],
    fixed: Optional[Mapping[Variable, Term]] = None,
) -> int:
    """The number of homomorphisms (useful in tests on small instances)."""
    return sum(1 for _ in all_homomorphisms(source, target, fixed))


def maps_to(source: GeneralizedTGraph, target: GeneralizedTGraph) -> bool:
    """The relation ``(S, X) → (S', X)`` of the paper.

    Requires both generalised t-graphs to carry the same distinguished set;
    distinguished variables are mapped to themselves.
    """
    if source.distinguished != target.distinguished:
        raise EvaluationError(
            "maps_to() requires generalised t-graphs over the same distinguished set"
        )
    fixed = {var: var for var in source.distinguished}
    return has_homomorphism(source.tgraph, target.tgraph, fixed)


def maps_into(
    source: GeneralizedTGraph,
    graph: RDFGraph,
    mu: SolutionMapping,
) -> bool:
    """The relation ``(S, X) →µ G``: a homomorphism into the RDF graph whose
    restriction to ``X`` equals ``µ``.  Requires ``dom(µ) = X``."""
    if mu.domain() != source.distinguished:
        raise EvaluationError(
            f"maps_into() requires dom(µ) = X; got dom(µ) = "
            f"{sorted(str(v) for v in mu.domain())}, X = "
            f"{sorted(str(v) for v in source.distinguished)}"
        )
    fixed: Dict[Variable, Term] = {var: mu[var] for var in source.distinguished}
    return has_homomorphism(source.tgraph, graph, fixed)


def extends_into(
    triples: Iterable[TriplePattern],
    graph: RDFGraph,
    mu: SolutionMapping,
    index: Optional[TargetIndex] = None,
    budget=None,
) -> Optional[Dict[Variable, Term]]:
    """Find a homomorphism ``ν`` from *triples* to *graph* compatible with ``µ``.

    "Compatible" means that ``ν`` agrees with ``µ`` on the shared variables;
    variables of *triples* outside ``dom(µ)`` may be mapped freely.  This is
    the extension test of the natural wdPF evaluation algorithm (Lemma 1,
    condition 2)."""
    triples = list(triples)
    relevant_vars: Set[Variable] = set()
    for t in triples:
        relevant_vars.update(t.variables())
    fixed = {var: mu[var] for var in relevant_vars & mu.domain()}
    return find_homomorphism(triples, graph, fixed, index, budget)
