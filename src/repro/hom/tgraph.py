"""Triple-pattern graphs (t-graphs) and generalised t-graphs.

A *t-graph* is a finite set of triple patterns; an RDF graph is exactly a
t-graph without variables.  A *generalised t-graph* is a pair ``(S, X)``
where ``S`` is a t-graph and ``X ⊆ vars(S)`` is a set of distinguished
variables that every homomorphism must fix pointwise (Section 3 of the
paper).  These are the structures on which homomorphisms, cores, treewidth
and the pebble game operate.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Set

from ..rdf.graph import RDFGraph
from ..rdf.terms import GroundTerm, IRI, Term, Variable, is_ground_term
from ..rdf.triples import TriplePattern, Triple
from ..exceptions import ReproError

__all__ = ["TGraph", "GeneralizedTGraph", "freeze_tgraph", "fresh_variable_renaming"]


class TGraph:
    """An immutable finite set of triple patterns.

    >>> s = TGraph.of(("?x", "p", "?y"), ("?y", "p", "?z"))
    >>> len(s)
    2
    >>> sorted(str(v) for v in s.variables())
    ['?x', '?y', '?z']
    """

    __slots__ = ("_triples", "_hash")

    def __init__(self, triples: Iterable[TriplePattern] = ()) -> None:
        frozen = frozenset(triples)
        for t in frozen:
            if not isinstance(t, TriplePattern):
                raise TypeError(f"t-graphs contain triple patterns, got {type(t).__name__}")
        object.__setattr__(self, "_triples", frozen)
        object.__setattr__(self, "_hash", hash(frozen))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TGraph instances are immutable")

    def __reduce__(self):
        return (TGraph, (tuple(self._triples),))

    # --- constructors ---------------------------------------------------------
    @classmethod
    def of(cls, *patterns: tuple) -> "TGraph":
        """Build a t-graph from ``(s, p, o)`` tuples of terms or strings."""
        return cls(TriplePattern.of(*p) for p in patterns)

    @classmethod
    def from_rdf_graph(cls, graph: RDFGraph) -> "TGraph":
        """View an RDF graph as a (variable-free) t-graph."""
        return cls(graph.triples())

    # --- set protocol ----------------------------------------------------------
    def __iter__(self) -> Iterator[TriplePattern]:
        return iter(self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, item: object) -> bool:
        return item in self._triples

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TGraph) and self._triples == other._triples

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(str(t) for t in sorted(self._triples))
        return f"TGraph({{{inner}}})"

    def triples(self) -> FrozenSet[TriplePattern]:
        """The underlying frozen set of triple patterns."""
        return self._triples

    # --- algebra ------------------------------------------------------------------
    def union(self, other: "TGraph | Iterable[TriplePattern]") -> "TGraph":
        """The union of two t-graphs."""
        other_triples = other.triples() if isinstance(other, TGraph) else frozenset(other)
        return TGraph(self._triples | other_triples)

    def difference(self, other: "TGraph | Iterable[TriplePattern]") -> "TGraph":
        """The triples of ``self`` not in ``other``."""
        other_triples = other.triples() if isinstance(other, TGraph) else frozenset(other)
        return TGraph(self._triples - other_triples)

    def issubset(self, other: "TGraph") -> bool:
        """``self ⊆ other``."""
        return self._triples <= other.triples()

    def is_proper_subset(self, other: "TGraph") -> bool:
        """``self ⊊ other``."""
        return self._triples < other.triples()

    # --- queries ---------------------------------------------------------------------
    def variables(self) -> FrozenSet[Variable]:
        """``vars(S)``."""
        result: Set[Variable] = set()
        for t in self._triples:
            result.update(t.variables())
        return frozenset(result)

    def constants(self) -> FrozenSet[GroundTerm]:
        """The IRIs and literals occurring in the t-graph."""
        result: Set[GroundTerm] = set()
        for t in self._triples:
            result.update(t.constants())
        return frozenset(result)

    def terms(self) -> FrozenSet[Term]:
        """All terms (variables and constants) occurring in the t-graph."""
        return frozenset(self.variables()) | frozenset(self.constants())

    def is_ground(self) -> bool:
        """``True`` when the t-graph contains no variables (i.e. is an RDF graph)."""
        return not self.variables()

    def to_rdf_graph(self) -> RDFGraph:
        """Convert to an :class:`RDFGraph`; requires the t-graph to be ground."""
        if not self.is_ground():
            raise ReproError("only ground t-graphs can be converted to RDF graphs")
        return RDFGraph(self._triples)

    # --- substitution -------------------------------------------------------------------
    def substitute(self, assignment: Mapping[Variable, Term]) -> "TGraph":
        """Apply a partial substitution to every triple pattern."""
        return TGraph(t.substitute(assignment) for t in self._triples)

    def rename(self, renaming: Mapping[Variable, Variable]) -> "TGraph":
        """Rename variables."""
        return self.substitute(renaming)


class GeneralizedTGraph:
    """A pair ``(S, X)`` of a t-graph and a set of distinguished variables.

    Homomorphisms between generalised t-graphs with the same ``X`` must map
    every variable of ``X`` to itself; homomorphisms into an RDF graph under a
    mapping ``µ`` with ``dom(µ) = X`` must map every ``?x ∈ X`` to ``µ(?x)``.
    """

    __slots__ = ("tgraph", "distinguished")

    def __init__(self, tgraph: TGraph | Iterable[TriplePattern], distinguished: Iterable[Variable] = ()) -> None:
        if not isinstance(tgraph, TGraph):
            tgraph = TGraph(tgraph)
        distinguished_set = frozenset(distinguished)
        for var in distinguished_set:
            if not isinstance(var, Variable):
                raise TypeError("distinguished elements must be variables")
        if not distinguished_set <= tgraph.variables():
            extra = sorted(str(v) for v in distinguished_set - tgraph.variables())
            raise ReproError(
                f"distinguished variables must occur in the t-graph; missing: {', '.join(extra)}"
            )
        object.__setattr__(self, "tgraph", tgraph)
        object.__setattr__(self, "distinguished", distinguished_set)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("GeneralizedTGraph instances are immutable")

    def __reduce__(self):
        return (GeneralizedTGraph, (self.tgraph, self.distinguished))

    # --- constructors ----------------------------------------------------------------
    @classmethod
    def of(cls, patterns: Iterable[tuple], distinguished: Iterable[str] = ()) -> "GeneralizedTGraph":
        """Build from ``(s, p, o)`` tuples and distinguished variable names."""
        tgraph = TGraph(TriplePattern.of(*p) for p in patterns)
        return cls(tgraph, frozenset(Variable(name) for name in distinguished))

    # --- protocol -----------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GeneralizedTGraph)
            and self.tgraph == other.tgraph
            and self.distinguished == other.distinguished
        )

    def __hash__(self) -> int:
        return hash((self.tgraph, self.distinguished))

    def __repr__(self) -> str:
        dist = ", ".join(str(v) for v in sorted(self.distinguished))
        return f"GeneralizedTGraph({self.tgraph!r}, X={{{dist}}})"

    # --- queries ----------------------------------------------------------------------------
    def variables(self) -> FrozenSet[Variable]:
        """``vars(S)``."""
        return self.tgraph.variables()

    def existential_variables(self) -> FrozenSet[Variable]:
        """``vars(S) \\ X`` — the non-distinguished (quantified) variables."""
        return self.tgraph.variables() - self.distinguished

    def triples(self) -> FrozenSet[TriplePattern]:
        """The triple patterns of ``S``."""
        return self.tgraph.triples()

    def is_subgraph_of(self, other: "GeneralizedTGraph") -> bool:
        """``(S', X)`` is a subgraph of ``(S, X)`` when ``S' ⊆ S`` and the
        distinguished sets coincide."""
        return self.distinguished == other.distinguished and self.tgraph.issubset(other.tgraph)

    def subgraph(self, triples: Iterable[TriplePattern]) -> "GeneralizedTGraph":
        """The generalised t-graph induced by a subset of the triples."""
        sub = TGraph(triples)
        if not sub.issubset(self.tgraph):
            raise ReproError("subgraph() requires a subset of the original triples")
        return GeneralizedTGraph(sub, self.distinguished & sub.variables())

    def with_distinguished(self, distinguished: Iterable[Variable]) -> "GeneralizedTGraph":
        """The same t-graph with a different distinguished set."""
        return GeneralizedTGraph(self.tgraph, distinguished)


def fresh_variable_renaming(
    variables: Iterable[Variable],
    avoid: Iterable[Variable],
    prefix: str = "fresh",
) -> Dict[Variable, Variable]:
    """A renaming of *variables* to fresh variables not occurring in *avoid*.

    Used when building the renamed t-graph assignments ``ρ_Δ`` of the paper,
    which require the non-shared variables of distinct children to be renamed
    apart.
    """
    avoid_names = {v.name for v in avoid} | {v.name for v in variables}
    renaming: Dict[Variable, Variable] = {}
    counter = 0
    for var in sorted(variables, key=lambda v: v.name):
        while True:
            candidate = f"{prefix}_{var.name}_{counter}"
            counter += 1
            if candidate not in avoid_names:
                avoid_names.add(candidate)
                renaming[var] = Variable(candidate)
                break
    return renaming


def freeze_tgraph(tgraph: TGraph, prefix: str = "urn:frozen:") -> tuple[RDFGraph, Dict[Variable, IRI]]:
    """Freeze the variables of a t-graph into IRIs, producing an RDF graph.

    This is the operation used in the proof of Theorem 2: the t-graph ``B``
    is reinterpreted as an RDF graph ``G = {Ψ(t) | t ∈ B}`` where ``Ψ`` maps
    each variable ``?x`` to a fresh IRI ``a_?x``.  Returns the graph together
    with the freezing map ``Ψ`` restricted to variables.
    """
    freezing: Dict[Variable, IRI] = {
        var: IRI(f"{prefix}{var.name}") for var in tgraph.variables()
    }
    graph = RDFGraph()
    for t in tgraph:
        graph.add(t.apply({**freezing}))
    return graph, freezing
