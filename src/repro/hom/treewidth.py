"""Treewidth: exact computation for small graphs, heuristics otherwise.

The paper's width measures are defined through the treewidth of Gaifman
graphs, with the convention that a graph with no vertices or no edges has
treewidth 1.  This module provides:

* :func:`treewidth_exact` — exact treewidth via the dynamic program over
  vertex subsets (minimum over elimination orderings of the maximum
  elimination degree), feasible up to roughly 16 vertices;
* :func:`treewidth_upper_bound` — min-fill-in / min-degree heuristics (via
  networkx), valid upper bounds for large graphs;
* :func:`treewidth_lower_bound` — the minor-min-width (MMD+) lower bound;
* :func:`treewidth` — exact when small, otherwise the heuristic bracket;
* :func:`tw` and :func:`ctw` — the paper's measures on generalised t-graphs
  (treewidth of the Gaifman graph, resp. of the Gaifman graph of the core),
  including the "no vertices or no edges ⇒ 1" convention;
* :func:`tree_decomposition` — an explicit decomposition witnessing the
  heuristic width (useful for inspection and testing).
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Hashable, Tuple

import networkx as nx
from networkx.algorithms.approximation import treewidth_min_degree, treewidth_min_fill_in

from .core import core_of
from .gaifman import gaifman_graph
from .tgraph import GeneralizedTGraph

__all__ = [
    "treewidth_exact",
    "treewidth_upper_bound",
    "treewidth_lower_bound",
    "treewidth",
    "tree_decomposition",
    "tw",
    "ctw",
    "DEFAULT_EXACT_THRESHOLD",
]

#: Largest number of vertices for which the exact subset dynamic program is used.
DEFAULT_EXACT_THRESHOLD = 16


def _connected_through(graph: nx.Graph, vertex: Hashable, through: FrozenSet[Hashable]) -> int:
    """The elimination degree of *vertex* once the set *through* has been
    eliminated: the number of vertices outside ``through ∪ {vertex}``
    reachable from *vertex* by a path whose internal vertices all lie in
    *through*.  Order-independent, which is what makes the subset DP sound."""
    seen = {vertex}
    stack = [vertex]
    external = set()
    while stack:
        current = stack.pop()
        for neighbour in graph.neighbors(current):
            if neighbour in seen:
                continue
            seen.add(neighbour)
            if neighbour in through:
                stack.append(neighbour)
            else:
                external.add(neighbour)
    return len(external)


def treewidth_exact(graph: nx.Graph) -> int:
    """Exact treewidth of an undirected graph (empty graph has treewidth 0).

    Uses the classical O(2^n · poly) dynamic program over subsets of vertices:
    ``f(S) = min_{v ∈ S} max(f(S \\ {v}), d(v, S \\ {v}))`` where ``d`` is the
    order-independent elimination degree; the treewidth is ``f(V)``.
    """
    if graph.number_of_nodes() == 0:
        return 0
    if graph.number_of_edges() == 0:
        return 0
    # Treewidth is the maximum over connected components.
    components = list(nx.connected_components(graph))
    if len(components) > 1:
        return max(treewidth_exact(graph.subgraph(component).copy()) for component in components)

    vertices = tuple(sorted(graph.nodes(), key=str))
    index_of = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    if n > 26:
        raise ValueError(
            f"treewidth_exact() is limited to 26 vertices, got {n}; "
            "use treewidth_upper_bound()/treewidth_lower_bound() instead"
        )

    @lru_cache(maxsize=None)
    def best_width(mask: int) -> int:
        if mask == 0:
            return 0
        best = n  # upper bound: eliminating into a clique of everything
        members = [vertices[i] for i in range(n) if mask & (1 << i)]
        through_all = frozenset(members)
        for v in members:
            rest_mask = mask & ~(1 << index_of[v])
            degree = _connected_through(graph, v, frozenset(through_all - {v}))
            if degree >= best:
                continue
            candidate = max(best_width(rest_mask), degree)
            if candidate < best:
                best = candidate
        return best

    full_mask = (1 << n) - 1
    return best_width(full_mask)


def treewidth_upper_bound(graph: nx.Graph) -> int:
    """A heuristic upper bound (best of min-degree and min-fill-in)."""
    if graph.number_of_nodes() == 0 or graph.number_of_edges() == 0:
        return 0
    width_degree, _ = treewidth_min_degree(graph)
    width_fill, _ = treewidth_min_fill_in(graph)
    return min(width_degree, width_fill)


def treewidth_lower_bound(graph: nx.Graph) -> int:
    """The minor-min-width (MMD+) lower bound on treewidth."""
    if graph.number_of_nodes() == 0 or graph.number_of_edges() == 0:
        return 0
    work = graph.copy()
    best = 0
    while work.number_of_nodes() > 1:
        degrees = dict(work.degree())
        v = min(degrees, key=lambda u: (degrees[u], str(u)))
        best = max(best, degrees[v])
        neighbours = list(work.neighbors(v))
        if not neighbours:
            work.remove_node(v)
            continue
        # Contract v into its minimum-degree neighbour.
        u = min(neighbours, key=lambda w: (degrees[w], str(w)))
        work = nx.contracted_nodes(work, u, v, self_loops=False)
    return best


def treewidth(graph: nx.Graph, exact_threshold: int = DEFAULT_EXACT_THRESHOLD) -> int:
    """Treewidth of a graph: exact when the graph is small, otherwise the
    heuristic upper bound (which equals the exact value on the structured
    graphs used by the paper's families — cliques, trees and grids are all
    handled exactly by min-fill-in)."""
    if graph.number_of_nodes() <= exact_threshold:
        return treewidth_exact(graph)
    lower = treewidth_lower_bound(graph)
    upper = treewidth_upper_bound(graph)
    if lower == upper:
        return upper
    return upper


def tree_decomposition(graph: nx.Graph) -> Tuple[int, nx.Graph]:
    """A tree decomposition (width, decomposition) via the min-fill-in heuristic.

    The decomposition is a networkx tree whose nodes are frozensets (bags).
    For an empty or edgeless graph a single-bag decomposition is returned.
    """
    if graph.number_of_nodes() == 0:
        tree = nx.Graph()
        tree.add_node(frozenset())
        return 0, tree
    if graph.number_of_edges() == 0:
        tree = nx.Graph()
        nodes = list(graph.nodes())
        previous = None
        for node in nodes:
            bag = frozenset({node})
            tree.add_node(bag)
            if previous is not None:
                tree.add_edge(previous, bag)
            previous = bag
        return 0, tree
    width, decomposition = treewidth_min_fill_in(graph)
    return width, decomposition


def _paper_convention(width: int, graph: nx.Graph) -> int:
    """Apply the paper's convention: no vertices or no edges ⇒ treewidth 1."""
    if graph.number_of_nodes() == 0 or graph.number_of_edges() == 0:
        return 1
    return max(width, 1)


def tw(gtgraph: GeneralizedTGraph, exact_threshold: int = DEFAULT_EXACT_THRESHOLD) -> int:
    """``tw(S, X)``: treewidth of the Gaifman graph, with the paper's convention
    that an edgeless (or empty) Gaifman graph has treewidth 1."""
    graph = gaifman_graph(gtgraph)
    return _paper_convention(treewidth(graph, exact_threshold), graph)


def ctw(gtgraph: GeneralizedTGraph, exact_threshold: int = DEFAULT_EXACT_THRESHOLD) -> int:
    """``ctw(S, X) = tw(core(S, X))`` — the core treewidth used throughout the paper."""
    return tw(core_of(gtgraph), exact_threshold)
