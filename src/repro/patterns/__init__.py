"""Well-designed pattern trees and forests, and the GtG machinery of the paper."""

from .tree import WDPatternTree, Subtree
from .forest import WDPatternForest
from .build import build_wdpt, wdpf, pattern_of_tree, pattern_of_forest
from .gtg import (
    witness_subtree,
    support,
    ChildrenAssignment,
    children_assignments,
    renamed_child_tgraph,
    s_delta,
    is_valid_assignment,
    valid_children_assignments,
    gtg,
)

__all__ = [
    "WDPatternTree",
    "Subtree",
    "WDPatternForest",
    "build_wdpt",
    "wdpf",
    "pattern_of_tree",
    "pattern_of_forest",
    "witness_subtree",
    "support",
    "ChildrenAssignment",
    "children_assignments",
    "renamed_child_tgraph",
    "s_delta",
    "is_valid_assignment",
    "valid_children_assignments",
    "gtg",
]
