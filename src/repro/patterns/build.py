"""Translation of well-designed graph patterns into pattern trees/forests.

This is the polynomial-time function ``wdpf`` fixed by the paper: every
well-designed graph pattern ``P = P1 UNION ... UNION Pm`` is translated into
an equivalent wdPF ``{T1, ..., Tm}``, where each ``Ti`` is the wdPT of the
UNION-free operand ``Pi`` (Letelier et al.), brought into NR normal form.

The construction for a UNION-free well-designed pattern is the standard one:

* a triple pattern becomes a single-node tree;
* ``P1 AND P2``: merge the roots of the two trees and keep the children of
  both (sound because the pattern is well-designed);
* ``P1 OPT P2``: hang the whole tree of ``P2`` as an additional child of the
  root of ``P1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .forest import WDPatternForest
from .tree import WDPatternTree
from ..hom.tgraph import TGraph
from ..sparql.algebra import And, GraphPattern, Opt, TriplePatternNode, Union
from ..sparql.well_designed import check_well_designed, union_operands
from ..exceptions import NotWellDesignedError, PatternTreeError

__all__ = ["build_wdpt", "wdpf", "pattern_of_tree", "pattern_of_forest"]


@dataclass
class _TreeDraft:
    """Mutable tree used during construction: a root label plus child drafts."""

    label: TGraph
    children: List["_TreeDraft"]


def _draft_of(pattern: GraphPattern) -> _TreeDraft:
    if isinstance(pattern, TriplePatternNode):
        return _TreeDraft(label=TGraph({pattern.triple_pattern}), children=[])
    if isinstance(pattern, And):
        left = _draft_of(pattern.left)
        right = _draft_of(pattern.right)
        return _TreeDraft(
            label=left.label.union(right.label),
            children=left.children + right.children,
        )
    if isinstance(pattern, Opt):
        left = _draft_of(pattern.left)
        right = _draft_of(pattern.right)
        left.children.append(right)
        return left
    if isinstance(pattern, Union):
        raise NotWellDesignedError(
            "UNION below AND/OPT: the pattern is not in UNION normal form"
        )
    raise PatternTreeError(f"unsupported pattern node {type(pattern).__name__}")


def _freeze_draft(draft: _TreeDraft) -> WDPatternTree:
    labels: Dict[int, TGraph] = {}
    parent: Dict[int, int] = {}

    def assign(node: _TreeDraft, parent_id: Optional[int]) -> None:
        node_id = len(labels)
        labels[node_id] = node.label
        if parent_id is not None:
            parent[node_id] = parent_id
        for child in node.children:
            assign(child, node_id)

    assign(draft, None)
    return WDPatternTree(labels, parent, root=0)


def build_wdpt(pattern: GraphPattern, normalize: bool = True) -> WDPatternTree:
    """Translate a UNION-free well-designed pattern into an equivalent wdPT.

    With ``normalize=True`` (the default, and the paper's standing
    assumption) the result is in NR normal form.
    """
    check_well_designed(pattern)
    if not pattern.is_union_free():
        raise NotWellDesignedError("build_wdpt() expects a UNION-free pattern; use wdpf()")
    tree = _freeze_draft(_draft_of(pattern))
    if normalize:
        tree = tree.to_nr_normal_form()
    return tree


def wdpf(pattern: GraphPattern, normalize: bool = True) -> WDPatternForest:
    """The function ``wdpf``: translate a well-designed graph pattern into an
    equivalent well-designed pattern forest (one tree per UNION operand).

    >>> from ..sparql import parse_pattern
    >>> forest = wdpf(parse_pattern("((?x p ?y) OPT (?z q ?x)) UNION ((?x p ?y) AND (?y r ?w))"))
    >>> len(forest)
    2
    """
    check_well_designed(pattern)
    trees = [build_wdpt(operand, normalize=normalize) for operand in union_operands(pattern)]
    return WDPatternForest(trees)


def pattern_of_tree(tree: WDPatternTree) -> GraphPattern:
    """An AND/OPT graph pattern equivalent to the given wdPT.

    The inverse direction of :func:`build_wdpt`: node labels become ANDs of
    their triple patterns, children become OPT-nested subpatterns.  Useful
    for round-trip testing and for feeding tree-defined families (such as the
    paper's ``F_k``) to engines that work on graph patterns.
    """
    from ..sparql.algebra import conj, TriplePatternNode as Leaf

    def pattern_of_node(node: int) -> GraphPattern:
        triples = sorted(tree.pat(node))
        if not triples:
            raise PatternTreeError(f"node {node} has an empty label; cannot serialise")
        result: GraphPattern = conj([Leaf(t) for t in triples])
        for child in tree.children_of(node):
            result = Opt(result, pattern_of_node(child))
        return result

    return pattern_of_node(tree.root)


def pattern_of_forest(forest: WDPatternForest) -> GraphPattern:
    """A well-designed graph pattern (UNION of AND/OPT patterns) equivalent to
    the forest."""
    result: Optional[GraphPattern] = None
    for tree in forest:
        operand = pattern_of_tree(tree)
        result = operand if result is None else Union(result, operand)
    assert result is not None
    return result
