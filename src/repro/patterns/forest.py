"""Well-designed pattern forests (wdPFs).

A wdPF is a finite set of wdPTs; a well-designed graph pattern
``P1 UNION ... UNION Pm`` translates into the forest of the trees of its
UNION-free operands.  The forest is the object on which the paper's
domination-width machinery (supports, children assignments, ``GtG``) is
defined; those constructions live in :mod:`repro.patterns.gtg`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from .tree import Subtree, WDPatternTree
from ..exceptions import PatternTreeError

__all__ = ["WDPatternForest"]


class WDPatternForest:
    """An immutable, ordered collection of well-designed pattern trees."""

    __slots__ = ("_trees",)

    def __init__(self, trees: Sequence[WDPatternTree] | Iterable[WDPatternTree]) -> None:
        trees = tuple(trees)
        if not trees:
            raise PatternTreeError("a pattern forest must contain at least one tree")
        for tree in trees:
            if not isinstance(tree, WDPatternTree):
                raise PatternTreeError("forest members must be WDPatternTree instances")
        object.__setattr__(self, "_trees", trees)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("WDPatternForest instances are immutable")

    def __reduce__(self):
        return (WDPatternForest, (self._trees,))

    # --- container protocol ----------------------------------------------------
    def __iter__(self) -> Iterator[WDPatternTree]:
        return iter(self._trees)

    def __len__(self) -> int:
        return len(self._trees)

    def __getitem__(self, index: int) -> WDPatternTree:
        return self._trees[index]

    def __repr__(self) -> str:
        return f"WDPatternForest(<{len(self._trees)} trees>)"

    def trees(self) -> Tuple[WDPatternTree, ...]:
        """The member trees, in order."""
        return self._trees

    # --- queries ------------------------------------------------------------------
    def is_nr_normal_form(self) -> bool:
        """``True`` when every member tree is in NR normal form."""
        return all(tree.is_nr_normal_form() for tree in self._trees)

    def to_nr_normal_form(self) -> "WDPatternForest":
        """The forest of the NR normal forms of the member trees."""
        return WDPatternForest(tree.to_nr_normal_form() for tree in self._trees)

    def subtrees(self) -> Iterator[Tuple[int, Subtree]]:
        """Enumerate ``(tree_index, subtree)`` pairs over all member trees.

        This is the set of "subtrees of F" the domination width quantifies
        over.
        """
        for index, tree in enumerate(self._trees):
            for subtree in tree.subtrees():
                yield index, subtree

    def pretty(self) -> str:
        """Human-readable rendering of every tree in the forest."""
        blocks: List[str] = []
        for index, tree in enumerate(self._trees):
            blocks.append(f"T{index + 1}:\n{tree.pretty()}")
        return "\n\n".join(blocks)
