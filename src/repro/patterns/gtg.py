"""Supports, children assignments and the generalised t-graphs ``GtG(T)``.

These are the combinatorial objects Section 3.1 of the paper builds the
domination width on:

* the *support* ``supp(T)`` of a subtree ``T`` of a forest
  ``F = {T1, ..., Tm}``: the indices ``i`` for which some subtree of ``Ti``
  has exactly the variables of ``T`` (unique in NR normal form, written
  ``T^sp(i)``);
* *children assignments* ``Δ``: partial choice functions picking, for some
  supported indices, a child of ``T^sp(i)``;
* the t-graph ``S_Δ = pat(T) ∪ ⋃ ρ_Δ(i)`` where ``ρ_Δ`` renames the private
  variables of each chosen child apart;
* *valid* children assignments and the resulting set of generalised
  t-graphs ``GtG(T) = {(S_Δ, vars(T)) | Δ ∈ VCA(T)}``.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from .forest import WDPatternForest
from .tree import Subtree, WDPatternTree
from ..hom.homomorphism import maps_to
from ..hom.tgraph import GeneralizedTGraph, TGraph, fresh_variable_renaming
from ..rdf.terms import Variable
from ..exceptions import PatternTreeError

__all__ = [
    "witness_subtree",
    "support",
    "ChildrenAssignment",
    "children_assignments",
    "renamed_child_tgraph",
    "s_delta",
    "is_valid_assignment",
    "valid_children_assignments",
    "gtg",
]


def witness_subtree(tree: WDPatternTree, variables: FrozenSet[Variable]) -> Optional[Subtree]:
    """The subtree of *tree* whose variables are exactly *variables*, if any.

    Computed as the maximal subtree whose nodes only use variables from
    *variables*; by the NR normal form and the variable-connectivity
    condition this is the unique witness when one exists.
    """
    if not tree.vars(tree.root) <= variables:
        return None
    selected = {tree.root}
    frontier = list(tree.children_of(tree.root))
    while frontier:
        node = frontier.pop()
        if tree.vars(node) <= variables:
            selected.add(node)
            frontier.extend(tree.children_of(node))
    subtree = tree.subtree(selected)
    if subtree.variables() == variables:
        return subtree
    return None


def support(forest: WDPatternForest, subtree: Subtree) -> Dict[int, Subtree]:
    """``supp(T)`` together with the witness subtrees ``T^sp(i)``.

    Returns a mapping from tree index to the witness subtree of that tree
    having exactly ``vars(T)``.
    """
    variables = subtree.variables()
    result: Dict[int, Subtree] = {}
    for index, tree in enumerate(forest):
        witness = witness_subtree(tree, variables)
        if witness is not None:
            result[index] = witness
    return result


class ChildrenAssignment:
    """A children assignment ``Δ``: a non-empty partial map from supported tree
    indices to children of the corresponding witness subtrees."""

    __slots__ = ("choices",)

    def __init__(self, choices: Mapping[int, int]) -> None:
        choices = dict(choices)
        if not choices:
            raise PatternTreeError("a children assignment must have a non-empty domain")
        object.__setattr__(self, "choices", choices)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ChildrenAssignment instances are immutable")

    def domain(self) -> FrozenSet[int]:
        """``dom(Δ)`` — the tree indices the assignment covers."""
        return frozenset(self.choices)

    def __getitem__(self, index: int) -> int:
        return self.choices[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChildrenAssignment) and self.choices == other.choices

    def __hash__(self) -> int:
        return hash(frozenset(self.choices.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{i} -> {n}" for i, n in sorted(self.choices.items()))
        return f"ChildrenAssignment({{{inner}}})"


def children_assignments(
    forest: WDPatternForest, subtree: Subtree, supp: Optional[Dict[int, Subtree]] = None
) -> Iterator[ChildrenAssignment]:
    """Enumerate ``CA(T)``: all children assignments for the subtree.

    The enumeration is exponential in the number of supported trees with
    children; the paper's width computations quantify over it explicitly, so
    this is intended for query-sized inputs.
    """
    if supp is None:
        supp = support(forest, subtree)
    indices = sorted(supp)
    children_options: Dict[int, Tuple[int, ...]] = {}
    for index in indices:
        children = supp[index].children()
        if children:
            children_options[index] = children
    usable = sorted(children_options)
    if not usable:
        return
    # For each index independently choose "absent" (None) or one of its
    # children; skip the all-absent combination (the domain must be non-empty).
    option_lists = [(None,) + children_options[index] for index in usable]
    for combination in product(*option_lists):
        choices = {
            index: node for index, node in zip(usable, combination) if node is not None
        }
        if choices:
            yield ChildrenAssignment(choices)


def renamed_child_tgraph(
    witness: Subtree, child: int, shared_variables: FrozenSet[Variable], used: Iterable[Variable]
) -> TGraph:
    """``ρ_Δ(i)``: the label of the chosen child with its private variables
    (those outside ``vars(T)``) renamed to fresh variables."""
    child_label = witness.tree.pat(child)
    private = child_label.variables() - shared_variables
    renaming = fresh_variable_renaming(private, avoid=used)
    return child_label.rename(renaming)


def s_delta(
    forest: WDPatternForest,
    subtree: Subtree,
    assignment: ChildrenAssignment,
    supp: Optional[Dict[int, Subtree]] = None,
) -> GeneralizedTGraph:
    """The generalised t-graph ``(S_Δ, vars(T))`` for a children assignment ``Δ``."""
    if supp is None:
        supp = support(forest, subtree)
    shared = subtree.variables()
    result = subtree.pat()
    used: set[Variable] = set(result.variables())
    for index in sorted(assignment.domain()):
        if index not in supp:
            raise PatternTreeError(f"assignment refers to unsupported tree index {index}")
        witness = supp[index]
        if assignment[index] not in witness.children():
            raise PatternTreeError(
                f"assignment maps tree {index} to node {assignment[index]}, "
                "which is not a child of its witness subtree"
            )
        renamed = renamed_child_tgraph(witness, assignment[index], shared, used)
        used.update(renamed.variables())
        result = result.union(renamed)
    return GeneralizedTGraph(result, shared)


def is_valid_assignment(
    forest: WDPatternForest,
    subtree: Subtree,
    assignment: ChildrenAssignment,
    supp: Optional[Dict[int, Subtree]] = None,
) -> bool:
    """``Δ ∈ VCA(T)``: for every supported index outside ``dom(Δ)``, the witness
    pattern does *not* map homomorphically into ``(S_Δ, vars(T))``."""
    if supp is None:
        supp = support(forest, subtree)
    target = s_delta(forest, subtree, assignment, supp)
    shared = subtree.variables()
    for index, witness in supp.items():
        if index in assignment.domain():
            continue
        source = GeneralizedTGraph(witness.pat(), shared)
        if maps_to(source, target):
            return False
    return True


def valid_children_assignments(
    forest: WDPatternForest, subtree: Subtree, supp: Optional[Dict[int, Subtree]] = None
) -> Iterator[ChildrenAssignment]:
    """Enumerate ``VCA(T)``."""
    if supp is None:
        supp = support(forest, subtree)
    for assignment in children_assignments(forest, subtree, supp):
        if is_valid_assignment(forest, subtree, assignment, supp):
            yield assignment


def gtg(forest: WDPatternForest, subtree: Subtree) -> FrozenSet[GeneralizedTGraph]:
    """The set ``GtG(T) = {(S_Δ, vars(T)) | Δ ∈ VCA(T)}``."""
    supp = support(forest, subtree)
    result = set()
    for assignment in valid_children_assignments(forest, subtree, supp):
        result.add(s_delta(forest, subtree, assignment, supp))
    return frozenset(result)
