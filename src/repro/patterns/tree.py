"""Well-designed pattern trees (wdPTs).

A wdPT is a rooted tree whose nodes are labelled with t-graphs (sets of
triple patterns); the tree structure encodes the nesting of OPT operators of
a UNION-free well-designed graph pattern (Letelier et al.).  The paper
additionally requires:

* condition (3): for every variable, the nodes mentioning it induce a
  connected subgraph of the tree;
* NR normal form: every non-root node mentions at least one variable that
  its parent does not.

:class:`WDPatternTree` is an immutable tree over integer node identifiers;
:class:`Subtree` represents the rooted subtrees the paper quantifies over
(always containing the root, closed under taking parents).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..hom.tgraph import TGraph
from ..rdf.terms import Variable
from ..exceptions import PatternTreeError

__all__ = ["WDPatternTree", "Subtree"]


class WDPatternTree:
    """An immutable well-designed pattern tree.

    Nodes are integers; the root is always node ``0``.  Construction
    validates the tree shape and (optionally) the variable-connectivity
    condition of wdPTs.
    """

    __slots__ = ("_labels", "_parent", "_children", "_root", "_order")

    def __init__(
        self,
        labels: Mapping[int, TGraph],
        parent: Mapping[int, int],
        root: int = 0,
        check_connectivity: bool = True,
    ) -> None:
        labels = dict(labels)
        parent = dict(parent)
        if root not in labels:
            raise PatternTreeError(f"root {root} has no label")
        if root in parent:
            raise PatternTreeError("the root cannot have a parent")
        for node in parent:
            if node not in labels:
                raise PatternTreeError(f"node {node} has a parent but no label")
            if parent[node] not in labels:
                raise PatternTreeError(f"parent of node {node} does not exist")
        for node in labels:
            if node != root and node not in parent:
                raise PatternTreeError(f"non-root node {node} has no parent")
            if not isinstance(labels[node], TGraph):
                raise PatternTreeError(f"label of node {node} must be a TGraph")

        children: Dict[int, List[int]] = {node: [] for node in labels}
        for node, parent_node in parent.items():
            children[parent_node].append(node)
        for node in children:
            children[node].sort()

        # Check acyclicity / reachability from the root.
        order: List[int] = []
        stack = [root]
        seen = set()
        while stack:
            current = stack.pop()
            if current in seen:
                raise PatternTreeError("cycle detected in pattern tree")
            seen.add(current)
            order.append(current)
            stack.extend(reversed(children[current]))
        if seen != set(labels):
            unreachable = sorted(set(labels) - seen)
            raise PatternTreeError(f"nodes not reachable from the root: {unreachable}")

        object.__setattr__(self, "_labels", labels)
        object.__setattr__(self, "_parent", parent)
        object.__setattr__(self, "_children", {n: tuple(c) for n, c in children.items()})
        object.__setattr__(self, "_root", root)
        object.__setattr__(self, "_order", tuple(order))

        if check_connectivity:
            self._check_variable_connectivity()

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("WDPatternTree instances are immutable")

    def __reduce__(self):
        # Connectivity was validated at construction time; skip it on restore.
        return (WDPatternTree, (self._labels, self._parent, self._root, False))

    # --- constructors ----------------------------------------------------------
    @classmethod
    def from_node_specs(
        cls,
        specs: Sequence[Tuple[Optional[int], Iterable[Tuple[object, object, object]]]],
        check_connectivity: bool = True,
    ) -> "WDPatternTree":
        """Build a tree from ``(parent_index, triples)`` specs.

        The first spec must have parent ``None`` (the root); nodes are
        numbered in the order given.

        >>> tree = WDPatternTree.from_node_specs([
        ...     (None, [("?x", "p", "?y")]),
        ...     (0, [("?z", "q", "?x")]),
        ... ])
        >>> tree.size()
        2
        """
        labels: Dict[int, TGraph] = {}
        parent: Dict[int, int] = {}
        for index, (parent_index, triples) in enumerate(specs):
            labels[index] = TGraph.of(*triples)
            if parent_index is None:
                if index != 0:
                    raise PatternTreeError("only the first spec may be the root")
            else:
                parent[index] = parent_index
        return cls(labels, parent, root=0, check_connectivity=check_connectivity)

    # --- structural queries -------------------------------------------------------
    @property
    def root(self) -> int:
        """The root node identifier."""
        return self._root

    def node_ids(self) -> Tuple[int, ...]:
        """All node identifiers in pre-order (root first)."""
        return self._order

    def size(self) -> int:
        """Number of nodes."""
        return len(self._labels)

    def pat(self, node: int) -> TGraph:
        """``pat(n)`` — the t-graph labelling node *n*."""
        return self._labels[node]

    def vars(self, node: int) -> FrozenSet[Variable]:
        """``vars(n)``."""
        return self._labels[node].variables()

    def parent_of(self, node: int) -> Optional[int]:
        """The parent of *node*, or ``None`` for the root."""
        return self._parent.get(node)

    def children_of(self, node: int) -> Tuple[int, ...]:
        """The children of *node* (sorted by identifier)."""
        return self._children[node]

    def pattern(self) -> TGraph:
        """``pat(T)`` — the union of all node labels."""
        return self.pat_of_nodes(self._order)

    def variables(self) -> FrozenSet[Variable]:
        """``vars(T)``."""
        return self.pattern().variables()

    def pat_of_nodes(self, nodes: Iterable[int]) -> TGraph:
        """Union of the labels of the given nodes."""
        result: FrozenSet = frozenset()
        for node in nodes:
            result = result | self._labels[node].triples()
        return TGraph(result)

    def branch(self, node: int) -> Tuple[int, ...]:
        """``B_n``: the nodes on the path from the root to the *parent* of *node*
        (empty for the root)."""
        if node == self._root:
            return ()
        path: List[int] = []
        current = self.parent_of(node)
        while current is not None:
            path.append(current)
            current = self.parent_of(current)
        return tuple(reversed(path))

    def depth(self) -> int:
        """The depth of the tree (a single-node tree has depth 0)."""
        return max(len(self.branch(node)) for node in self._order)

    # --- normal forms -------------------------------------------------------------
    def is_nr_normal_form(self) -> bool:
        """``True`` when every non-root node adds a variable over its parent."""
        for node in self._order:
            parent_node = self.parent_of(node)
            if parent_node is None:
                continue
            if not (self.vars(node) - self.vars(parent_node)):
                return False
        return True

    def to_nr_normal_form(self) -> "WDPatternTree":
        """An equivalent tree in NR normal form.

        A non-root node that adds no variable over its parent is removed and
        its label is merged into each of its children (which are re-attached
        to the grand-parent).  The transformation preserves the wdPT
        semantics of Lemma 1 and terminates because every step removes a
        node.
        """
        labels = {n: self._labels[n] for n in self._order}
        parent = dict(self._parent)
        changed = True
        while changed:
            changed = False
            for node in list(labels):
                if node == self._root:
                    continue
                parent_node = parent[node]
                if labels[node].variables() - labels[parent_node].variables():
                    continue
                # Merge the redundant node into its children.
                for other, other_parent in list(parent.items()):
                    if other_parent == node:
                        parent[other] = parent_node
                        labels[other] = labels[other].union(labels[node])
                del labels[node]
                del parent[node]
                changed = True
                break
        return WDPatternTree(labels, parent, root=self._root, check_connectivity=False)

    def _check_variable_connectivity(self) -> None:
        """Condition (3) of wdPTs: occurrences of each variable are connected."""
        for variable in self.variables():
            occurrences = {n for n in self._order if variable in self.vars(n)}
            # The occurrence set is connected iff every occurrence's parent
            # chain reaches another occurrence without leaving the set, i.e.
            # exactly one occurrence has its parent outside the set (or is the
            # root).
            top_nodes = 0
            for node in occurrences:
                parent_node = self.parent_of(node)
                if parent_node is None or parent_node not in occurrences:
                    top_nodes += 1
            if top_nodes > 1:
                raise PatternTreeError(
                    f"variable {variable} occurs in a disconnected set of nodes; "
                    "not a valid well-designed pattern tree"
                )

    # --- subtrees --------------------------------------------------------------------
    def full_subtree(self) -> "Subtree":
        """The subtree consisting of every node."""
        return Subtree(self, frozenset(self._order))

    def root_subtree(self) -> "Subtree":
        """The subtree consisting of the root only."""
        return Subtree(self, frozenset({self._root}))

    def subtree(self, nodes: Iterable[int]) -> "Subtree":
        """The subtree induced by *nodes* (must contain the root and be
        closed under taking parents)."""
        return Subtree(self, frozenset(nodes))

    def subtrees(self) -> Iterator["Subtree"]:
        """Enumerate all subtrees (ancestor-closed node sets containing the root).

        The number of subtrees can be exponential in the tree size; the
        paper's width measures quantify over all of them, so this is only
        meant for the small trees of queries.
        """
        def expand(node: int) -> List[FrozenSet[int]]:
            """All node sets of subtrees of the subtree rooted at *node* that
            contain *node*."""
            options: List[FrozenSet[int]] = [frozenset({node})]
            for child in self.children_of(node):
                child_options = expand(child)
                new_options: List[FrozenSet[int]] = []
                for existing in options:
                    for child_set in child_options:
                        new_options.append(existing | child_set)
                options.extend(new_options)
            return options

        seen = set()
        for node_set in expand(self._root):
            if node_set not in seen:
                seen.add(node_set)
                yield Subtree(self, node_set)

    # --- rendering --------------------------------------------------------------------
    def pretty(self) -> str:
        """A human-readable indented rendering of the tree."""
        lines: List[str] = []

        def render(node: int, indent: int) -> None:
            label = ", ".join(str(t) for t in sorted(self.pat(node)))
            lines.append("  " * indent + f"[{node}] {{{label}}}")
            for child in self.children_of(node):
                render(child, indent + 1)

        render(self._root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"WDPatternTree(<{self.size()} nodes, root={self._root}>)"


class Subtree:
    """A subtree of a wdPT: a set of nodes containing the root and closed
    under taking parents (so it is itself a tree rooted at the same root)."""

    __slots__ = ("tree", "nodes")

    def __init__(self, tree: WDPatternTree, nodes: FrozenSet[int]) -> None:
        nodes = frozenset(nodes)
        if tree.root not in nodes:
            raise PatternTreeError("a subtree must contain the root")
        for node in nodes:
            if node not in tree.node_ids():
                raise PatternTreeError(f"unknown node {node}")
            parent_node = tree.parent_of(node)
            if parent_node is not None and parent_node not in nodes:
                raise PatternTreeError(
                    f"subtree is not closed under parents: node {node} without its parent"
                )
        object.__setattr__(self, "tree", tree)
        object.__setattr__(self, "nodes", nodes)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Subtree instances are immutable")

    def __reduce__(self):
        return (Subtree, (self.tree, self.nodes))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Subtree) and self.tree is other.tree and self.nodes == other.nodes

    def __hash__(self) -> int:
        return hash((id(self.tree), self.nodes))

    def __repr__(self) -> str:
        return f"Subtree(nodes={sorted(self.nodes)})"

    def pat(self) -> TGraph:
        """``pat(T')`` — union of the labels of the subtree's nodes."""
        return self.tree.pat_of_nodes(self.nodes)

    def variables(self) -> FrozenSet[Variable]:
        """``vars(T')``."""
        return self.pat().variables()

    def children(self) -> Tuple[int, ...]:
        """The children of the subtree: nodes outside it whose parent is inside."""
        result = [
            node
            for node in self.tree.node_ids()
            if node not in self.nodes and self.tree.parent_of(node) in self.nodes
        ]
        return tuple(sorted(result))

    def extend(self, node: int) -> "Subtree":
        """The subtree obtained by adding one child node."""
        if node not in self.children():
            raise PatternTreeError(f"node {node} is not a child of this subtree")
        return Subtree(self.tree, self.nodes | {node})

    def is_full(self) -> bool:
        """``True`` when the subtree is the whole tree."""
        return len(self.nodes) == self.tree.size()
