"""The existential k-pebble game (the polynomial relaxation of homomorphism)."""

from .game import pebble_game_winner, pebble_maps_into, PebbleGameStatistics

__all__ = ["pebble_game_winner", "pebble_maps_into", "PebbleGameStatistics"]
