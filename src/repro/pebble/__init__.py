"""The existential k-pebble game (the polynomial relaxation of homomorphism)."""

from .game import (
    PebbleGameStatistics,
    pebble_game_winner,
    pebble_maps_into,
    reference_pebble_game_winner,
)
from .kernel import ConsistencyKernel

__all__ = [
    "pebble_game_winner",
    "reference_pebble_game_winner",
    "pebble_maps_into",
    "PebbleGameStatistics",
    "ConsistencyKernel",
]
