"""The existential k-pebble game (Kolaitis–Vardi).

The game is played by the Spoiler and the Duplicator on a generalised
t-graph ``(S, X)``, an RDF graph ``G`` and a mapping ``µ`` with
``dom(µ) = X``.  The Duplicator wins when he can forever keep the pebbled
configuration a partial homomorphism extending ``µ``; we write
``(S, X) →µ_k G`` in that case.

Deciding the winner is the polynomial-time *k-consistency* computation
(Proposition 2 of the paper): compute the largest family ``H`` of partial
homomorphisms over at most ``k`` non-distinguished variables that is closed
under restrictions and has the forth (extension) property; the Duplicator
wins iff the empty partial homomorphism survives.

Two implementations are provided behind a single entry point:

* ``k = 2`` — the dominant case in practice (classes of domination width 1
  are evaluated with the existential 2-pebble game): an AC-3 style
  propagation over singleton domains and binary relations, equivalent to the
  generic fixpoint but far cheaper;
* ``k ≥ 3`` — the generic level-wise fixpoint over partial homomorphisms of
  size ≤ k.

:func:`pebble_game_winner` delegates to the indexed
:class:`~repro.pebble.kernel.ConsistencyKernel`, which precomputes the
µ-independent part of the game (constraint grouping, base domains, binary
supports) per ``(structure, graph version, k)`` and answers each mapping by
restriction; :func:`reference_pebble_game_winner` is the direct per-call
implementation the kernel is tested against (identical verdicts).

The two key facts used by the paper are exposed here and exercised by the
test suite:

* ``(S, X) →µ G`` implies ``(S, X) →µ_k G`` (the game is a relaxation);
* when ``ctw(S, X) ≤ k − 1`` the relaxation is exact (Proposition 3,
  following Dalmau–Kolaitis–Vardi).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..hom.tgraph import GeneralizedTGraph
from ..rdf.graph import RDFGraph
from ..rdf.terms import GroundTerm, Variable
from ..rdf.triples import TriplePattern
from ..sparql.mappings import Mapping
from ..exceptions import EvaluationError

__all__ = [
    "pebble_game_winner",
    "reference_pebble_game_winner",
    "pebble_maps_into",
    "PebbleGameStatistics",
]

#: A partial assignment of non-distinguished variables, as a sorted tuple of
#: (variable, value) pairs so that it can live in sets.
_PartialHom = Tuple[Tuple[Variable, GroundTerm], ...]


class PebbleGameStatistics:
    """Counters describing a single pebble-game computation (for benchmarks)."""

    __slots__ = ("candidate_partial_homs", "removed", "rounds")

    def __init__(self) -> None:
        self.candidate_partial_homs = 0
        self.removed = 0
        self.rounds = 0

    def __repr__(self) -> str:
        return (
            f"PebbleGameStatistics(candidates={self.candidate_partial_homs}, "
            f"removed={self.removed}, rounds={self.rounds})"
        )


def _as_tuple(assignment: Dict[Variable, GroundTerm]) -> _PartialHom:
    return tuple(sorted(assignment.items(), key=lambda kv: kv[0].name))


def _satisfies(
    triples: Iterable[TriplePattern],
    combined: Dict[Variable, GroundTerm],
    graph: RDFGraph,
) -> bool:
    """Check that every fully-covered triple is mapped into the graph."""
    covered = set(combined)
    for t in triples:
        if t.variables() <= covered and t.substitute(combined) not in graph:
            return False
    return True


def pebble_game_winner(
    gtgraph: GeneralizedTGraph,
    graph: RDFGraph,
    mu: Mapping,
    k: int,
    statistics: Optional[PebbleGameStatistics] = None,
    budget=None,
) -> bool:
    """Decide whether the Duplicator wins the existential k-pebble game.

    Returns ``True`` iff ``(S, X) →µ_k G``.  Requires ``k ≥ 2`` and
    ``dom(µ) = X``.

    Delegates to a fresh :class:`~repro.pebble.kernel.ConsistencyKernel`;
    callers answering many mappings on one ``(S, X)`` and graph should build
    the kernel once (or go through the evaluation cache, which does).
    """
    from .kernel import ConsistencyKernel  # deferred: kernel imports this module

    return ConsistencyKernel(gtgraph, graph, k).winner(mu, statistics, budget)


def reference_pebble_game_winner(
    gtgraph: GeneralizedTGraph,
    graph: RDFGraph,
    mu: Mapping,
    k: int,
    statistics: Optional[PebbleGameStatistics] = None,
) -> bool:
    """The per-call k-consistency computation (no precomputation, no sharing).

    Rebuilds the constraint grouping, domains and support relations from
    scratch on every invocation — the behaviour :func:`pebble_game_winner`
    had before the indexed kernel existed.  Kept as the executable
    specification the kernel is benchmarked and property-tested against.
    """
    if k < 2:
        raise ValueError("the existential pebble game requires k >= 2")
    if mu.domain() != gtgraph.distinguished:
        raise EvaluationError(
            "pebble_game_winner() requires dom(µ) to equal the distinguished set X"
        )

    triples = list(gtgraph.triples())
    fixed: Dict[Variable, GroundTerm] = {var: mu[var] for var in gtgraph.distinguished}
    existential = sorted(gtgraph.existential_variables(), key=lambda v: v.name)

    # Fully distinguished triples must already be satisfied by µ, otherwise
    # even the empty configuration is not a partial homomorphism.
    if not _satisfies(triples, dict(fixed), graph):
        return False
    if not existential:
        # Property (1) of the paper: with no existential variables the game
        # degenerates to the homomorphism test, which µ already passed.
        return True

    domain_values = sorted(graph.domain(), key=str)
    if not domain_values:
        # There are existential variables but the Duplicator has no element
        # to answer with: he loses immediately.
        return False

    if k == 2:
        return _winner_two_pebbles(triples, fixed, existential, domain_values, graph, statistics)
    return _winner_generic(triples, fixed, existential, domain_values, graph, k, statistics)


def pebble_maps_into(
    gtgraph: GeneralizedTGraph,
    graph: RDFGraph,
    mu: Mapping,
    k: int,
) -> bool:
    """Alias of :func:`pebble_game_winner`: the relation ``(S, X) →µ_k G``."""
    return pebble_game_winner(gtgraph, graph, mu, k)


# ---------------------------------------------------------------------------
# k = 2: arc-consistency formulation
# ---------------------------------------------------------------------------


def _winner_two_pebbles(
    triples: List[TriplePattern],
    fixed: Dict[Variable, GroundTerm],
    existential: List[Variable],
    domain_values: List[GroundTerm],
    graph: RDFGraph,
    statistics: Optional[PebbleGameStatistics],
) -> bool:
    """Existential 2-pebble game via pairwise consistency.

    With two pebbles the only constraints that can ever become fully covered
    involve at most two existential variables, so the family of partial
    homomorphisms factors into per-variable domains and per-pair relations;
    the fixpoint is then ordinary arc consistency and the Duplicator wins iff
    no domain empties out.
    """
    existential_set = set(existential)

    # Group constraints by the existential variables they involve.
    unary: Dict[Variable, List[TriplePattern]] = defaultdict(list)
    binary: Dict[Tuple[Variable, Variable], List[TriplePattern]] = defaultdict(list)
    for t in triples:
        t_existential = tuple(sorted(t.variables() & existential_set, key=lambda v: v.name))
        if len(t_existential) == 1:
            unary[t_existential[0]].append(t)
        elif len(t_existential) == 2:
            binary[t_existential].append(t)
        # Triples with three existential variables are never fully covered by
        # two pebbles and impose no constraint; fully-distinguished triples
        # were checked by the caller.

    # Singleton domains.
    domains: Dict[Variable, Set[GroundTerm]] = {}
    for var in existential:
        values: Set[GroundTerm] = set()
        for value in domain_values:
            combined = dict(fixed)
            combined[var] = value
            if _satisfies(unary.get(var, ()), combined, graph):
                values.add(value)
        domains[var] = values
        if not values:
            return False

    # Binary relations restricted to current domains.
    supports: Dict[Tuple[Variable, Variable], Dict[GroundTerm, Set[GroundTerm]]] = {}
    neighbours: Dict[Variable, Set[Variable]] = defaultdict(set)
    for (u, v), constraint_triples in binary.items():
        relation: Dict[GroundTerm, Set[GroundTerm]] = defaultdict(set)
        for a in domains[u]:
            for b in domains[v]:
                combined = dict(fixed)
                combined[u] = a
                combined[v] = b
                if _satisfies(constraint_triples, combined, graph):
                    relation[a].add(b)
        supports[(u, v)] = dict(relation)
        neighbours[u].add(v)
        neighbours[v].add(u)

    if statistics is not None:
        statistics.candidate_partial_homs = sum(len(d) for d in domains.values()) + sum(
            len(bs) for rel in supports.values() for bs in rel.values()
        )

    def supported(u: Variable, a: GroundTerm, v: Variable) -> bool:
        """Does value a of u have a surviving partner in v's domain?"""
        if (u, v) in supports:
            partners = supports[(u, v)].get(a, ())
            return any(b in domains[v] for b in partners)
        relation = supports[(v, u)]
        return any(a in relation.get(b, ()) for b in domains[v])

    # AC-3 style propagation.
    queue: List[Variable] = list(existential)
    while queue:
        if statistics is not None:
            statistics.rounds += 1
        var = queue.pop()
        for value in list(domains[var]):
            if any(not supported(var, value, other) for other in neighbours[var]):
                domains[var].discard(value)
                if statistics is not None:
                    statistics.removed += 1
                if not domains[var]:
                    return False
                for other in neighbours[var]:
                    if other not in queue:
                        queue.append(other)
    return all(domains[var] for var in existential)


# ---------------------------------------------------------------------------
# general k: fixpoint over partial homomorphisms of size <= k
# ---------------------------------------------------------------------------


def _winner_generic(
    triples: List[TriplePattern],
    fixed: Dict[Variable, GroundTerm],
    existential: List[Variable],
    domain_values: List[GroundTerm],
    graph: RDFGraph,
    k: int,
    statistics: Optional[PebbleGameStatistics],
) -> bool:
    """Generic k-consistency fixpoint (used for k >= 3)."""
    triples_of_var: Dict[Variable, List[TriplePattern]] = defaultdict(list)
    for t in triples:
        for var in t.variables():
            if var not in fixed:
                triples_of_var[var].append(t)

    # Level-wise generation of all partial homomorphisms of size <= k.  When
    # extending an assignment by one variable only the triples mentioning the
    # new variable need re-checking.
    levels: List[Set[_PartialHom]] = [set() for _ in range(k + 1)]
    levels[0].add(())
    for size in range(1, k + 1):
        for smaller in levels[size - 1]:
            assignment: Dict[Variable, GroundTerm] = dict(smaller)
            combined = dict(fixed)
            combined.update(assignment)
            for var in existential:
                if var in assignment:
                    continue
                for value in domain_values:
                    combined[var] = value
                    if _satisfies(triples_of_var[var], combined, graph):
                        assignment[var] = value
                        levels[size].add(_as_tuple(assignment))
                        del assignment[var]
                del combined[var]

    family: Set[_PartialHom] = set()
    for level in levels:
        family.update(level)
    if statistics is not None:
        statistics.candidate_partial_homs = len(family)

    changed = True
    while changed:
        changed = False
        if statistics is not None:
            statistics.rounds += 1
        for item in list(family):
            if item not in family:
                continue
            assignment = dict(item)
            size = len(assignment)
            remove = False
            # Downward closure: all one-step restrictions must be alive.
            for var in assignment:
                restricted = {v: t for v, t in assignment.items() if v != var}
                if _as_tuple(restricted) not in family:
                    remove = True
                    break
            # Forth property: every missing variable must have a live extension.
            if not remove and size < k:
                for var in existential:
                    if var in assignment:
                        continue
                    has_extension = False
                    for value in domain_values:
                        assignment[var] = value
                        if _as_tuple(assignment) in family:
                            has_extension = True
                            break
                    del assignment[var]
                    if not has_extension:
                        remove = True
                        break
            if remove:
                family.discard(item)
                if statistics is not None:
                    statistics.removed += 1
                changed = True

    return () in family
