"""An indexed k-consistency kernel for the existential pebble game.

:func:`~repro.pebble.game.pebble_game_winner` historically rebuilt the whole
k-consistency instance — constraint grouping, singleton domains, binary
support relations, even ``dom(G)`` — from scratch on every ``(µ, child)``
invocation.  In the Theorem 1 evaluation algorithm the generalised t-graph
``(pat(T^µ) ∪ pat(n), vars(T^µ))`` and the data graph are *fixed* across
every candidate mapping; only the distinguished bindings change.  The kernel
makes that split explicit:

* **setup** (once per ``(structure, graph version, k)``): classify the
  triples by their existential-variable signature, and build the
  µ-independent per-variable base domains and binary support pairs through
  index joins — :meth:`~repro.hom.homomorphism.TargetIndex.pattern_solutions`
  over a shared target index when one is supplied, the graph's own
  pattern-matching indexes otherwise — in time proportional to the number
  of *matching* triples instead of the ``O(|dom(G)|² · |triples|)`` nested
  generate-and-test (with a fresh dict copy per candidate) of the per-call
  implementation.  The graph-dependent state is built lazily on the first
  solve that needs it, so instances that short-circuit (no existential
  variables, µ violating a distinguished triple) stay as cheap as before;
  :meth:`ConsistencyKernel.prepare` forces it for warm-up;
* **solve** (once per mapping ``µ``): restrict the precomputed domains and
  supports under the distinguished bindings — the restriction of each
  constraint depends only on ``µ`` projected to the distinguished variables
  the constraint mentions, so restrictions are memoized and shared across
  mappings — and run a worklist AC-3 (set-backed queue, no ``O(n)``
  membership scans) for ``k = 2``, or the generic fixpoint seeded from the
  precomputed level-0 family for ``k ≥ 3``.

Verdicts are identical to the per-call implementation
(:func:`~repro.pebble.game.reference_pebble_game_winner`) on every input;
:class:`~repro.pebble.game.PebbleGameStatistics` counters keep their
meaning (``candidate_partial_homs`` counts the same domains/supports or
family members, ``removed`` the values/partial homomorphisms pruned,
``rounds`` the propagation steps).

A kernel notices graph mutations through :attr:`RDFGraph.version` and
transparently rebuilds its graph-dependent state, so a long-lived kernel
never serves stale verdicts.  It references its graph **weakly**: a kernel
outliving its graph (only possible in caches) raises on use instead of
keeping the graph alive, so the evaluation cache's collect-on-GC store
eviction keeps working.  :class:`~repro.evaluation.cache.EvaluationCache`
keeps one kernel per ``(instance structure, pebbles)`` per graph version and
:class:`~repro.evaluation.batch.BatchEngine` warms them before fanning out,
which is where the per-mapping reuse pays off.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .game import PebbleGameStatistics, _as_tuple, _satisfies
from ..hom.homomorphism import TargetIndex
from ..hom.tgraph import GeneralizedTGraph
from ..rdf.graph import RDFGraph
from ..rdf.terms import GroundTerm, Variable
from ..rdf.triples import TriplePattern
from ..sparql.mappings import Mapping
from ..exceptions import EvaluationError

__all__ = ["ConsistencyKernel"]

#: A (value, value) support pair of a binary constraint group.
_Pair = Tuple[GroundTerm, GroundTerm]

#: Upper bound on the per-µ restriction memos of one kernel.  Kernels live in
#: the evaluation cache, whose size accounting charges them once at insertion;
#: without a bound a stream of mappings with ever-new distinguished
#: projections would grow the memos past anything the cache accounted for.
_RESTRICTION_MEMO_LIMIT = 4096


class ConsistencyKernel:
    """Precomputed existential *k*-pebble game for one ``(S, X)`` and graph.

    Parameters
    ----------
    gtgraph:
        The generalised t-graph ``(S, X)`` the game is played on.
    graph:
        The RDF graph.  The kernel snapshots its :attr:`~RDFGraph.version`
        and refreshes itself when the graph is mutated; the reference is
        weak — callers must keep the graph alive while they use the kernel.
    k:
        The number of pebbles (``k ≥ 2``).
    index:
        An optional prebuilt :class:`TargetIndex` over *graph* (for example
        the evaluation cache's shared index).  Must describe exactly the
        graph's triples at its current version; when omitted the kernel
        joins against the graph's own pattern-matching indexes.

    >>> from repro.hom.tgraph import GeneralizedTGraph
    >>> from repro.rdf import RDFGraph, Triple
    >>> from repro.sparql.mappings import Mapping
    >>> g = RDFGraph([Triple.of("a", "p", "b")])
    >>> kernel = ConsistencyKernel(GeneralizedTGraph.of([("?x", "p", "?y")], ["x"]), g, 2)
    >>> kernel.winner(Mapping.of(x="a"))
    True
    """

    __slots__ = (
        "_gtgraph",
        "_graph_ref",
        "_k",
        "_distinguished",
        "_existential",
        "_existential_set",
        "_triples",
        "_checked",
        "_pure_unary",
        "_mixed_unary",
        "_pure_binary",
        "_mixed_binary",
        "_neighbours",
        "_triples_of_var",
        "_version",
        "_index",
        "_domain_values",
        "_base_domains",
        "_base_pairs",
        "_unary_memo",
        "_binary_memo",
    )

    def __init__(
        self,
        gtgraph: GeneralizedTGraph,
        graph: RDFGraph,
        k: int,
        index: Optional[TargetIndex] = None,
    ) -> None:
        if k < 2:
            raise ValueError("the existential pebble game requires k >= 2")
        self._gtgraph = gtgraph
        self._graph_ref = weakref.ref(graph)
        self._k = k
        self._classify_structure()
        self._reset_graph_state(graph, index)

    # --- introspection -----------------------------------------------------
    @property
    def gtgraph(self) -> GeneralizedTGraph:
        """The generalised t-graph ``(S, X)`` this kernel answers for."""
        return self._gtgraph

    @property
    def graph(self) -> RDFGraph:
        """The RDF graph this kernel answers against (weakly referenced)."""
        graph = self._graph_ref()
        if graph is None:
            raise EvaluationError(
                "the graph of this ConsistencyKernel has been garbage collected"
            )
        return graph

    @property
    def k(self) -> int:
        """The number of pebbles."""
        return self._k

    @property
    def version(self) -> int:
        """The graph version the precomputed state is valid for."""
        return self._version

    def cost(self) -> int:
        """A rough size measure of the precomputed state (for cache budgets)."""
        pairs = sum(len(p) for p in self._base_pairs.values() if p is not None)
        values = sum(len(d) for d in self._base_domains.values() if d is not None)
        domain = len(self._domain_values) if self._domain_values is not None else 0
        return 1 + domain + values + pairs

    def __repr__(self) -> str:
        return (
            f"ConsistencyKernel(<{len(self._triples)} triples, "
            f"{len(self._existential)} existential, k={self._k}>)"
        )

    # --- µ-independent structure setup ------------------------------------
    def _classify_structure(self) -> None:
        """Group the triples by their existential-variable signature."""
        self._distinguished = self._gtgraph.distinguished
        existential = sorted(self._gtgraph.existential_variables(), key=lambda v: v.name)
        self._existential: Tuple[Variable, ...] = tuple(existential)
        self._existential_set: FrozenSet[Variable] = frozenset(existential)
        self._triples: List[TriplePattern] = list(self._gtgraph.triples())

        # Fully distinguished triples: µ must satisfy them outright.
        self._checked: List[TriplePattern] = []
        # Unary/binary constraint groups, split into the µ-independent (pure:
        # no distinguished variables) and µ-dependent (mixed) parts.
        self._pure_unary: Dict[Variable, List[TriplePattern]] = {}
        self._mixed_unary: Dict[Variable, List[TriplePattern]] = {}
        self._pure_binary: Dict[Tuple[Variable, Variable], List[TriplePattern]] = {}
        self._mixed_binary: Dict[Tuple[Variable, Variable], List[TriplePattern]] = {}
        neighbours: Dict[Variable, Set[Variable]] = {}
        # For the generic fixpoint: the triples mentioning each existential
        # variable (the ones to re-check when that variable is assigned).
        self._triples_of_var: Dict[Variable, List[TriplePattern]] = {
            var: [] for var in existential
        }

        for t in self._triples:
            t_existential = tuple(
                sorted(t.variables() & self._existential_set, key=lambda v: v.name)
            )
            mixed = bool(t.variables() - self._existential_set)
            for var in t_existential:
                self._triples_of_var[var].append(t)
            if not t_existential:
                self._checked.append(t)
            elif len(t_existential) == 1:
                group = self._mixed_unary if mixed else self._pure_unary
                group.setdefault(t_existential[0], []).append(t)
            elif len(t_existential) == 2 and self._k == 2:
                u, v = t_existential
                group = self._mixed_binary if mixed else self._pure_binary
                group.setdefault((u, v), []).append(t)
                neighbours.setdefault(u, set()).add(v)
                neighbours.setdefault(v, set()).add(u)
            # Triples with three or more existential variables are never
            # fully covered by two pebbles and impose no constraint on the
            # k = 2 factorisation; the generic fixpoint sees them through
            # ``_triples_of_var``.
        self._neighbours: Dict[Variable, Tuple[Variable, ...]] = {
            var: tuple(sorted(neighbours.get(var, ()), key=lambda v: v.name))
            for var in existential
        }

    def _binary_groups(self):
        """All binary constraint pairs (pure, mixed or both)."""
        return set(self._pure_binary) | set(self._mixed_binary)

    # --- per-graph-version setup ------------------------------------------
    def _reset_graph_state(self, graph: RDFGraph, index: Optional[TargetIndex]) -> None:
        """Bind to the graph's current version; defer the solver build.

        The expensive part (domain scan, base domains, base support pairs) is
        built lazily by :meth:`prepare` / the first solve that needs it, so
        instances that short-circuit — no existential variables, or µ
        violating a fully distinguished triple — cost no more than the
        per-call implementation did.
        """
        self._version = graph.version
        self._index = index
        self._domain_values: Optional[Tuple[GroundTerm, ...]] = None
        self._base_domains: Dict[Variable, Optional[FrozenSet[GroundTerm]]] = {}
        self._base_pairs: Dict[Tuple[Variable, Variable], Optional[FrozenSet[_Pair]]] = {}
        self._unary_memo: Dict[Tuple, FrozenSet[GroundTerm]] = {}
        self._binary_memo: Dict[Tuple, FrozenSet[_Pair]] = {}

    def _ensure_current(self, graph: RDFGraph) -> None:
        if self._version != graph.version:
            # A supplied shared index describes the old version; drop it and
            # fall back to the graph's own (always current) indexes.
            self._reset_graph_state(graph, None)

    def prepare(self) -> "ConsistencyKernel":
        """Force the graph-dependent setup now (warm-up entry point).

        Builds the sorted domain and the µ-independent base domains/support
        pairs for the current graph version; a no-op when already built or
        when the instance has no existential variables.  Returns ``self``.
        """
        graph = self.graph
        self._ensure_current(graph)
        if self._existential and self._domain_values is None:
            self._build_solver(graph)
        return self

    def _build_solver(self, graph: RDFGraph) -> None:
        """The µ-independent graph-side precomputation (see module docs)."""
        self._domain_values = graph.sorted_domain()

        # Base domains: the values allowed by the purely-existential unary
        # constraints (``None`` = unconstrained, i.e. the full dom(G)).
        for var in self._existential:
            base: Optional[Set[GroundTerm]] = None
            for t in self._pure_unary.get(var, ()):
                values = {binding[var] for binding in self._solutions(graph, t, {})}
                base = values if base is None else (base & values)
            self._base_domains[var] = frozenset(base) if base is not None else None

        # Base support pairs of the purely-existential binary constraints.
        for pair in self._binary_groups():
            u, v = pair
            pairs: Optional[Set[_Pair]] = None
            for t in self._pure_binary.get(pair, ()):
                allowed = {
                    (binding[u], binding[v]) for binding in self._solutions(graph, t, {})
                }
                pairs = allowed if pairs is None else (pairs & allowed)
            self._base_pairs[pair] = frozenset(pairs) if pairs is not None else None

    def _solutions(
        self, graph: RDFGraph, t: TriplePattern, fixed: Dict[Variable, GroundTerm]
    ) -> Iterator[Dict[Variable, GroundTerm]]:
        """Index-join bindings of one triple pattern under fixed bindings.

        Goes through the shared :class:`TargetIndex` when one was supplied,
        and through the graph's own pattern-matching indexes otherwise (so a
        standalone kernel never builds a second index over the graph).
        """
        if self._index is not None:
            return self._index.pattern_solutions(t, fixed)
        return graph.solutions(t.substitute(fixed) if fixed else t)

    # --- memoized per-µ restrictions --------------------------------------
    def _distinguished_projection(
        self, t: TriplePattern, fixed: Dict[Variable, GroundTerm]
    ) -> Tuple[Tuple[Variable, GroundTerm], ...]:
        return tuple(
            (var, fixed[var])
            for var in sorted(t.variables() - self._existential_set, key=lambda v: v.name)
        )

    @staticmethod
    def _memo_insert(memo: Dict[Tuple, FrozenSet], key: Tuple, value: FrozenSet) -> None:
        """Insert into a restriction memo, evicting the oldest entry at the cap."""
        if len(memo) >= _RESTRICTION_MEMO_LIMIT:
            del memo[next(iter(memo))]
        memo[key] = value

    def _unary_restriction(
        self,
        graph: RDFGraph,
        t: TriplePattern,
        var: Variable,
        fixed: Dict[Variable, GroundTerm],
    ) -> FrozenSet[GroundTerm]:
        """Values of *var* satisfying the mixed unary constraint *t* under µ."""
        projection = self._distinguished_projection(t, fixed)
        key = (t, projection)
        cached = self._unary_memo.get(key)
        if cached is None:
            cached = frozenset(
                binding[var] for binding in self._solutions(graph, t, dict(projection))
            )
            self._memo_insert(self._unary_memo, key, cached)
        return cached

    def _binary_restriction(
        self,
        graph: RDFGraph,
        t: TriplePattern,
        pair: Tuple[Variable, Variable],
        fixed: Dict[Variable, GroundTerm],
    ) -> FrozenSet[_Pair]:
        """Support pairs of the mixed binary constraint *t* under µ."""
        projection = self._distinguished_projection(t, fixed)
        key = (t, projection)
        cached = self._binary_memo.get(key)
        if cached is None:
            u, v = pair
            cached = frozenset(
                (binding[u], binding[v])
                for binding in self._solutions(graph, t, dict(projection))
            )
            self._memo_insert(self._binary_memo, key, cached)
        return cached

    def _restricted_domains(
        self, graph: RDFGraph, fixed: Dict[Variable, GroundTerm]
    ) -> Dict[Variable, Set[GroundTerm]]:
        """The per-variable domains under µ: base ∩ mixed-unary restrictions.

        Domains may come out empty; the callers decide what that means (the
        AC-3 path fails fast, the generic fixpoint lets the forth property
        kill the empty homomorphism, like the per-call implementation).
        """
        domains: Dict[Variable, Set[GroundTerm]] = {}
        for var in self._existential:
            base = self._base_domains[var]
            values: Set[GroundTerm] = set(base if base is not None else self._domain_values)
            for t in self._mixed_unary.get(var, ()):
                if not values:
                    break
                values &= self._unary_restriction(graph, t, var, fixed)
            domains[var] = values
        return domains

    # --- solving ------------------------------------------------------------
    def winner(
        self,
        mu: Mapping,
        statistics: Optional[PebbleGameStatistics] = None,
        budget=None,
    ) -> bool:
        """Decide ``(S, X) →µ_k G`` — the Duplicator-wins relation.

        Requires ``dom(µ) = X``; identical verdicts to
        :func:`~repro.pebble.game.reference_pebble_game_winner`.  *budget*
        is any object with an amortized ``tick()`` method; it is ticked
        along the worklist / fixpoint, bounding the solve.
        """
        if mu.domain() != self._distinguished:
            raise EvaluationError(
                "pebble_game_winner() requires dom(µ) to equal the distinguished set X"
            )
        graph = self.graph
        self._ensure_current(graph)
        fixed: Dict[Variable, GroundTerm] = {var: mu[var] for var in self._distinguished}

        # Fully distinguished triples must already be satisfied by µ,
        # otherwise even the empty configuration is not a partial
        # homomorphism.
        for t in self._checked:
            if t.substitute(fixed) not in graph:
                return False
        if not self._existential:
            # Property (1) of the paper: with no existential variables the
            # game degenerates to the homomorphism test, which µ passed.
            return True
        if self._domain_values is None:
            self._build_solver(graph)
        if not self._domain_values:
            # Existential variables but no element to answer with: the
            # Duplicator loses immediately.
            return False
        if self._k == 2:
            return self._solve_two_pebbles(graph, fixed, statistics, budget)
        return self._solve_generic(graph, fixed, statistics, budget)

    # --- k = 2: worklist arc consistency ----------------------------------
    def _solve_two_pebbles(
        self,
        graph: RDFGraph,
        fixed: Dict[Variable, GroundTerm],
        statistics: Optional[PebbleGameStatistics],
        budget=None,
    ) -> bool:
        domains = self._restricted_domains(graph, fixed)
        if any(not domains[var] for var in self._existential):
            return False

        # Per-pair support relations restricted to the current domains, in
        # both directions so that every revision is a forward lookup.
        supports: Dict[Tuple[Variable, Variable], Dict[GroundTerm, Set[GroundTerm]]] = {}
        reverse: Dict[Tuple[Variable, Variable], Dict[GroundTerm, Set[GroundTerm]]] = {}
        for pair in self._binary_groups():
            u, v = pair
            pairs = self._base_pairs[pair]
            for t in self._mixed_binary.get(pair, ()):
                allowed = self._binary_restriction(graph, t, pair, fixed)
                pairs = allowed if pairs is None else (pairs & allowed)
            assert pairs is not None  # every group has at least one triple
            if budget is not None:
                budget.tick(1 + len(pairs))
            forward: Dict[GroundTerm, Set[GroundTerm]] = {}
            backward: Dict[GroundTerm, Set[GroundTerm]] = {}
            domain_u, domain_v = domains[u], domains[v]
            for a, b in pairs:
                if a in domain_u and b in domain_v:
                    forward.setdefault(a, set()).add(b)
                    backward.setdefault(b, set()).add(a)
            supports[pair] = forward
            reverse[pair] = backward

        if statistics is not None:
            statistics.candidate_partial_homs = sum(
                len(d) for d in domains.values()
            ) + sum(len(bs) for relation in supports.values() for bs in relation.values())

        def supported(var: Variable, value: GroundTerm, other: Variable) -> bool:
            """Does *value* of *var* still have a partner in *other*'s domain?"""
            if (var, other) in supports:
                partners = supports[(var, other)].get(value, ())
            else:
                partners = reverse[(other, var)].get(value, ())
            other_domain = domains[other]
            return any(b in other_domain for b in partners)

        # Worklist AC-3: a set mirrors the queue so re-enqueueing a variable
        # is O(1) instead of a linear membership scan.
        queue: List[Variable] = list(self._existential)
        queued: Set[Variable] = set(queue)
        while queue:
            if statistics is not None:
                statistics.rounds += 1
            var = queue.pop()
            queued.discard(var)
            if budget is not None:
                budget.tick(max(1, len(domains[var])))
            for value in list(domains[var]):
                if any(not supported(var, value, other) for other in self._neighbours[var]):
                    domains[var].discard(value)
                    if statistics is not None:
                        statistics.removed += 1
                    if not domains[var]:
                        return False
                    for other in self._neighbours[var]:
                        if other not in queued:
                            queued.add(other)
                            queue.append(other)
        return all(domains[var] for var in self._existential)

    # --- k >= 3: generic fixpoint over the precomputed level-0 family ------
    def _solve_generic(
        self,
        graph: RDFGraph,
        fixed: Dict[Variable, GroundTerm],
        statistics: Optional[PebbleGameStatistics],
        budget=None,
    ) -> bool:
        k = self._k
        # The precomputed level-0 family: per-variable domains already pruned
        # by every unary constraint, so the level-wise generation only has to
        # re-check the triples linking the new variable to the rest.
        domains = self._restricted_domains(graph, fixed)

        levels: List[Set[Tuple]] = [set() for _ in range(k + 1)]
        levels[0].add(())
        for size in range(1, k + 1):
            for smaller in levels[size - 1]:
                if budget is not None:
                    budget.tick()
                assignment: Dict[Variable, GroundTerm] = dict(smaller)
                combined = dict(fixed)
                combined.update(assignment)
                for var in self._existential:
                    if var in assignment:
                        continue
                    for value in domains[var]:
                        combined[var] = value
                        if _satisfies(self._triples_of_var[var], combined, graph):
                            assignment[var] = value
                            levels[size].add(_as_tuple(assignment))
                            del assignment[var]
                    # The pruned domain may be empty, in which case the loop
                    # never (re)assigned the variable.
                    combined.pop(var, None)

        family: Set[Tuple] = set().union(*levels)
        if statistics is not None:
            statistics.candidate_partial_homs = len(family)

        changed = True
        while changed:
            changed = False
            if statistics is not None:
                statistics.rounds += 1
            for item in list(family):
                if budget is not None:
                    budget.tick()
                if item not in family:
                    continue
                assignment = dict(item)
                size = len(assignment)
                remove = False
                # Downward closure: all one-step restrictions must be alive.
                for var in assignment:
                    restricted = {v: t for v, t in assignment.items() if v != var}
                    if _as_tuple(restricted) not in family:
                        remove = True
                        break
                # Forth property: every missing variable must have a live
                # extension (values outside the pruned domain can never be in
                # the family, so iterating the domain is exhaustive).
                if not remove and size < k:
                    for var in self._existential:
                        if var in assignment:
                            continue
                        has_extension = False
                        for value in domains[var]:
                            assignment[var] = value
                            if _as_tuple(assignment) in family:
                                has_extension = True
                                break
                        assignment.pop(var, None)
                        if not has_extension:
                            remove = True
                            break
                if remove:
                    family.discard(item)
                    if statistics is not None:
                        statistics.removed += 1
                    changed = True

        return () in family
