"""RDF substrate: terms, triples, indexed graphs, I/O and generators."""

from .terms import IRI, Literal, Variable, Term, GroundTerm, is_ground_term
from .triples import Triple, TriplePattern, triple, pattern, variables_of
from .graph import RDFGraph
from .dictionary import TermDictionary
from .reference import ReferenceRDFGraph
from .namespace import Namespace, EX, FOAF, RDF_NS, RDFS_NS
from .io import parse_ntriples, serialize_ntriples, load_graph, save_graph
from . import generators

__all__ = [
    "IRI",
    "Literal",
    "Variable",
    "Term",
    "GroundTerm",
    "is_ground_term",
    "Triple",
    "TriplePattern",
    "triple",
    "pattern",
    "variables_of",
    "RDFGraph",
    "TermDictionary",
    "ReferenceRDFGraph",
    "Namespace",
    "EX",
    "FOAF",
    "RDF_NS",
    "RDFS_NS",
    "parse_ntriples",
    "serialize_ntriples",
    "load_graph",
    "save_graph",
    "generators",
]
