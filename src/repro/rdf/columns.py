"""Sorted id-triple columns for the columnar triple store.

Each :class:`SortedKeyRun` holds one permutation of the graph's id-encoded
triples (SPO, POS or OSP) as a single sorted sequence of packed integer
keys — ``key = (a << 2·bits) | (b << bits) | c`` — so that every triple
pattern whose bound positions form a prefix of the permutation is one
``bisect`` range scan.

Incremental maintenance instead of rebuild-on-mutation:

* single inserts go into a small **sorted buffer** (``bisect.insort`` into a
  list of at most :data:`BUFFER_LIMIT` keys); membership tests consult both
  the buffer and the main run without merging;
* the buffer is **merged into the main run** when it fills up or before a
  range scan — one near-linear Timsort pass over two already-sorted runs —
  so a burst of mutations costs one merge, not one rebuild per mutation;
* bulk loads (:meth:`extend_sorted`) sort the incoming keys once and merge,
  which is what :meth:`RDFGraph.from_triples <repro.rdf.graph.RDFGraph>`
  rides on;
* deletions locate the key by binary search and splice it out of the
  (contiguous) run.

While ids fit in ``bits = 21`` the runs are backed by ``array('q')`` — three
packed fields in one signed 64-bit word, eight bytes per triple per
permutation.  A graph that interns more than ``2**21`` distinct terms
promotes its runs to plain lists of (unbounded) Python ints via
:meth:`widen`; packing is monotone in either representation, so widening is
a linear re-encode that preserves sort order.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from typing import Iterable, Iterator, List, Union

__all__ = ["SortedKeyRun", "scan_mask", "BUFFER_LIMIT", "ARRAY_BITS_LIMIT"]

#: Buffered inserts are merged into the main run at this size.
BUFFER_LIMIT = 1024

#: The widest per-field bit width that still packs three fields into a
#: signed 64-bit ``array('q')`` slot.
ARRAY_BITS_LIMIT = 21

_Backing = Union["array[int]", List[int]]


def _backing(bits: int, keys: Iterable[int] = ()) -> _Backing:
    if bits <= ARRAY_BITS_LIMIT:
        return array("q", keys)
    return list(keys)


class SortedKeyRun:
    """One sorted permutation run of packed triple keys (see module docs)."""

    __slots__ = ("_main", "_buffer")

    def __init__(self, bits: int, sorted_keys: Iterable[int] = ()) -> None:
        self._main: _Backing = _backing(bits, sorted_keys)
        self._buffer: List[int] = []

    # --- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._main) + len(self._buffer)

    def __contains__(self, key: int) -> bool:
        """Membership by binary search in the main run and the buffer."""
        buffer = self._buffer
        if buffer:
            i = bisect_left(buffer, key)
            if i < len(buffer) and buffer[i] == key:
                return True
        main = self._main
        i = bisect_left(main, key)
        return i < len(main) and main[i] == key

    def __iter__(self) -> Iterator[int]:
        """All keys in sorted order (merges the buffer first)."""
        self.flush()
        return iter(self._main)

    def scan(self, lo: int, hi: int) -> Iterator[int]:
        """The keys in ``[lo, hi)`` in sorted order (merges the buffer first)."""
        self.flush()
        main = self._main
        i = bisect_left(main, lo)
        n = len(main)
        while i < n:
            key = main[i]
            if key >= hi:
                return
            yield key
            i += 1

    def count(self, lo: int, hi: int) -> int:
        """``len(list(self.scan(lo, hi)))`` in two binary searches."""
        self.flush()
        return bisect_left(self._main, hi) - bisect_left(self._main, lo)

    # --- mutation ----------------------------------------------------------
    def add(self, key: int) -> None:
        """Insert *key* (caller guarantees it is not present)."""
        insort(self._buffer, key)
        if len(self._buffer) >= BUFFER_LIMIT:
            self.flush()

    def extend_sorted(self, sorted_keys: Iterable[int]) -> None:
        """Bulk-insert already-sorted, not-present keys with one merge."""
        self._buffer.extend(sorted_keys)
        self.flush()

    def remove(self, key: int) -> None:
        """Delete *key* (caller guarantees it is present)."""
        buffer = self._buffer
        if buffer:
            i = bisect_left(buffer, key)
            if i < len(buffer) and buffer[i] == key:
                del buffer[i]
                return
        main = self._main
        i = bisect_left(main, key)
        del main[i]

    def flush(self) -> None:
        """Merge the insert buffer into the main run (no-op when empty).

        ``sorted()`` over the concatenation is a single Timsort galloping
        merge of two sorted runs — near-linear, at C speed.
        """
        if not self._buffer:
            return
        main = self._main
        main.extend(self._buffer)
        self._buffer.clear()
        merged = sorted(main)
        if isinstance(main, array):
            self._main = array("q", merged)
        else:
            self._main = merged

    # --- representation management -----------------------------------------
    def widen(self, old_bits: int, new_bits: int) -> None:
        """Re-encode every key from *old_bits* to *new_bits* fields.

        Packing is monotone in the (a, b, c) field tuple for any fixed
        width, so the linear re-encode preserves sort order.
        """
        self.flush()
        old_mask = (1 << old_bits) - 1
        shift2 = 2 * old_bits

        def repack(key: int) -> int:
            a = key >> shift2
            b = (key >> old_bits) & old_mask
            c = key & old_mask
            return (a << (2 * new_bits)) | (b << new_bits) | c

        self._main = _backing(new_bits, (repack(key) for key in self._main))

    def copy(self) -> "SortedKeyRun":
        """An independent copy of this run."""
        self.flush()
        result = SortedKeyRun.__new__(SortedKeyRun)
        if isinstance(self._main, array):
            result._main = array("q", self._main)
        else:
            result._main = list(self._main)
        result._buffer = []
        return result

    def snapshot(self) -> _Backing:
        """A flushed, independent copy of the sorted keys (for indexes)."""
        self.flush()
        main = self._main
        if isinstance(main, array):
            return array("q", main)
        return list(main)


def scan_mask(
    bits: int,
    spo: SortedKeyRun,
    pos: SortedKeyRun,
    osp: SortedKeyRun,
    s: "int | None",
    p: "int | None",
    o: "int | None",
) -> Iterator[tuple]:
    """Yield ``((s, p, o), packed_spo_key)`` for one bound-position mask.

    Every one of the seven masks is a prefix of one of the three
    permutations, so each call is a single bisect range scan: ``s`` /
    ``sp`` lead SPO, ``p`` / ``po`` lead POS, ``o`` / ``os`` lead OSP, and
    the fully bound mask is a membership probe.  Shared by
    :meth:`RDFGraph.matches <repro.rdf.graph.RDFGraph.matches>` and
    :class:`~repro.hom.homomorphism.ColumnarTargetIndex`.
    """
    mask = (1 << bits) - 1
    shift2 = 2 * bits

    def pack(a: int, b: int, c: int) -> int:
        return (a << shift2) | (b << bits) | c

    if s is not None and p is not None and o is not None:
        key = pack(s, p, o)
        if key in spo:
            yield (s, p, o), key
        return
    if s is not None and p is not None:
        lo = pack(s, p, 0)
        for key in spo.scan(lo, lo + (1 << bits)):
            yield (s, p, key & mask), key
        return
    if p is not None and o is not None:
        lo = pack(p, o, 0)
        for key in pos.scan(lo, lo + (1 << bits)):
            si = key & mask
            yield (si, p, o), pack(si, p, o)
        return
    if s is not None and o is not None:
        lo = pack(o, s, 0)
        for key in osp.scan(lo, lo + (1 << bits)):
            pi = key & mask
            yield (s, pi, o), pack(s, pi, o)
        return
    if s is not None:
        lo = s << shift2
        for key in spo.scan(lo, lo + (1 << shift2)):
            yield (s, (key >> bits) & mask, key & mask), key
        return
    if p is not None:
        lo = p << shift2
        for key in pos.scan(lo, lo + (1 << shift2)):
            si, oi = key & mask, (key >> bits) & mask
            yield (si, p, oi), pack(si, p, oi)
        return
    if o is not None:
        lo = o << shift2
        for key in osp.scan(lo, lo + (1 << shift2)):
            si, pi = (key >> bits) & mask, key & mask
            yield (si, pi, o), pack(si, pi, o)
        return
    for key in spo:
        yield (key >> shift2, (key >> bits) & mask, key & mask), key
