"""Term interning for the columnar triple store.

:class:`TermDictionary` maps every ground term (IRI or literal) of a graph to
a dense integer id and back.  Ids are assigned in interning order, never
reused and never removed — a term that no longer occurs in any triple keeps
its id (the graph tracks occurrence counts separately), so id-encoded
snapshots such as :class:`~repro.hom.homomorphism.ColumnarTargetIndex`
remain decodable after arbitrary mutations of the graph.

Interning also deduplicates term objects: every triple decoded from the
columns shares the single interned instance of each of its terms, so a
million-triple graph holds each distinct IRI object once.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .terms import GroundTerm

__all__ = ["TermDictionary"]


class TermDictionary:
    """A bijection between ground terms and dense integer ids.

    >>> from repro.rdf.terms import IRI
    >>> d = TermDictionary()
    >>> d.intern(IRI("http://example.org/a"))
    0
    >>> d.intern(IRI("http://example.org/a"))
    0
    >>> d.term_of(0)
    IRI('http://example.org/a')
    """

    __slots__ = ("_ids", "_terms")

    def __init__(self) -> None:
        self._ids: Dict[GroundTerm, int] = {}
        self._terms: List[GroundTerm] = []

    def intern(self, term: GroundTerm) -> int:
        """The id of *term*, assigning the next dense id on first sight."""
        term_id = self._ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._ids[term] = term_id
            self._terms.append(term)
        return term_id

    def id_of(self, term: GroundTerm) -> Optional[int]:
        """The id of *term*, or ``None`` when it was never interned."""
        return self._ids.get(term)

    def term_of(self, term_id: int) -> GroundTerm:
        """The term with the given id (ids are dense: ``0 .. len - 1``)."""
        return self._terms[term_id]

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[GroundTerm]:
        return iter(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._ids

    def __repr__(self) -> str:
        return f"TermDictionary(<{len(self._terms)} terms>)"

    def copy(self) -> "TermDictionary":
        """An independent copy (terms are immutable and shared)."""
        result = TermDictionary.__new__(TermDictionary)
        result._ids = dict(self._ids)
        result._terms = list(self._terms)
        return result
