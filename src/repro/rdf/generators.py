"""Synthetic RDF graph generators.

The paper's algorithms are evaluated on RDF graphs; since PODS papers ship no
data sets, these generators produce structured and random graphs used by the
tests, the examples and the benchmark harness:

* :func:`random_graph` — Erdős–Rényi style random triples over a fixed
  vocabulary;
* :func:`power_law_graph` — Zipf-weighted endpoints, so node degrees follow
  a power law with a few heavy hubs; the large-graph tier of the benchmark
  harness draws 10⁵–10⁶ triples from it;
* :func:`path_graph`, :func:`cycle_graph`, :func:`grid_graph`,
  :func:`clique_graph`, :func:`star_graph`, :func:`tree_graph` — structured
  graphs whose homomorphism behaviour is well understood;
* :func:`social_network_graph` — a small-world style FOAF-ish graph used by
  the social-network example and the evaluation benchmarks;
* :func:`from_networkx` — import any (di)graph from networkx, labelling
  edges with a single predicate.

The generators that scale (:func:`random_graph`, :func:`power_law_graph`,
:func:`social_network_graph`, :func:`from_networkx`) materialise their triples
first and bulk-load them through :meth:`RDFGraph.from_triples
<repro.rdf.graph.RDFGraph.from_triples>`, which sorts each permutation column
once instead of maintaining the indexes per insert.
"""

from __future__ import annotations

import random
from itertools import accumulate
from typing import List, Optional, Sequence

import networkx as nx

from .graph import RDFGraph
from .namespace import EX, FOAF
from .terms import IRI
from .triples import Triple

__all__ = [
    "random_graph",
    "power_law_graph",
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "clique_graph",
    "star_graph",
    "tree_graph",
    "social_network_graph",
    "from_networkx",
]


def _node_iri(index: int, prefix: str = "node") -> IRI:
    return EX.term(f"{prefix}{index}")


def random_graph(
    num_nodes: int,
    num_triples: int,
    predicates: Sequence[str] = ("p", "q", "r"),
    seed: Optional[int] = None,
) -> RDFGraph:
    """A uniformly random RDF graph over ``num_nodes`` IRIs.

    Each triple picks a uniformly random subject, predicate (from
    *predicates*) and object.  Duplicate draws are allowed, so the result may
    contain fewer than ``num_triples`` distinct triples.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    rng = random.Random(seed)
    nodes = [_node_iri(i) for i in range(num_nodes)]
    preds = [EX.term(p) for p in predicates]
    triples = [
        Triple(rng.choice(nodes), rng.choice(preds), rng.choice(nodes))
        for _ in range(num_triples)
    ]
    return RDFGraph.from_triples(triples)


def power_law_graph(
    num_nodes: int,
    num_triples: int,
    predicates: Sequence[str] = ("p", "q", "r"),
    exponent: float = 2.0,
    seed: Optional[int] = None,
) -> RDFGraph:
    """A random graph whose node degrees follow a power law.

    Subjects and objects are drawn from a Zipf distribution over the nodes
    (node ``i`` with weight ``(i + 1) ** -exponent``), so low-index nodes
    become heavy hubs while the tail stays sparse — the degree profile of
    real-world RDF data sets, and the stress profile for the columnar
    store's range scans (hub predicates/subjects produce long runs).
    Duplicate draws are allowed, so the result may contain fewer than
    ``num_triples`` distinct triples.

    The draws use :meth:`random.Random.choices` with precomputed cumulative
    weights (binary search at C speed per draw) and the triples are bulk
    loaded, so generating a million-triple graph takes seconds.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if num_triples < 0:
        raise ValueError("num_triples must be non-negative")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    rng = random.Random(seed)
    nodes = [_node_iri(i) for i in range(num_nodes)]
    preds = [EX.term(p) for p in predicates]
    cum_weights = list(accumulate((i + 1) ** -exponent for i in range(num_nodes)))
    subjects = rng.choices(nodes, cum_weights=cum_weights, k=num_triples)
    objects = rng.choices(nodes, cum_weights=cum_weights, k=num_triples)
    chosen_preds = rng.choices(preds, k=num_triples)
    return RDFGraph.from_triples(
        Triple(s, p, o) for s, p, o in zip(subjects, chosen_preds, objects)
    )


def path_graph(length: int, predicate: str = "edge") -> RDFGraph:
    """A directed path ``n0 -edge-> n1 -edge-> ... -edge-> n_length``."""
    if length < 0:
        raise ValueError("length must be non-negative")
    pred = EX.term(predicate)
    graph = RDFGraph()
    for i in range(length):
        graph.add(Triple(_node_iri(i), pred, _node_iri(i + 1)))
    return graph


def cycle_graph(length: int, predicate: str = "edge") -> RDFGraph:
    """A directed cycle of the given length (length >= 1)."""
    if length < 1:
        raise ValueError("cycle length must be at least 1")
    pred = EX.term(predicate)
    graph = RDFGraph()
    for i in range(length):
        graph.add(Triple(_node_iri(i), pred, _node_iri((i + 1) % length)))
    return graph


def grid_graph(rows: int, cols: int, predicate: str = "edge") -> RDFGraph:
    """The (rows × cols) grid with edges in both directions (so that
    undirected-grid homomorphisms are available)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    pred = EX.term(predicate)
    graph = RDFGraph()

    def node(i: int, j: int) -> IRI:
        return EX.term(f"cell_{i}_{j}")

    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                graph.add(Triple(node(i, j), pred, node(i + 1, j)))
                graph.add(Triple(node(i + 1, j), pred, node(i, j)))
            if j + 1 < cols:
                graph.add(Triple(node(i, j), pred, node(i, j + 1)))
                graph.add(Triple(node(i, j + 1), pred, node(i, j)))
    return graph


def clique_graph(size: int, predicate: str = "edge", symmetric: bool = True) -> RDFGraph:
    """The complete graph on ``size`` nodes as an RDF graph (no self loops)."""
    if size < 1:
        raise ValueError("clique size must be positive")
    pred = EX.term(predicate)
    graph = RDFGraph()
    for i in range(size):
        for j in range(size):
            if i == j:
                continue
            if not symmetric and i > j:
                continue
            graph.add(Triple(_node_iri(i), pred, _node_iri(j)))
    return graph


def star_graph(leaves: int, predicate: str = "edge") -> RDFGraph:
    """A star: a centre node connected to ``leaves`` leaf nodes."""
    if leaves < 0:
        raise ValueError("number of leaves must be non-negative")
    pred = EX.term(predicate)
    centre = EX.term("centre")
    graph = RDFGraph()
    for i in range(leaves):
        graph.add(Triple(centre, pred, _node_iri(i, prefix="leaf")))
    return graph


def tree_graph(depth: int, branching: int, predicate: str = "edge") -> RDFGraph:
    """A complete rooted tree of the given depth and branching factor."""
    if depth < 0 or branching < 1:
        raise ValueError("depth must be >= 0 and branching >= 1")
    pred = EX.term(predicate)
    graph = RDFGraph()
    frontier = [EX.term("root")]
    counter = 0
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(branching):
                child = _node_iri(counter, prefix="t")
                counter += 1
                graph.add(Triple(parent, pred, child))
                next_frontier.append(child)
        frontier = next_frontier
    return graph


def social_network_graph(
    num_people: int,
    avg_friends: int = 4,
    email_probability: float = 0.6,
    phone_probability: float = 0.3,
    city_count: int = 5,
    seed: Optional[int] = None,
) -> RDFGraph:
    """A synthetic FOAF-style social network.

    People ``know`` each other (Watts–Strogatz small world), most have an
    ``mbox``, some have a ``phone`` and everyone ``basedNear`` one of a small
    number of cities.  Optional attributes are exactly the kind of data the
    OPTIONAL operator is designed for, which makes this the motivating
    workload for the evaluation examples.
    """
    if num_people < 3:
        raise ValueError("need at least 3 people")
    rng = random.Random(seed)
    k = max(2, min(avg_friends, num_people - 1))
    if k % 2 == 1:
        k += 1
    social = nx.watts_strogatz_graph(num_people, k, 0.2, seed=seed)
    triples: List[Triple] = []
    people = [EX.term(f"person{i}") for i in range(num_people)]
    cities = [EX.term(f"city{i}") for i in range(city_count)]
    for i, person in enumerate(people):
        triples.append(Triple(person, FOAF.name, EX.term(f"name{i}")))
        triples.append(Triple(person, FOAF.basedNear, rng.choice(cities)))
        if rng.random() < email_probability:
            triples.append(Triple(person, FOAF.mbox, EX.term(f"mailto_person{i}")))
        if rng.random() < phone_probability:
            triples.append(Triple(person, FOAF.phone, EX.term(f"tel_person{i}")))
    for u, v in social.edges():
        triples.append(Triple(people[u], FOAF.knows, people[v]))
        triples.append(Triple(people[v], FOAF.knows, people[u]))
    return RDFGraph.from_triples(triples)


def from_networkx(
    nx_graph: "nx.Graph | nx.DiGraph",
    predicate: str = "edge",
    symmetric: Optional[bool] = None,
) -> RDFGraph:
    """Convert a networkx (di)graph to an RDF graph with one predicate.

    For undirected graphs each edge is emitted in both directions unless
    *symmetric* is explicitly ``False``.
    """
    pred = EX.term(predicate)
    directed = nx_graph.is_directed()
    if symmetric is None:
        symmetric = not directed
    triples: List[Triple] = []
    node_iris = {node: EX.term(f"v{node}") for node in nx_graph.nodes()}
    for u, v in nx_graph.edges():
        triples.append(Triple(node_iris[u], pred, node_iris[v]))
        if symmetric:
            triples.append(Triple(node_iris[v], pred, node_iris[u]))
    return RDFGraph.from_triples(triples)
