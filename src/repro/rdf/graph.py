"""An in-memory, interned, columnar RDF graph.

:class:`RDFGraph` is a finite set of ground triples.  Internally every term
is interned to a dense integer id through a per-graph
:class:`~repro.rdf.dictionary.TermDictionary`, and the id-encoded triples are
kept in three sorted permutation columns (SPO, POS, OSP — see
:mod:`repro.rdf.columns`), so that

* matching a triple pattern is a binary-search **range scan** over the
  permutation whose sort order leads with the bound positions — every one of
  the seven bound-position masks is a prefix of one of the three
  permutations;
* mutations are **incremental**: single inserts go to a small sorted buffer
  that merges into the main runs, bulk loads
  (:meth:`RDFGraph.from_triples` / :meth:`add_all`) sort the batch once and
  merge once, and deletions splice one key out of each run — the indexes are
  patched in place, never rebuilt from scratch;
* ``dom(G)`` reads the term dictionary directly (terms with a live
  occurrence count), instead of re-scanning every triple.

The public API — :class:`Triple` objects in and out, the pattern-matching
:meth:`matches`/:meth:`solutions`, and the :attr:`version` counter that the
evaluation caches key on — is unchanged from the hash-indexed store this
replaces (retained as :class:`repro.rdf.reference.ReferenceRDFGraph` for the
differential parity suite).  One deliberate refinement: a *bulk* mutation
(:meth:`add_all`, :meth:`from_triples`, the constructor) bumps
:attr:`version` **once**, not once per triple, so a single bulk load no
longer invalidates warm caches N times over.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .columns import ARRAY_BITS_LIMIT, SortedKeyRun, scan_mask
from .dictionary import TermDictionary
from .terms import GroundTerm, Variable, is_ground_term
from .triples import Triple, TriplePattern
from ..exceptions import RDFError

__all__ = ["RDFGraph"]

#: Initial per-field bit width of the packed keys; the graph widens (doubling
#: the width, switching the runs from ``array('q')`` to plain int lists past
#: :data:`~repro.rdf.columns.ARRAY_BITS_LIMIT`) when the dictionary outgrows
#: it.  Module-level so the parity tests can force the widening path on
#: small graphs.
_INITIAL_BITS = ARRAY_BITS_LIMIT


class RDFGraph:
    """A finite set of ground RDF triples with columnar pattern indexes.

    >>> g = RDFGraph()
    >>> _ = g.add(Triple.of("a", "p", "b"))
    >>> len(g)
    1
    >>> list(g.matches(TriplePattern.of("?x", "p", "?y")))[0].is_ground()
    True
    """

    __slots__ = (
        "_dict",
        "_bits",
        "_spo",
        "_pos",
        "_osp",
        "_counts",
        "_decoded",
        "_version",
        "_domain_cache",
        "_sorted_domain_cache",
        "_triples_cache",
        "__weakref__",
    )

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._dict = TermDictionary()
        self._bits = _INITIAL_BITS
        self._spo = SortedKeyRun(self._bits)
        self._pos = SortedKeyRun(self._bits)
        self._osp = SortedKeyRun(self._bits)
        self._counts: List[int] = []
        # Packed-SPO-key -> decoded Triple memo, shared (by reference) with
        # the columnar target indexes snapshotted off this graph.  Replaced
        # wholesale on widening: old snapshots keep the old-width dict.
        self._decoded: Dict[int, Triple] = {}
        self._version = 0
        self._domain_cache: Optional[Tuple[int, frozenset]] = None
        self._sorted_domain_cache: Optional[Tuple[int, Tuple[GroundTerm, ...]]] = None
        self._triples_cache: Optional[Tuple[int, FrozenSet[Triple]]] = None
        if triples:
            self.add_all(triples)

    # --- construction -----------------------------------------------------
    @classmethod
    def from_tuples(cls, tuples: Iterable[Tuple[object, object, object]]) -> "RDFGraph":
        """Build a graph from ``(s, p, o)`` tuples of terms or plain strings."""
        return cls(Triple.of(s, p, o) for s, p, o in tuples)

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "RDFGraph":
        """Bulk-load a graph: intern every term, sort each permutation once.

        This is the loader for large graphs — identical result to adding the
        triples one by one, but the columns are sorted once instead of
        maintained per insert, and :attr:`version` is bumped once.
        """
        return cls(triples)

    def _validate(self, triple: Triple) -> None:
        if not isinstance(triple, TriplePattern):
            raise TypeError(f"expected a Triple, got {type(triple).__name__}")
        if not triple.is_ground():
            raise RDFError(f"cannot add non-ground triple {triple} to an RDF graph")

    def _intern_triple(self, triple: Triple) -> Tuple[int, int, int]:
        intern = self._dict.intern
        return (intern(triple.subject), intern(triple.predicate), intern(triple.object))

    def _ensure_capacity(self) -> None:
        """Widen the packed representation when the dictionary outgrew it."""
        while len(self._dict) > (1 << self._bits):
            new_bits = self._bits * 2
            for run in (self._spo, self._pos, self._osp):
                run.widen(self._bits, new_bits)
            self._bits = new_bits
            self._decoded = {}

    def _pack(self, a: int, b: int, c: int) -> int:
        bits = self._bits
        return (a << (2 * bits)) | (b << bits) | c

    def add(self, triple: Triple) -> "RDFGraph":
        """Add a ground triple.  Returns ``self`` for chaining."""
        self._validate(triple)
        s, p, o = self._intern_triple(triple)
        self._ensure_capacity()
        key = self._pack(s, p, o)
        if key in self._spo:
            return self
        self._version += 1
        self._insert_ids(key, s, p, o)
        return self

    def _insert_ids(self, spo_key: int, s: int, p: int, o: int) -> None:
        self._spo.add(spo_key)
        self._pos.add(self._pack(p, o, s))
        self._osp.add(self._pack(o, s, p))
        counts = self._counts
        grow = max(s, p, o) + 1 - len(counts)
        if grow > 0:
            counts.extend([0] * grow)
        counts[s] += 1
        counts[p] += 1
        counts[o] += 1

    def add_all(self, triples: Iterable[Triple]) -> "RDFGraph":
        """Add every triple of *triples* as **one bulk mutation**.

        Every term is interned, the batch is deduplicated against the graph
        and itself, each permutation column is sorted once and merged into
        its run once — and :attr:`version` is bumped **once** (when at least
        one triple was actually new), so a bulk load invalidates warm caches
        a single time instead of once per triple.
        """
        interned: List[Tuple[int, int, int]] = []
        for t in triples:
            self._validate(t)
            interned.append(self._intern_triple(t))
        if not interned:
            return self
        self._ensure_capacity()
        pack = self._pack
        spo = self._spo
        new_keys: List[int] = []
        new_ids: List[Tuple[int, int, int]] = []
        seen: set = set()
        for s, p, o in interned:
            key = pack(s, p, o)
            if key in seen or key in spo:
                continue
            seen.add(key)
            new_keys.append(key)
            new_ids.append((s, p, o))
        if not new_keys:
            return self
        self._version += 1
        new_keys.sort()
        spo.extend_sorted(new_keys)
        self._pos.extend_sorted(sorted(pack(p, o, s) for s, p, o in new_ids))
        self._osp.extend_sorted(sorted(pack(o, s, p) for s, p, o in new_ids))
        counts = self._counts
        top = max(max(ids) for ids in new_ids) + 1
        if top > len(counts):
            counts.extend([0] * (top - len(counts)))
        for s, p, o in new_ids:
            counts[s] += 1
            counts[p] += 1
            counts[o] += 1
        return self

    def discard(self, triple: Triple) -> "RDFGraph":
        """Remove a triple if present (splices one key out of each column)."""
        if not isinstance(triple, TriplePattern) or not triple.is_ground():
            return self
        id_of = self._dict.id_of
        s = id_of(triple.subject)
        p = id_of(triple.predicate)
        o = id_of(triple.object)
        if s is None or p is None or o is None:
            return self
        key = self._pack(s, p, o)
        if key not in self._spo:
            return self
        self._version += 1
        self._spo.remove(key)
        self._pos.remove(self._pack(p, o, s))
        self._osp.remove(self._pack(o, s, p))
        counts = self._counts
        counts[s] -= 1
        counts[p] -= 1
        counts[o] -= 1
        self._decoded.pop(key, None)
        return self

    def copy(self) -> "RDFGraph":
        """An independent copy (column and dictionary state is copied; the
        immutable terms and decoded triples are shared)."""
        result = RDFGraph.__new__(RDFGraph)
        result._dict = self._dict.copy()
        result._bits = self._bits
        result._spo = self._spo.copy()
        result._pos = self._pos.copy()
        result._osp = self._osp.copy()
        result._counts = list(self._counts)
        result._decoded = dict(self._decoded)
        result._version = self._version
        result._domain_cache = None
        result._sorted_domain_cache = None
        result._triples_cache = None
        return result

    @property
    def version(self) -> int:
        """A counter incremented on every *mutation* of the graph.

        ``add`` / ``discard`` of a triple bump it by one; a bulk mutation
        (:meth:`add_all`, :meth:`from_triples`, the constructor) bumps it by
        one for the whole batch.  Mutations that change nothing (duplicate
        adds, discards of absent triples, empty batches) do not bump it.
        Evaluation caches key their per-graph entries on this counter, so
        any mutation transparently invalidates everything cached for the
        graph (see :class:`repro.evaluation.cache.EvaluationCache`).
        """
        return self._version

    def __reduce__(self):
        self._spo.flush()
        self._pos.flush()
        self._osp.flush()
        return (
            RDFGraph._restore,
            (
                tuple(self._dict),
                self._bits,
                self._spo.snapshot(),
                self._pos.snapshot(),
                self._osp.snapshot(),
                tuple(self._counts),
                self._version,
            ),
        )

    @classmethod
    def _restore(
        cls,
        terms: Sequence[GroundTerm],
        bits: int,
        spo: Sequence[int],
        pos: Sequence[int],
        osp: Sequence[int],
        counts: Sequence[int],
        version: int,
    ) -> "RDFGraph":
        """Rebuild from pickled column state (keys are already sorted), so a
        million-triple graph unpickles without re-sorting or re-interning."""
        result = cls.__new__(cls)
        dictionary = TermDictionary()
        for term in terms:
            dictionary.intern(term)
        result._dict = dictionary
        result._bits = bits
        result._spo = SortedKeyRun(bits, spo)
        result._pos = SortedKeyRun(bits, pos)
        result._osp = SortedKeyRun(bits, osp)
        result._counts = list(counts)
        result._decoded = {}
        result._version = version
        result._domain_cache = None
        result._sorted_domain_cache = None
        result._triples_cache = None
        return result

    def union(self, other: "RDFGraph") -> "RDFGraph":
        """A new graph containing the triples of both graphs."""
        result = self.copy()
        result.add_all(other)
        return result

    # --- container protocol -------------------------------------------------
    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, TriplePattern) or not triple.is_ground():
            return False
        id_of = self._dict.id_of
        s = id_of(triple.subject)
        p = id_of(triple.predicate)
        o = id_of(triple.object)
        if s is None or p is None or o is None:
            return False
        return self._pack(s, p, o) in self._spo

    def _decode(self, key: int) -> Triple:
        """The :class:`Triple` for one packed SPO key (memoized; terms are
        the interned instances, so decoded triples share term objects)."""
        triple = self._decoded.get(key)
        if triple is None:
            bits = self._bits
            mask = (1 << bits) - 1
            term_of = self._dict.term_of
            triple = TriplePattern(
                term_of(key >> (2 * bits)),
                term_of((key >> bits) & mask),
                term_of(key & mask),
            )
            self._decoded[key] = triple
        return triple

    def __iter__(self) -> Iterator[Triple]:
        decode = self._decode
        for key in self._spo:
            yield decode(key)

    def __len__(self) -> int:
        return len(self._spo)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDFGraph):
            return NotImplemented
        if len(self) != len(other):
            return False
        return self.triples() == other.triples()

    def __hash__(self) -> int:
        return hash(self.triples())

    def __repr__(self) -> str:
        return f"RDFGraph(<{len(self)} triples>)"

    # --- queries --------------------------------------------------------------
    def triples(self) -> FrozenSet[Triple]:
        """The triples as a frozen set (memoized per :attr:`version`)."""
        cached = self._triples_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        frozen = frozenset(self)
        self._triples_cache = (self._version, frozen)
        return frozen

    def domain(self) -> frozenset:
        """``dom(G)``: the ground terms appearing in any position of any
        triple — read straight off the term dictionary's occurrence counts
        (memoized per :attr:`version`)."""
        cached = self._domain_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        term_of = self._dict.term_of
        frozen = frozenset(
            term_of(term_id) for term_id, count in enumerate(self._counts) if count > 0
        )
        self._domain_cache = (self._version, frozen)
        return frozen

    def sorted_domain(self) -> Tuple[GroundTerm, ...]:
        """``dom(G)`` as a tuple sorted by string form (memoized per version).

        This is the canonical value order of the pebble game / consistency
        kernel; sharing one sorted tuple avoids one sort per invocation.
        """
        cached = self._sorted_domain_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        ordered = tuple(sorted(self.domain(), key=str))
        self._sorted_domain_cache = (self._version, ordered)
        return ordered

    def _position_ids(self, run: SortedKeyRun) -> Iterator[int]:
        """Distinct leading-field ids of one permutation run."""
        shift = 2 * self._bits
        seen = set()
        for key in run:
            seen.add(key >> shift)
        return iter(seen)

    def subjects(self) -> frozenset:
        """All subjects occurring in the graph."""
        term_of = self._dict.term_of
        return frozenset(term_of(i) for i in self._position_ids(self._spo))

    def predicates(self) -> frozenset:
        """All predicates occurring in the graph."""
        term_of = self._dict.term_of
        return frozenset(term_of(i) for i in self._position_ids(self._pos))

    def objects(self) -> frozenset:
        """All objects occurring in the graph."""
        term_of = self._dict.term_of
        return frozenset(term_of(i) for i in self._position_ids(self._osp))

    def matches(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Iterate over the ground triples matching *pattern*.

        Positions holding variables match anything; repeated variables in the
        pattern must be matched by equal terms.  One range scan over the
        permutation column whose sort order leads with the bound positions.
        """
        id_of = self._dict.id_of
        bound: List[Optional[int]] = []
        for term in pattern:
            if is_ground_term(term):
                term_id = id_of(term)
                if term_id is None:
                    return
                bound.append(term_id)
            else:
                bound.append(None)
        # Positions sharing a repeated variable must decode to equal ids.
        var_groups: Dict[Variable, List[int]] = {}
        for position, term in enumerate(pattern):
            if isinstance(term, Variable):
                var_groups.setdefault(term, []).append(position)
        groups = [positions for positions in var_groups.values() if len(positions) > 1]
        decode = self._decode
        for ids, spo_key in self._scan_ids(bound[0], bound[1], bound[2]):
            if groups and any(
                len({ids[position] for position in group}) != 1 for group in groups
            ):
                continue
            yield decode(spo_key)

    def _scan_ids(
        self, s: Optional[int], p: Optional[int], o: Optional[int]
    ) -> Iterator[Tuple[Tuple[int, int, int], int]]:
        """Yield ``((s, p, o), packed_spo_key)`` for the bound-position mask,
        as one range scan over the permutation led by the bound positions."""
        return scan_mask(self._bits, self._spo, self._pos, self._osp, s, p, o)

    def solutions(self, pattern: TriplePattern) -> Iterator[Dict[Variable, GroundTerm]]:
        """Iterate over variable bindings ``µ`` with ``µ(pattern) ∈ G``.

        This is the base case ``⟦t⟧G`` of the SPARQL semantics, yielded as
        plain dictionaries; :mod:`repro.sparql.mappings` wraps them.
        """
        for t in self.matches(pattern):
            binding: Dict[Variable, GroundTerm] = {}
            for pat_term, data_term in zip(pattern, t):
                if isinstance(pat_term, Variable):
                    binding[pat_term] = data_term
            yield binding

    # --- snapshots for target indexes ----------------------------------------
    def _snapshot(self):
        """Flushed copies of the columns + shared dictionary and decode memo.

        Consumed by :class:`~repro.hom.homomorphism.ColumnarTargetIndex`:
        the copies freeze the triple set at the current version (later graph
        mutations never leak into a built index), while the dictionary is
        shared safely because ids are never reassigned, and the decode memo
        is shared because the graph *replaces* (never mutates in place) that
        dict when the key width changes.
        """
        return (
            self._bits,
            self._spo.copy(),
            self._pos.copy(),
            self._osp.copy(),
            self._dict,
            self._decoded,
        )
