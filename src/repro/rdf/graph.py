"""An in-memory, indexed RDF graph.

:class:`RDFGraph` is a finite set of ground triples with hash indexes on
every combination of bound positions, so that matching a single triple
pattern against the graph is proportional to the number of matches rather
than the size of the graph.  This is the data substrate every evaluation
algorithm in the library runs on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from .terms import GroundTerm, IRI, Literal, Term, Variable, is_ground_term
from .triples import Triple, TriplePattern
from ..exceptions import RDFError

__all__ = ["RDFGraph"]

_Key = Tuple[Optional[Term], Optional[Term], Optional[Term]]


class RDFGraph:
    """A finite set of ground RDF triples with pattern-matching indexes.

    >>> g = RDFGraph()
    >>> _ = g.add(Triple.of("a", "p", "b"))
    >>> len(g)
    1
    >>> list(g.matches(TriplePattern.of("?x", "p", "?y")))[0].is_ground()
    True
    """

    __slots__ = (
        "_triples",
        "_by_s",
        "_by_p",
        "_by_o",
        "_by_sp",
        "_by_po",
        "_by_so",
        "_version",
        "_domain_cache",
        "_sorted_domain_cache",
        "__weakref__",
    )

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: Set[Triple] = set()
        self._by_s: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_p: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_o: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_sp: Dict[Tuple[Term, Term], Set[Triple]] = defaultdict(set)
        self._by_po: Dict[Tuple[Term, Term], Set[Triple]] = defaultdict(set)
        self._by_so: Dict[Tuple[Term, Term], Set[Triple]] = defaultdict(set)
        self._version = 0
        self._domain_cache: Optional[Tuple[int, frozenset]] = None
        self._sorted_domain_cache: Optional[Tuple[int, Tuple[GroundTerm, ...]]] = None
        for t in triples:
            self.add(t)

    # --- construction -----------------------------------------------------
    @classmethod
    def from_tuples(cls, tuples: Iterable[Tuple[object, object, object]]) -> "RDFGraph":
        """Build a graph from ``(s, p, o)`` tuples of terms or plain strings."""
        graph = cls()
        for s, p, o in tuples:
            graph.add(Triple.of(s, p, o))
        return graph

    def add(self, triple: Triple) -> "RDFGraph":
        """Add a ground triple.  Returns ``self`` for chaining."""
        if not isinstance(triple, TriplePattern):
            raise TypeError(f"expected a Triple, got {type(triple).__name__}")
        if not triple.is_ground():
            raise RDFError(f"cannot add non-ground triple {triple} to an RDF graph")
        if triple in self._triples:
            return self
        self._triples.add(triple)
        self._version += 1
        s, p, o = triple.subject, triple.predicate, triple.object
        self._by_s[s].add(triple)
        self._by_p[p].add(triple)
        self._by_o[o].add(triple)
        self._by_sp[(s, p)].add(triple)
        self._by_po[(p, o)].add(triple)
        self._by_so[(s, o)].add(triple)
        return self

    def add_all(self, triples: Iterable[Triple]) -> "RDFGraph":
        """Add every triple of *triples*."""
        for t in triples:
            self.add(t)
        return self

    def discard(self, triple: Triple) -> "RDFGraph":
        """Remove a triple if present."""
        if triple not in self._triples:
            return self
        self._triples.discard(triple)
        self._version += 1
        s, p, o = triple.subject, triple.predicate, triple.object
        self._by_s[s].discard(triple)
        self._by_p[p].discard(triple)
        self._by_o[o].discard(triple)
        self._by_sp[(s, p)].discard(triple)
        self._by_po[(p, o)].discard(triple)
        self._by_so[(s, o)].discard(triple)
        return self

    def copy(self) -> "RDFGraph":
        """A shallow copy (triples are immutable, so this is a full copy)."""
        return RDFGraph(self._triples)

    @property
    def version(self) -> int:
        """A counter incremented on every mutation (add/discard of a triple).

        Evaluation caches key their per-graph entries on this counter, so any
        mutation of the graph transparently invalidates everything cached for
        it (see :class:`repro.evaluation.cache.EvaluationCache`).
        """
        return self._version

    def __reduce__(self):
        return (RDFGraph, (tuple(self._triples),))

    def union(self, other: "RDFGraph") -> "RDFGraph":
        """A new graph containing the triples of both graphs."""
        result = self.copy()
        result.add_all(other)
        return result

    # --- container protocol -------------------------------------------------
    def __contains__(self, triple: object) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RDFGraph) and self._triples == other._triples

    def __hash__(self) -> int:
        return hash(frozenset(self._triples))

    def __repr__(self) -> str:
        return f"RDFGraph(<{len(self)} triples>)"

    # --- queries --------------------------------------------------------------
    def triples(self) -> FrozenSet[Triple]:
        """The triples as a frozen set."""
        return frozenset(self._triples)

    def domain(self) -> frozenset[GroundTerm]:
        """``dom(G)``: the ground terms appearing in any position of any triple.

        Memoized per :attr:`version` — the pebble game asks for the domain on
        every invocation, so re-scanning every triple each time would dominate
        small instances.  Any mutation transparently drops the memo.
        """
        cached = self._domain_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        result: set[GroundTerm] = set()
        for t in self._triples:
            result.update(t.constants())
        frozen = frozenset(result)
        self._domain_cache = (self._version, frozen)
        return frozen

    def sorted_domain(self) -> Tuple[GroundTerm, ...]:
        """``dom(G)`` as a tuple sorted by string form (memoized per version).

        This is the canonical value order of the pebble game / consistency
        kernel; sharing one sorted tuple avoids one sort per invocation.
        """
        cached = self._sorted_domain_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        ordered = tuple(sorted(self.domain(), key=str))
        self._sorted_domain_cache = (self._version, ordered)
        return ordered

    def subjects(self) -> frozenset[Term]:
        """All subjects occurring in the graph."""
        return frozenset(t.subject for t in self._triples)

    def predicates(self) -> frozenset[Term]:
        """All predicates occurring in the graph."""
        return frozenset(t.predicate for t in self._triples)

    def objects(self) -> frozenset[Term]:
        """All objects occurring in the graph."""
        return frozenset(t.object for t in self._triples)

    def matches(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Iterate over the ground triples matching *pattern*.

        Positions holding variables match anything; repeated variables in the
        pattern must be matched by equal terms.
        """
        s = pattern.subject if is_ground_term(pattern.subject) else None
        p = pattern.predicate if is_ground_term(pattern.predicate) else None
        o = pattern.object if is_ground_term(pattern.object) else None
        candidates = self._candidates(s, p, o)
        for t in candidates:
            if self._unifies(pattern, t):
                yield t

    def solutions(self, pattern: TriplePattern) -> Iterator[Dict[Variable, GroundTerm]]:
        """Iterate over variable bindings ``µ`` with ``µ(pattern) ∈ G``.

        This is the base case ``⟦t⟧G`` of the SPARQL semantics, yielded as
        plain dictionaries; :mod:`repro.sparql.mappings` wraps them.
        """
        for t in self.matches(pattern):
            binding: Dict[Variable, GroundTerm] = {}
            ok = True
            for pat_term, data_term in zip(pattern, t):
                if isinstance(pat_term, Variable):
                    existing = binding.get(pat_term)
                    if existing is not None and existing != data_term:
                        ok = False
                        break
                    binding[pat_term] = data_term
            if ok:
                yield binding

    # --- internals --------------------------------------------------------------
    def _candidates(self, s: Optional[Term], p: Optional[Term], o: Optional[Term]) -> Iterable[Triple]:
        """Pick the most selective index for the bound positions."""
        if s is not None and p is not None and o is not None:
            t = Triple(s, p, o)
            return (t,) if t in self._triples else ()
        if s is not None and p is not None:
            return self._by_sp.get((s, p), ())
        if p is not None and o is not None:
            return self._by_po.get((p, o), ())
        if s is not None and o is not None:
            return self._by_so.get((s, o), ())
        if s is not None:
            return self._by_s.get(s, ())
        if p is not None:
            return self._by_p.get(p, ())
        if o is not None:
            return self._by_o.get(o, ())
        return self._triples

    @staticmethod
    def _unifies(pattern: TriplePattern, data: Triple) -> bool:
        """Check that *data* matches *pattern* including repeated variables."""
        binding: Dict[Variable, Term] = {}
        for pat_term, data_term in zip(pattern, data):
            if isinstance(pat_term, Variable):
                bound = binding.get(pat_term)
                if bound is None:
                    binding[pat_term] = data_term
                elif bound != data_term:
                    return False
            elif pat_term != data_term:
                return False
        return True
