"""A small N-Triples style reader/writer.

The format accepted here is a pragmatic subset of N-Triples:

* one triple per line, terminated by an optional ``.``;
* IRIs are written ``<iri>``;
* literals are written ``"value"``, optionally followed by ``@lang`` or
  ``^^<datatype>``;
* ``#`` starts a comment; blank lines are ignored.

It exists so that examples and experiments can persist and reload the
synthetic data sets they generate; it is not a validating W3C parser.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from .graph import RDFGraph
from .terms import IRI, Literal, Term
from .triples import Triple
from ..exceptions import ParseError, RDFError

__all__ = ["parse_ntriples", "serialize_ntriples", "load_graph", "save_graph"]

_TERM_RE = re.compile(
    r"""
    \s*
    (?:
        <(?P<iri>[^>]+)>
      | "(?P<lit>(?:[^"\\]|\\.)*)"
        (?: @(?P<lang>[A-Za-z][A-Za-z0-9-]*) | \^\^<(?P<dt>[^>]+)> )?
    )
    """,
    re.VERBOSE,
)


def _unescape(value: str) -> str:
    return value.encode("utf-8").decode("unicode_escape")


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _parse_term(line: str, pos: int) -> tuple[Term, int]:
    match = _TERM_RE.match(line, pos)
    if match is None:
        raise ParseError(f"cannot parse term in line {line!r}", position=pos)
    if match.group("iri") is not None:
        return IRI(match.group("iri")), match.end()
    value = _unescape(match.group("lit"))
    lang = match.group("lang")
    dt = match.group("dt")
    if lang is not None:
        return Literal(value, language=lang), match.end()
    if dt is not None:
        return Literal(value, datatype=IRI(dt)), match.end()
    return Literal(value), match.end()


def parse_ntriples(source: Union[str, TextIO]) -> Iterator[Triple]:
    """Yield triples parsed from a string or text stream."""
    if isinstance(source, str):
        source = io.StringIO(source)
    for line_number, raw_line in enumerate(source, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            subject, pos = _parse_term(line, 0)
            predicate, pos = _parse_term(line, pos)
            obj, pos = _parse_term(line, pos)
        except ParseError as exc:
            raise ParseError(f"line {line_number}: {exc}") from exc
        rest = line[pos:].strip()
        if rest not in ("", "."):
            raise ParseError(f"line {line_number}: trailing content {rest!r}")
        yield Triple(subject, predicate, obj)


def _serialize_term(term: Term) -> str:
    if isinstance(term, IRI):
        return f"<{term.value}>"
    if isinstance(term, Literal):
        base = f'"{_escape(term.value)}"'
        if term.language is not None:
            return f"{base}@{term.language}"
        if term.datatype is not None:
            return f"{base}^^<{term.datatype.value}>"
        return base
    raise RDFError(f"cannot serialise non-ground term {term!r}")


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialise triples to an N-Triples style string (sorted for determinism)."""
    lines = sorted(
        " ".join(_serialize_term(t) for t in triple) + " ." for triple in triples
    )
    return "\n".join(lines) + ("\n" if lines else "")


def load_graph(path: Union[str, Path]) -> RDFGraph:
    """Load an RDF graph from an N-Triples style file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return RDFGraph(parse_ntriples(handle))


def save_graph(graph: RDFGraph, path: Union[str, Path]) -> None:
    """Write an RDF graph to an N-Triples style file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(serialize_ntriples(graph))
