"""Namespace helpers for building IRIs concisely.

>>> EX = Namespace("http://example.org/")
>>> EX.alice
IRI('http://example.org/alice')
>>> EX["knows"]
IRI('http://example.org/knows')
"""

from __future__ import annotations

from .terms import IRI

__all__ = ["Namespace", "EX", "RDF_NS", "RDFS_NS", "FOAF"]


class Namespace:
    """A factory of IRIs sharing a common prefix."""

    __slots__ = ("prefix",)

    def __init__(self, prefix: str) -> None:
        if not isinstance(prefix, str) or not prefix:
            raise ValueError("namespace prefix must be a non-empty string")
        object.__setattr__(self, "prefix", prefix)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Namespace instances are immutable")

    def term(self, local_name: str) -> IRI:
        """Build the IRI ``prefix + local_name``."""
        return IRI(self.prefix + local_name)

    def __getitem__(self, local_name: str) -> IRI:
        return self.term(local_name)

    def __getattr__(self, local_name: str) -> IRI:
        if local_name.startswith("_"):
            raise AttributeError(local_name)
        return self.term(local_name)

    def __contains__(self, iri: object) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self.prefix)

    def __repr__(self) -> str:
        return f"Namespace({self.prefix!r})"


#: Example namespace used throughout tests and examples.
EX = Namespace("http://example.org/")
#: The RDF vocabulary namespace.
RDF_NS = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
#: The RDFS vocabulary namespace.
RDFS_NS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
#: The FOAF vocabulary namespace (used by the social-network example).
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
