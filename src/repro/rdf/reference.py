"""The retained hash-indexed RDF graph — the differential-testing oracle.

This is the pre-columnar :class:`~repro.rdf.graph.RDFGraph` implementation
(hash indexes on every combination of bound positions), kept verbatim as
:class:`ReferenceRDFGraph` so the parity suite
(``tests/test_store_parity.py``) can pin the columnar store to the old
semantics: identical triple sets, identical ``matches``/``solutions``,
identical ``domain()``/``sorted_domain()``, identical homomorphism answer
sets, and identical :attr:`version` trajectories over arbitrary mutation
sequences.

The one deliberate deviation from the historical code: :meth:`add_all`
bumps :attr:`version` once per batch (not once per triple), mirroring the
bulk-mutation semantics the columnar store defines — the parity suite
asserts the two stores agree on the version counter after every operation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from .terms import GroundTerm, Term, Variable, is_ground_term
from .triples import Triple, TriplePattern
from ..exceptions import RDFError

__all__ = ["ReferenceRDFGraph"]


class ReferenceRDFGraph:
    """A finite set of ground RDF triples with hash pattern indexes."""

    __slots__ = (
        "_triples",
        "_by_s",
        "_by_p",
        "_by_o",
        "_by_sp",
        "_by_po",
        "_by_so",
        "_version",
        "_domain_cache",
        "_sorted_domain_cache",
        "__weakref__",
    )

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: Set[Triple] = set()
        self._by_s: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_p: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_o: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_sp: Dict[Tuple[Term, Term], Set[Triple]] = defaultdict(set)
        self._by_po: Dict[Tuple[Term, Term], Set[Triple]] = defaultdict(set)
        self._by_so: Dict[Tuple[Term, Term], Set[Triple]] = defaultdict(set)
        self._version = 0
        self._domain_cache: Optional[Tuple[int, frozenset]] = None
        self._sorted_domain_cache: Optional[Tuple[int, Tuple[GroundTerm, ...]]] = None
        if triples:
            self.add_all(triples)

    # --- construction -----------------------------------------------------
    @classmethod
    def from_tuples(
        cls, tuples: Iterable[Tuple[object, object, object]]
    ) -> "ReferenceRDFGraph":
        """Build a graph from ``(s, p, o)`` tuples of terms or plain strings."""
        return cls(Triple.of(s, p, o) for s, p, o in tuples)

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "ReferenceRDFGraph":
        """Bulk loader (API parity with the columnar store)."""
        return cls(triples)

    def _insert(self, triple: Triple) -> bool:
        """Index one triple; ``True`` when it was new (no version bump)."""
        if not isinstance(triple, TriplePattern):
            raise TypeError(f"expected a Triple, got {type(triple).__name__}")
        if not triple.is_ground():
            raise RDFError(f"cannot add non-ground triple {triple} to an RDF graph")
        if triple in self._triples:
            return False
        self._triples.add(triple)
        s, p, o = triple.subject, triple.predicate, triple.object
        self._by_s[s].add(triple)
        self._by_p[p].add(triple)
        self._by_o[o].add(triple)
        self._by_sp[(s, p)].add(triple)
        self._by_po[(p, o)].add(triple)
        self._by_so[(s, o)].add(triple)
        return True

    def add(self, triple: Triple) -> "ReferenceRDFGraph":
        """Add a ground triple.  Returns ``self`` for chaining."""
        if self._insert(triple):
            self._version += 1
        return self

    def add_all(self, triples: Iterable[Triple]) -> "ReferenceRDFGraph":
        """Add every triple of *triples* as one bulk mutation (one version
        bump when at least one triple was new — see the module docs)."""
        added = False
        for t in triples:
            added = self._insert(t) or added
        if added:
            self._version += 1
        return self

    def discard(self, triple: Triple) -> "ReferenceRDFGraph":
        """Remove a triple if present."""
        if triple not in self._triples:
            return self
        self._triples.discard(triple)
        self._version += 1
        s, p, o = triple.subject, triple.predicate, triple.object
        self._by_s[s].discard(triple)
        self._by_p[p].discard(triple)
        self._by_o[o].discard(triple)
        self._by_sp[(s, p)].discard(triple)
        self._by_po[(p, o)].discard(triple)
        self._by_so[(s, o)].discard(triple)
        return self

    def copy(self) -> "ReferenceRDFGraph":
        """A shallow copy (triples are immutable, so this is a full copy)."""
        return ReferenceRDFGraph(self._triples)

    @property
    def version(self) -> int:
        """The mutation counter (same semantics as the columnar store)."""
        return self._version

    def __reduce__(self):
        return (ReferenceRDFGraph, (tuple(self._triples),))

    def union(self, other: "ReferenceRDFGraph") -> "ReferenceRDFGraph":
        """A new graph containing the triples of both graphs."""
        result = self.copy()
        result.add_all(other)
        return result

    # --- container protocol -------------------------------------------------
    def __contains__(self, triple: object) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ReferenceRDFGraph) and self._triples == other._triples

    def __hash__(self) -> int:
        return hash(frozenset(self._triples))

    def __repr__(self) -> str:
        return f"ReferenceRDFGraph(<{len(self)} triples>)"

    # --- queries --------------------------------------------------------------
    def triples(self) -> FrozenSet[Triple]:
        """The triples as a frozen set."""
        return frozenset(self._triples)

    def domain(self) -> frozenset:
        """``dom(G)`` by scanning every triple (memoized per version)."""
        cached = self._domain_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        result: set = set()
        for t in self._triples:
            result.update(t.constants())
        frozen = frozenset(result)
        self._domain_cache = (self._version, frozen)
        return frozen

    def sorted_domain(self) -> Tuple[GroundTerm, ...]:
        """``dom(G)`` sorted by string form (memoized per version)."""
        cached = self._sorted_domain_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        ordered = tuple(sorted(self.domain(), key=str))
        self._sorted_domain_cache = (self._version, ordered)
        return ordered

    def subjects(self) -> frozenset:
        """All subjects occurring in the graph."""
        return frozenset(t.subject for t in self._triples)

    def predicates(self) -> frozenset:
        """All predicates occurring in the graph."""
        return frozenset(t.predicate for t in self._triples)

    def objects(self) -> frozenset:
        """All objects occurring in the graph."""
        return frozenset(t.object for t in self._triples)

    def matches(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Iterate over the ground triples matching *pattern*."""
        s = pattern.subject if is_ground_term(pattern.subject) else None
        p = pattern.predicate if is_ground_term(pattern.predicate) else None
        o = pattern.object if is_ground_term(pattern.object) else None
        for t in self._candidates(s, p, o):
            if self._unifies(pattern, t):
                yield t

    def solutions(self, pattern: TriplePattern) -> Iterator[Dict[Variable, GroundTerm]]:
        """Iterate over variable bindings ``µ`` with ``µ(pattern) ∈ G``."""
        for t in self.matches(pattern):
            binding: Dict[Variable, GroundTerm] = {}
            for pat_term, data_term in zip(pattern, t):
                if isinstance(pat_term, Variable):
                    binding[pat_term] = data_term
            yield binding

    # --- internals --------------------------------------------------------------
    def _candidates(
        self, s: Optional[Term], p: Optional[Term], o: Optional[Term]
    ) -> Iterable[Triple]:
        """Pick the most selective index for the bound positions."""
        if s is not None and p is not None and o is not None:
            t = Triple(s, p, o)
            return (t,) if t in self._triples else ()
        if s is not None and p is not None:
            return self._by_sp.get((s, p), ())
        if p is not None and o is not None:
            return self._by_po.get((p, o), ())
        if s is not None and o is not None:
            return self._by_so.get((s, o), ())
        if s is not None:
            return self._by_s.get(s, ())
        if p is not None:
            return self._by_p.get(p, ())
        if o is not None:
            return self._by_o.get(o, ())
        return self._triples

    @staticmethod
    def _unifies(pattern: TriplePattern, data: Triple) -> bool:
        """Check that *data* matches *pattern* including repeated variables."""
        binding: Dict[Variable, Term] = {}
        for pat_term, data_term in zip(pattern, data):
            if isinstance(pat_term, Variable):
                bound = binding.get(pat_term)
                if bound is None:
                    binding[pat_term] = data_term
                elif bound != data_term:
                    return False
            elif pat_term != data_term:
                return False
        return True
