"""RDF terms and SPARQL variables.

The paper works with a countably infinite set of IRIs ``I`` and a disjoint
countably infinite set of variables ``V``.  This module provides immutable,
hashable value objects for both, plus :class:`Literal` so that realistic RDF
data sets (which contain literals) can be represented as well.  For the
purposes of the algorithms in the paper a literal behaves exactly like an
IRI: it is a ground constant.
"""

from __future__ import annotations

import re
from typing import Union

__all__ = [
    "Term",
    "GroundTerm",
    "IRI",
    "Literal",
    "Variable",
    "is_ground_term",
    "term_sort_key",
]

_VARIABLE_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class Term:
    """Abstract base class of all RDF/SPARQL terms."""

    __slots__ = ()

    def is_variable(self) -> bool:
        """Return ``True`` when the term is a SPARQL variable."""
        return isinstance(self, Variable)

    def is_ground(self) -> bool:
        """Return ``True`` when the term is a ground constant (IRI/Literal)."""
        return not self.is_variable()


class IRI(Term):
    """An internationalised resource identifier.

    IRIs compare by value and are usable as dictionary keys.

    >>> IRI("http://example.org/alice") == IRI("http://example.org/alice")
    True
    """

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        if not isinstance(value, str):
            raise TypeError(f"IRI value must be a string, got {type(value).__name__}")
        if not value:
            raise ValueError("IRI value must be a non-empty string")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IRI instances are immutable")

    def __reduce__(self):
        # Immutable slotted classes cannot use the default pickle protocol
        # (restoring state calls the blocked __setattr__); rebuild through the
        # constructor instead.  Needed by the multiprocessing batch engine.
        return (IRI, (self.value,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("IRI", self.value))

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __str__(self) -> str:
        return f"<{self.value}>"

    def __lt__(self, other: "IRI") -> bool:
        if not isinstance(other, IRI):
            return NotImplemented
        return self.value < other.value


class Literal(Term):
    """An RDF literal with an optional datatype or language tag.

    The paper's formalisation only needs IRIs; literals are provided so that
    real-world style RDF data can be loaded.  Algorithmically a literal is
    just another ground constant.
    """

    __slots__ = ("value", "datatype", "language")

    def __init__(
        self,
        value: str,
        datatype: IRI | None = None,
        language: str | None = None,
    ) -> None:
        if not isinstance(value, str):
            raise TypeError("Literal lexical value must be a string")
        if datatype is not None and language is not None:
            raise ValueError("a literal cannot carry both a datatype and a language tag")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Literal instances are immutable")

    def __reduce__(self):
        return (Literal, (self.value, self.datatype, self.language))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and self.value == other.value
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash(("Literal", self.value, self.datatype, self.language))

    def __repr__(self) -> str:
        parts = [repr(self.value)]
        if self.datatype is not None:
            parts.append(f"datatype={self.datatype!r}")
        if self.language is not None:
            parts.append(f"language={self.language!r}")
        return f"Literal({', '.join(parts)})"

    def __str__(self) -> str:
        if self.language is not None:
            return f'"{self.value}"@{self.language}'
        if self.datatype is not None:
            return f'"{self.value}"^^{self.datatype}'
        return f'"{self.value}"'


class Variable(Term):
    """A SPARQL variable such as ``?x``.

    The leading question mark is not stored; ``Variable("x")`` and
    ``Variable("?x")`` denote the same variable.

    >>> Variable("?x") == Variable("x")
    True
    >>> str(Variable("x"))
    '?x'
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str):
            raise TypeError("variable name must be a string")
        if name.startswith("?") or name.startswith("$"):
            name = name[1:]
        if not name:
            raise ValueError("variable name must be non-empty")
        if not _VARIABLE_NAME_RE.match(name):
            raise ValueError(
                f"invalid variable name {name!r}: expected an identifier "
                "(letters, digits, underscores, not starting with a digit)"
            )
        object.__setattr__(self, "name", name)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Variable instances are immutable")

    def __reduce__(self):
        return (Variable, (self.name,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return f"?{self.name}"

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name


#: Union of ground constants usable in RDF triples.
GroundTerm = Union[IRI, Literal]


def is_ground_term(term: Term) -> bool:
    """Return ``True`` when *term* is a ground constant (IRI or Literal)."""
    return isinstance(term, (IRI, Literal))


def term_sort_key(term: Term) -> tuple[int, str]:
    """A deterministic sort key so that mixed collections of terms can be
    ordered reproducibly (variables first, then IRIs, then literals)."""
    if isinstance(term, Variable):
        return (0, term.name)
    if isinstance(term, IRI):
        return (1, term.value)
    if isinstance(term, Literal):
        return (2, str(term))
    raise TypeError(f"not a term: {term!r}")
