"""RDF triples and SPARQL triple patterns.

A *triple pattern* is a tuple in ``(I ∪ V) × (I ∪ V) × (I ∪ V)`` and an
*RDF triple* is a triple pattern without variables.  Both are represented by
:class:`TriplePattern`; :func:`triple` is a convenience constructor that
additionally checks groundness.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from .terms import IRI, GroundTerm, Term, Variable, is_ground_term, term_sort_key
from ..exceptions import RDFError

__all__ = ["TriplePattern", "Triple", "triple", "pattern", "coerce_term"]


def coerce_term(value: object) -> Term:
    """Coerce a convenience value into a :class:`Term`.

    Strings starting with ``?`` become variables, every other string becomes
    an :class:`IRI`.  Existing terms pass through unchanged.

    >>> coerce_term("?x")
    Variable('x')
    >>> coerce_term("http://example.org/p")
    IRI('http://example.org/p')
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        if value.startswith("?") or value.startswith("$"):
            return Variable(value)
        return IRI(value)
    raise TypeError(f"cannot interpret {value!r} as an RDF term")


class TriplePattern:
    """An immutable subject/predicate/object triple over ``I ∪ V``.

    >>> t = TriplePattern.of("?x", "knows", "?y")
    >>> sorted(str(v) for v in t.variables())
    ['?x', '?y']
    """

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: Term, predicate: Term, obj: Term) -> None:
        for position, term in (("subject", subject), ("predicate", predicate), ("object", obj)):
            if not isinstance(term, Term):
                raise TypeError(
                    f"{position} of a triple pattern must be a Term, got {type(term).__name__}"
                )
        super().__setattr__("subject", subject)
        super().__setattr__("predicate", predicate)
        super().__setattr__("object", obj)
        super().__setattr__("_hash", hash((subject, predicate, obj)))

    # --- construction helpers -------------------------------------------------
    @classmethod
    def of(cls, subject: object, predicate: object, object_: object) -> "TriplePattern":
        """Build a triple pattern from terms or convenience strings."""
        return cls(coerce_term(subject), coerce_term(predicate), coerce_term(object_))

    # --- immutability ---------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TriplePattern instances are immutable")

    def __reduce__(self):
        return (TriplePattern, (self.subject, self.predicate, self.object))

    # --- basic protocol -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TriplePattern)
            and self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"TriplePattern({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def __str__(self) -> str:
        return f"({self.subject} {self.predicate} {self.object})"

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __lt__(self, other: "TriplePattern") -> bool:
        if not isinstance(other, TriplePattern):
            return NotImplemented
        return tuple(term_sort_key(t) for t in self) < tuple(term_sort_key(t) for t in other)

    # --- queries ---------------------------------------------------------------
    def variables(self) -> frozenset[Variable]:
        """The set ``vars(t)`` of variables occurring in the pattern."""
        return frozenset(t for t in self if isinstance(t, Variable))

    def constants(self) -> frozenset[GroundTerm]:
        """The ground constants (IRIs and literals) occurring in the pattern."""
        return frozenset(t for t in self if is_ground_term(t))

    def is_ground(self) -> bool:
        """``True`` when the pattern contains no variables, i.e. it is an RDF triple."""
        return not any(isinstance(t, Variable) for t in self)

    # --- substitution ----------------------------------------------------------
    def substitute(self, assignment: Mapping[Variable, Term]) -> "TriplePattern":
        """Apply a partial substitution, leaving unbound variables in place.

        This is the ``h(t)`` operation of the paper for partial functions
        ``h : V → I ∪ V`` (values may be variables or constants).
        """

        def subst(term: Term) -> Term:
            if isinstance(term, Variable):
                return assignment.get(term, term)
            return term

        return TriplePattern(subst(self.subject), subst(self.predicate), subst(self.object))

    def apply(self, mapping: Mapping[Variable, Term]) -> "TriplePattern":
        """Apply a mapping ``µ`` with ``vars(t) ⊆ dom(µ)`` producing a ground triple.

        Raises :class:`RDFError` when some variable is unbound or a value is
        itself a variable, because the result would not be an RDF triple.
        """
        result = self.substitute(mapping)
        if not result.is_ground():
            missing = sorted(str(v) for v in result.variables())
            raise RDFError(
                f"mapping does not cover all variables of {self}: unbound {', '.join(missing)}"
            )
        return result

    def rename(self, renaming: Mapping[Variable, Variable]) -> "TriplePattern":
        """Rename variables according to *renaming* (a variable-to-variable map)."""
        return self.substitute(renaming)


#: In this code base an RDF triple is a ground :class:`TriplePattern`.
Triple = TriplePattern


def pattern(subject: object, predicate: object, object_: object) -> TriplePattern:
    """Shorthand for :meth:`TriplePattern.of`."""
    return TriplePattern.of(subject, predicate, object_)


def triple(subject: object, predicate: object, object_: object) -> TriplePattern:
    """Build a *ground* triple, raising :class:`RDFError` if a variable sneaks in."""
    result = TriplePattern.of(subject, predicate, object_)
    if not result.is_ground():
        raise RDFError(f"RDF triples must be ground, got {result}")
    return result


def variables_of(patterns: Iterable[TriplePattern]) -> frozenset[Variable]:
    """Union of ``vars(t)`` over a collection of triple patterns."""
    result: set[Variable] = set()
    for p in patterns:
        result.update(p.variables())
    return frozenset(result)
