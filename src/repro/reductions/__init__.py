"""The Theorem 2 hardness machinery: grids, minor maps, the Lemma 2 and
Lemma 3 constructions and the CLIQUE -> co-wdEVAL reduction."""

from .grid import (
    grid_graph,
    is_minor_map,
    minor_map_into_clique,
    minor_map_by_monomorphism,
    extend_minor_map_onto,
    find_grid_minor_map,
    MinorMap,
)
from .lemma2 import Lemma2Result, lemma2_construction, clique_number_pairs
from .lemma3 import Lemma3Witness, lemma3_witness
from .reduction import (
    ReductionInstance,
    clique_reduction,
    minimum_family_index,
    solve_clique_via_wdeval,
)

__all__ = [
    "grid_graph",
    "is_minor_map",
    "minor_map_into_clique",
    "minor_map_by_monomorphism",
    "extend_minor_map_onto",
    "find_grid_minor_map",
    "MinorMap",
    "Lemma2Result",
    "lemma2_construction",
    "clique_number_pairs",
    "Lemma3Witness",
    "lemma3_witness",
    "ReductionInstance",
    "clique_reduction",
    "minimum_family_index",
    "solve_clique_via_wdeval",
]
