"""Grids and minor maps.

The hardness proof (Theorem 2) relies on the Excluded Grid Theorem to obtain
a ``(k × K)``-grid minor inside the Gaifman graph of a wide core.  The
theorem itself is non-constructive (and the bound ``w(k)`` astronomically
large), so this module provides the piece the construction actually
consumes: a *minor map* ``γ`` from the grid onto a connected component of the
host graph.  On the benchmark families the host component is a clique, so a
minor map with singleton branch sets (i.e. a subgraph embedding) always
exists and is found by a direct construction or by subgraph monomorphism
search; :func:`extend_minor_map_onto` then absorbs the remaining vertices so
that the map is onto the component, as required by the proof of Lemma 2.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import networkx as nx
from networkx.algorithms import isomorphism

from ..exceptions import ReductionError

__all__ = [
    "grid_graph",
    "is_minor_map",
    "minor_map_into_clique",
    "minor_map_by_monomorphism",
    "extend_minor_map_onto",
    "find_grid_minor_map",
]

#: A minor map: grid vertex -> non-empty set of host vertices (branch set).
MinorMap = Dict[Tuple[int, int], FrozenSet[Hashable]]


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """The ``(rows × cols)``-grid with vertex set ``{1..rows} × {1..cols}``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    graph = nx.Graph()
    for i in range(1, rows + 1):
        for j in range(1, cols + 1):
            graph.add_node((i, j))
            if i > 1:
                graph.add_edge((i - 1, j), (i, j))
            if j > 1:
                graph.add_edge((i, j - 1), (i, j))
    return graph


def is_minor_map(minor: nx.Graph, host: nx.Graph, gamma: Dict) -> bool:
    """Check the three conditions of a minor map: branch sets are non-empty
    and connected, pairwise disjoint, and every minor edge has a host edge
    between the corresponding branch sets."""
    seen: set = set()
    for vertex in minor.nodes():
        branch = gamma.get(vertex)
        if not branch:
            return False
        if not nx.is_connected(host.subgraph(branch)):
            return False
        if seen & set(branch):
            return False
        seen.update(branch)
    for u, v in minor.edges():
        if not any(host.has_edge(a, b) for a in gamma[u] for b in gamma[v]):
            return False
    return True


def minor_map_into_clique(rows: int, cols: int, clique_vertices: List[Hashable]) -> MinorMap:
    """A minor map of the ``(rows × cols)``-grid into a clique on the given
    vertices (singleton branch sets; requires ``rows * cols`` vertices)."""
    needed = rows * cols
    if len(clique_vertices) < needed:
        raise ReductionError(
            f"clique has {len(clique_vertices)} vertices but the grid needs {needed}"
        )
    ordered = list(clique_vertices)[:needed]
    gamma: MinorMap = {}
    index = 0
    for i in range(1, rows + 1):
        for j in range(1, cols + 1):
            gamma[(i, j)] = frozenset({ordered[index]})
            index += 1
    return gamma


def minor_map_by_monomorphism(minor: nx.Graph, host: nx.Graph) -> Optional[MinorMap]:
    """A minor map with singleton branch sets obtained from a subgraph
    monomorphism of *minor* into *host* (None when no monomorphism exists)."""
    matcher = isomorphism.GraphMatcher(host, minor)
    for mapping in matcher.subgraph_monomorphisms_iter():
        inverse = {minor_vertex: host_vertex for host_vertex, minor_vertex in mapping.items()}
        return {vertex: frozenset({inverse[vertex]}) for vertex in minor.nodes()}
    return None


def extend_minor_map_onto(gamma: MinorMap, host: nx.Graph) -> MinorMap:
    """Extend a minor map so that the branch sets cover the whole connected
    component they live in (the "onto" requirement of Lemma 2's proof).

    Unassigned vertices of the component are absorbed, breadth-first, into an
    adjacent branch set; this keeps every branch set connected.
    """
    assigned: Dict[Hashable, Tuple[int, int]] = {}
    for grid_vertex, branch in gamma.items():
        for host_vertex in branch:
            assigned[host_vertex] = grid_vertex
    component: set = set()
    for host_vertex in assigned:
        component.update(nx.node_connected_component(host, host_vertex))
    result = {vertex: set(branch) for vertex, branch in gamma.items()}
    remaining = set(component) - set(assigned)
    progress = True
    while remaining and progress:
        progress = False
        for host_vertex in sorted(remaining, key=str):
            for neighbour in host.neighbors(host_vertex):
                if neighbour in assigned:
                    owner = assigned[neighbour]
                    result[owner].add(host_vertex)
                    assigned[host_vertex] = owner
                    remaining.discard(host_vertex)
                    progress = True
                    break
    if remaining:
        raise ReductionError("could not extend the minor map onto its component")
    return {vertex: frozenset(branch) for vertex, branch in result.items()}


def find_grid_minor_map(rows: int, cols: int, host: nx.Graph) -> MinorMap:
    """Find a minor map of the ``(rows × cols)``-grid onto a connected
    component of *host*.

    Strategy: try each connected component (largest first); inside a
    component, if it is a clique use the direct construction, otherwise
    search for a subgraph monomorphism of the grid.  Raises
    :class:`ReductionError` when no map is found — in the paper's setting the
    Excluded Grid Theorem guarantees existence once the treewidth is large
    enough, but this implementation only searches for embeddings it can find
    efficiently.
    """
    grid = grid_graph(rows, cols)
    components = sorted(nx.connected_components(host), key=len, reverse=True)
    for component in components:
        subgraph = host.subgraph(component)
        n = subgraph.number_of_nodes()
        if n < rows * cols:
            continue
        is_clique = subgraph.number_of_edges() == n * (n - 1) // 2
        if is_clique:
            gamma = minor_map_into_clique(rows, cols, sorted(component, key=str))
        else:
            gamma = minor_map_by_monomorphism(grid, subgraph)
            if gamma is None:
                continue
        return extend_minor_map_onto(gamma, host.subgraph(component))
    raise ReductionError(
        f"no ({rows}x{cols})-grid minor map found in any connected component of the host graph"
    )
