"""The construction of Lemma 2: from a wide generalised t-graph and a CLIQUE
instance to a generalised t-graph ``(B, X)``.

Given ``k ≥ 2``, an undirected graph ``H`` and a generalised t-graph
``(S, X)`` whose core's Gaifman graph admits a ``(k × K)``-grid minor map
(``K = C(k, 2)``), the construction produces ``(B, X)`` with:

1. every triple of ``S`` over ``X`` only is kept in ``B``;
2. ``(B, X) → (S, X)``;
3. ``H`` contains a k-clique iff ``(S, X) → (B, X)``;
4. the construction runs in fpt time.

This is the engine of the Theorem 2 hardness proof; it is Grohe's
construction adapted to distinguished variables exactly as in the paper's
appendix.  The Excluded Grid Theorem only guarantees *existence* of the grid
minor; here the caller supplies (or :mod:`repro.reductions.grid` finds) the
actual minor map, which exists by construction on the benchmark families.

Implementation note: the paper's ``Tr'`` refines triples *per occurrence* of
a variable; this implementation refines *per variable* (both occurrences of
the same core variable in one triple receive the same new variable).  The
resulting ``B`` is a subset of the paper's and still satisfies conditions
(1)-(4): the forward direction of condition (3) uses exactly a per-variable
refinement, and the backward direction only shrinks when ``B`` does.  The
tests verify all conditions explicitly on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from .grid import MinorMap, find_grid_minor_map
from ..hom.core import core_of
from ..hom.gaifman import gaifman_graph
from ..hom.tgraph import GeneralizedTGraph, TGraph
from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern
from ..exceptions import ReductionError

__all__ = ["Lemma2Result", "lemma2_construction", "clique_number_pairs"]


def clique_number_pairs(k: int) -> List[Tuple[int, int]]:
    """The fixed bijection ``ρ`` between ``{1, ..., K}`` and the unordered
    pairs of ``{1, ..., k}`` (as a list indexed by ``p - 1``)."""
    return list(combinations(range(1, k + 1), 2))


def _encode(value: object) -> str:
    """Encode an arbitrary hashable (graph vertex, variable name, ...) into an
    identifier-safe fragment."""
    text = str(value)
    return "".join(ch if ch.isalnum() else "_" for ch in text)


@dataclass(frozen=True)
class Lemma2Result:
    """The output of the Lemma 2 construction.

    Attributes
    ----------
    b:
        The generalised t-graph ``(B, X)``.
    core:
        The core ``(C, X)`` of the input.
    minor_map:
        The grid minor map ``γ`` that was used.
    projection:
        The mapping ``Π`` from the new variables to the core variables they
        refine (used in tests to check ``(B, X) → (S, X)`` constructively).
    """

    b: GeneralizedTGraph
    core: GeneralizedTGraph
    minor_map: MinorMap
    projection: Dict[Variable, Variable]


def lemma2_construction(
    gtgraph: GeneralizedTGraph,
    host_graph: nx.Graph,
    k: int,
    minor_map: Optional[MinorMap] = None,
) -> Lemma2Result:
    """Build ``(B, X)`` from ``(S, X)``, the CLIQUE instance ``(H, k)`` and a
    ``(k × K)``-grid minor map of the core's Gaifman graph.

    When *minor_map* is ``None`` one is searched with
    :func:`repro.reductions.grid.find_grid_minor_map`.
    """
    if k < 2:
        raise ReductionError("the reduction requires clique size k >= 2")
    if host_graph.number_of_nodes() == 0:
        raise ReductionError("the host graph must be non-empty")

    pairs = clique_number_pairs(k)
    K = len(pairs)

    core = core_of(gtgraph)
    X = core.distinguished
    gaifman = gaifman_graph(core)
    if minor_map is None:
        minor_map = find_grid_minor_map(k, K, gaifman)

    # Vertices of the component F1 covered by the (onto) minor map.
    f1_vertices: set[Variable] = set()
    cell_of: Dict[Variable, Tuple[int, int]] = {}
    for (i, p), branch in minor_map.items():
        for vertex in branch:
            if not isinstance(vertex, Variable):
                raise ReductionError("the minor map must live on the Gaifman graph's variables")
            f1_vertices.add(vertex)
            cell_of[vertex] = (i, p)

    edges = [tuple(sorted(edge, key=str)) for edge in host_graph.edges()]
    vertices = sorted(host_graph.nodes(), key=str)
    if not edges:
        # Without edges H cannot contain a clique of size k >= 2; the
        # construction would produce an empty replacement set for some cells.
        raise ReductionError("the host graph must contain at least one edge")

    # The new variable set V: ?(v, e, i, p, ?a) with (v ∈ e <=> i ∈ ρ(p)).
    def new_variable(v: Hashable, e: Tuple[Hashable, Hashable], i: int, p: int, a: Variable) -> Variable:
        return Variable(
            f"b_{_encode(v)}__{_encode(e[0])}_{_encode(e[1])}__{i}_{p}__{a.name}"
        )

    replacements: Dict[Variable, List[Tuple[Variable, Hashable, Tuple[Hashable, Hashable], int, int]]] = {}
    projection: Dict[Variable, Variable] = {}
    for a in sorted(f1_vertices, key=lambda v: v.name):
        i, p = cell_of[a]
        members = set(pairs[p - 1])
        options: List[Tuple[Variable, Hashable, Tuple[Hashable, Hashable], int, int]] = []
        for e in edges:
            for v in vertices:
                belongs = v in e
                if belongs != (i in members):
                    continue
                var = new_variable(v, e, i, p, a)
                options.append((var, v, e, i, p))
                projection[var] = a
        if not options:
            raise ReductionError(
                f"no admissible (vertex, edge) pair for grid cell ({i}, {p}); "
                "the host graph is too small for the construction"
            )
        replacements[a] = options

    # Metadata for the consistency conditions (†).
    vertex_of: Dict[Variable, Hashable] = {}
    edge_of: Dict[Variable, Tuple[Hashable, Hashable]] = {}
    row_of: Dict[Variable, int] = {}
    col_of: Dict[Variable, int] = {}
    for options in replacements.values():
        for var, v, e, i, p in options:
            vertex_of[var] = v
            edge_of[var] = e
            row_of[var] = i
            col_of[var] = p

    def consistent(selected: List[Variable]) -> bool:
        for left, right in combinations(selected, 2):
            if row_of[left] == row_of[right] and vertex_of[left] != vertex_of[right]:
                return False
            if col_of[left] == col_of[right] and edge_of[left] != edge_of[right]:
                return False
        return True

    # Build Tr' and Tr0.
    b_triples: set[TriplePattern] = set()
    for triple in core.triples():
        non_distinguished = [v for v in triple.variables() if v not in X]
        if not set(non_distinguished) <= f1_vertices:
            # Tr0: the triple is kept verbatim.
            b_triples.add(triple)
            continue
        if not non_distinguished:
            # vars(t) ⊆ X: kept verbatim (this realises condition (1)).
            b_triples.add(triple)
            continue
        distinct = sorted(set(non_distinguished), key=lambda v: v.name)
        # Every way of refining each variable occurrence, subject to (†).
        def expand(index: int, substitution: Dict[Variable, Variable]) -> None:
            if index == len(distinct):
                selected = list(substitution.values())
                if consistent(selected):
                    b_triples.add(triple.substitute(substitution))
                return
            a = distinct[index]
            for var, _v, _e, _i, _p in replacements[a]:
                substitution[a] = var
                expand(index + 1, substitution)
            del substitution[a]

        expand(0, {})

    b = GeneralizedTGraph(TGraph(b_triples), X & TGraph(b_triples).variables())
    if X - b.distinguished:
        raise ReductionError(
            "some distinguished variables disappeared from B; the construction "
            "requires every X variable of the core to survive"
        )
    return Lemma2Result(b=b, core=core, minor_map=minor_map, projection=projection)
