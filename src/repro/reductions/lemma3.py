"""Lemma 3: extracting a wide, homomorphism-minimal witness from a wdPF.

For a wdPF ``F`` with ``dw(F) ≥ k``, Lemma 3 produces a subtree ``T`` and a
generalised t-graph ``(S, vars(T)) ∈ GtG(T)`` such that

1. ``ctw(S, vars(T)) ≥ k``, and
2. ``(S', vars(T)) → (S, vars(T))`` implies ``(S, vars(T)) → (S', vars(T))``
   for every ``(S', vars(T)) ∈ GtG(T)`` (minimality under homomorphism).

The witness is the generalised t-graph the Lemma 2 construction is applied
to inside the fpt-reduction of Theorem 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import networkx as nx

from ..hom.homomorphism import maps_to
from ..hom.tgraph import GeneralizedTGraph
from ..hom.treewidth import ctw
from ..patterns.forest import WDPatternForest
from ..patterns.gtg import gtg
from ..patterns.tree import Subtree
from ..exceptions import ReductionError

__all__ = ["Lemma3Witness", "lemma3_witness"]


@dataclass(frozen=True)
class Lemma3Witness:
    """The witness produced by Lemma 3."""

    tree_index: int
    subtree: Subtree
    gtgraph: GeneralizedTGraph
    width: int

    def describe(self) -> str:
        """One-line summary used by the experiment harness."""
        return (
            f"tree {self.tree_index}, subtree nodes {sorted(self.subtree.nodes)}, "
            f"ctw = {self.width}"
        )


def lemma3_witness(forest: WDPatternForest, k: int) -> Lemma3Witness:
    """Find a subtree and a generalised t-graph satisfying Lemma 3 for the
    given width threshold ``k`` (requires ``dw(F) ≥ k``).

    Follows the proof: pick a subtree whose ``GtG`` is not ``(k−1)``-dominated,
    collect the members of ``GtG`` of core treewidth ≥ k that are not
    dominated by any low-width member, and return an element of a minimal
    strongly connected component of the homomorphism digraph on that set.
    """
    if k < 1:
        raise ReductionError("the width threshold k must be at least 1")
    for tree_index, subtree in forest.subtrees():
        collection = list(gtg(forest, subtree))
        if not collection:
            continue
        widths = {member: ctw(member) for member in collection}
        low = [member for member in collection if widths[member] <= k - 1]
        candidates: List[GeneralizedTGraph] = []
        for member in collection:
            if widths[member] < k:
                continue
            if any(maps_to(low_member, member) for low_member in low):
                continue
            candidates.append(member)
        if not candidates:
            continue
        # Build the homomorphism digraph on the candidate set and pick an
        # element of a minimal (source-free w.r.t. condensation) SCC.
        digraph = nx.DiGraph()
        digraph.add_nodes_from(range(len(candidates)))
        for i, source in enumerate(candidates):
            for j, target in enumerate(candidates):
                if i != j and maps_to(source, target):
                    digraph.add_edge(i, j)
        condensation = nx.condensation(digraph)
        # A minimal SCC is one with no incoming edges in the condensation:
        # anything that maps into it already lies inside it, which is exactly
        # the minimality property Lemma 3 needs.
        for scc_node in condensation.nodes():
            if condensation.in_degree(scc_node) == 0:
                member_index = sorted(condensation.nodes[scc_node]["members"])[0]
                witness = candidates[member_index]
                return Lemma3Witness(
                    tree_index=tree_index,
                    subtree=subtree,
                    gtgraph=witness,
                    width=widths[witness],
                )
    raise ReductionError(
        f"no Lemma 3 witness of core treewidth >= {k} found; is dw(F) >= {k}?"
    )
