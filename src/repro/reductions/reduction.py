"""The fpt-reduction from p-CLIQUE to p-co-wdEVAL (Theorem 2).

Given a CLIQUE instance ``(H, k)`` and a wdPF ``F`` of sufficiently large
domination width, the reduction

1. extracts a Lemma 3 witness ``(S, vars(T)) ∈ GtG(T)`` of large core
   treewidth;
2. applies the Lemma 2 construction to obtain ``(B, vars(T))``;
3. freezes ``B`` into an RDF graph ``G`` and takes ``µ`` to be the freezing
   of the distinguished variables;

and guarantees that ``H`` contains a k-clique **iff** ``µ ∉ ⟦F⟧G``.

:func:`solve_clique_via_wdeval` packages the reduction into an actual CLIQUE
decision procedure (using a query from the unbounded-width family
``Q_m`` of :mod:`repro.workloads.families` as the class member), which the
tests validate against brute force and the benchmarks time as k grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Callable, Optional

import networkx as nx

from .lemma2 import Lemma2Result, lemma2_construction
from .lemma3 import Lemma3Witness, lemma3_witness
from ..evaluation.wdeval import forest_contains
from ..hom.tgraph import freeze_tgraph
from ..patterns.forest import WDPatternForest
from ..rdf.graph import RDFGraph
from ..rdf.terms import Variable
from ..sparql.mappings import Mapping
from ..workloads.families import hard_clique_tree
from ..exceptions import ReductionError

__all__ = ["ReductionInstance", "clique_reduction", "minimum_family_index", "solve_clique_via_wdeval"]


@dataclass(frozen=True)
class ReductionInstance:
    """The co-wdEVAL instance ``(F, G, µ)`` produced by the reduction,
    together with the intermediate artefacts (for inspection and testing)."""

    forest: WDPatternForest
    graph: RDFGraph
    mapping: Mapping
    witness: Lemma3Witness
    lemma2: Lemma2Result

    def co_wdeval_answer(self, contains: Optional[Callable[..., bool]] = None) -> bool:
        """Evaluate the instance: ``True`` iff ``µ ∉ ⟦F⟧G`` (which, by the
        correctness of the reduction, holds iff ``H`` has a k-clique)."""
        contains = contains or forest_contains
        return not contains(self.forest, self.graph, self.mapping)


def clique_reduction(
    forest: WDPatternForest,
    host_graph: nx.Graph,
    k: int,
    witness: Optional[Lemma3Witness] = None,
) -> ReductionInstance:
    """Build the co-wdEVAL instance for the CLIQUE instance ``(H, k)``.

    The forest plays the role of the class member ``P ∈ C`` found by
    enumerating the class; its Lemma 3 witness must have core treewidth large
    enough to host a ``(k × C(k,2))``-grid minor (on the benchmark families
    the witness's Gaifman core is a clique, so this means at least
    ``k·C(k,2)`` clique vertices).
    """
    if witness is None:
        # The (k x C(k,2))-grid has treewidth min(k, C(k,2)); ask Lemma 3 for a
        # witness at least that wide so that the grid has a chance to embed.
        grid_treewidth = max(1, min(k, comb(k, 2)))
        witness = lemma3_witness(forest, k=grid_treewidth)
    lemma2 = lemma2_construction(witness.gtgraph, host_graph, k)
    graph, freezing = freeze_tgraph(lemma2.b.tgraph)
    mu = Mapping({var: freezing[var] for var in witness.gtgraph.distinguished})
    return ReductionInstance(
        forest=forest, graph=graph, mapping=mu, witness=witness, lemma2=lemma2
    )


def minimum_family_index(k: int) -> int:
    """The smallest index ``m`` such that ``Q_m`` (whose witness core Gaifman
    graph is the clique ``K_m``) can host the ``(k × C(k,2))``-grid needed to
    reduce k-CLIQUE: ``m = max(2, k · C(k, 2))``."""
    return max(2, k * comb(k, 2))


def solve_clique_via_wdeval(
    host_graph: nx.Graph,
    k: int,
    family: Callable[[int], "object"] = hard_clique_tree,
    family_index: Optional[int] = None,
    contains: Optional[Callable[..., bool]] = None,
) -> bool:
    """Decide whether ``host_graph`` has a k-clique by running the Theorem 2
    reduction and evaluating the resulting co-wdEVAL instance.

    ``family`` maps an index to a wdPT of the unbounded-width class (the
    default is the ``Q_m`` family); ``family_index`` defaults to
    :func:`minimum_family_index`.
    """
    if k < 2:
        return host_graph.number_of_nodes() >= k
    if host_graph.number_of_edges() == 0:
        # No edges, no clique of size >= 2 — and the Lemma 2 construction
        # needs at least one edge to populate its replacement variables.
        return False
    index = family_index if family_index is not None else minimum_family_index(k)
    tree = family(index)
    forest = WDPatternForest([tree])
    instance = clique_reduction(forest, host_graph, k)
    return instance.co_wdeval_answer(contains)
