"""A long-lived concurrent query service over one shared warm session.

The server-shaped front end of the library (the ROADMAP's "heavy traffic"
layer): :class:`QueryService` answers membership / enumeration / explain /
update requests on a thread pool over one shared
:class:`~repro.evaluation.session.Session`, with a reader/writer
:class:`~repro.service.gate.ReadWriteGate` pinning every response to one
``RDFGraph.version``, typed admission control, per-request deadlines and
rich introspection.  :class:`ServiceServer` / :class:`ServiceClient` speak
the line-delimited JSON socket protocol (``repro serve``); see
``docs/service.md`` for the full protocol and semantics.
"""

from .core import (
    DEFAULT_GRAPH,
    OPERATIONS,
    PendingResponse,
    QueryService,
    Request,
    Response,
    ServiceStats,
)
from .gate import ReadWriteGate
from .server import ServiceServer
from .client import ServiceClient

__all__ = [
    "DEFAULT_GRAPH",
    "OPERATIONS",
    "PendingResponse",
    "QueryService",
    "ReadWriteGate",
    "Request",
    "Response",
    "ServiceClient",
    "ServiceServer",
    "ServiceStats",
]
