"""A small blocking client for the query-service socket protocol.

:class:`ServiceClient` wraps one TCP connection to a
:class:`~repro.service.server.ServiceServer` and offers the same verbs as
the in-process :class:`~repro.service.core.QueryService`: ``check``,
``solutions`` (chunk lines are reassembled transparently), ``explain``,
``update`` and ``stats``.  Error responses re-raise as their library
exception types (resolved by ``error_type`` name against
:mod:`repro.exceptions`), so remote and in-process callers handle
failures identically — an overloaded server raises
:class:`~repro.exceptions.ServiceOverloadedError` either way.

This is also the building block of the load harness
(``benchmarks/bench_service_load.py``): one client per closed-loop worker.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional, Sequence, Union

from .. import exceptions as _exceptions
from ..exceptions import ProtocolError, ReproError, ServiceError
from .protocol import decode_line, encode_line

__all__ = ["ServiceClient"]


def _raise_wire_error(line: dict) -> None:
    kind = getattr(_exceptions, str(line.get("error_type")), None)
    if not (isinstance(kind, type) and issubclass(kind, ReproError)):
        kind = ServiceError
    raise kind(line.get("error") or "service request failed")


class ServiceClient:
    """One blocking connection speaking the line-delimited JSON protocol."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._next_id = 0

    # --- plumbing ----------------------------------------------------------
    def request(self, message: dict) -> dict:
        """Send one raw request object; return the final response line.

        ``solutions`` chunk lines are accumulated into a ``solutions`` list
        on the returned final line.  Error responses raise their library
        exception type.
        """
        self._next_id += 1
        message = dict(message)
        message.setdefault("id", self._next_id)
        self._socket.sendall(encode_line(message))
        solutions: List[Dict[str, str]] = []
        while True:
            raw = self._reader.readline()
            if not raw:
                raise ServiceError("connection closed by the service mid-response")
            line = decode_line(raw)
            if "chunk" in line:
                chunk = line["chunk"]
                if not isinstance(chunk, list):
                    raise ProtocolError("'chunk' lines must carry an array")
                solutions.extend(chunk)
                continue
            if not line.get("ok"):
                _raise_wire_error(line)
            if line.get("op") == "solutions":
                line["solutions"] = solutions
            return line

    # --- verbs -------------------------------------------------------------
    def check(
        self,
        query: str,
        bindings: Union[Dict[str, str], Sequence[Dict[str, str]]],
        graph: Optional[str] = None,
        method: str = "auto",
        deadline: Optional[float] = None,
    ) -> Union[bool, List[bool]]:
        """Membership verdicts; a single binding dict returns one bool."""
        single = isinstance(bindings, dict)
        batch = [bindings] if single else list(bindings)
        message: dict = {"op": "check", "query": query, "bindings": batch, "method": method}
        if graph is not None:
            message["graph"] = graph
        if deadline is not None:
            message["deadline"] = deadline
        verdicts = self.request(message)["result"]
        return verdicts[0] if single else verdicts

    def solutions(
        self,
        query: str,
        graph: Optional[str] = None,
        method: str = "auto",
        deadline: Optional[float] = None,
        chunk_size: Optional[int] = None,
    ) -> List[Dict[str, str]]:
        """The full answer set as a list of ``{variable: term}`` objects."""
        message: dict = {"op": "solutions", "query": query, "method": method}
        if graph is not None:
            message["graph"] = graph
        if deadline is not None:
            message["deadline"] = deadline
        if chunk_size is not None:
            message["chunk_size"] = chunk_size
        return self.request(message)["solutions"]

    def explain(self, query: str, graph: Optional[str] = None, method: str = "auto") -> str:
        message: dict = {"op": "explain", "query": query, "method": method}
        if graph is not None:
            message["graph"] = graph
        return self.request(message)["result"]

    def update(
        self,
        graph: Optional[str] = None,
        add: Sequence[Sequence[str]] = (),
        remove: Sequence[Sequence[str]] = (),
        deadline: Optional[float] = None,
    ) -> dict:
        """Apply a mutation batch; returns ``{added, removed, version}``."""
        message: dict = {"op": "update", "add": [list(t) for t in add], "remove": [list(t) for t in remove]}
        if graph is not None:
            message["graph"] = graph
        if deadline is not None:
            message["deadline"] = deadline
        return self.request(message)["result"]

    def stats(self) -> dict:
        """The service introspection snapshot (the ``/stats``-style call)."""
        return self.request({"op": "stats"})["result"]

    # --- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
