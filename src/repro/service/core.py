"""A long-lived concurrent query service over one shared warm Session.

:class:`QueryService` is the server-shaped front end the ROADMAP's "heavy
traffic" north star asks for: where :class:`~repro.evaluation.session.Session`
is a library object driven by one caller, the service is a **thread pool**
(stdlib only) answering many concurrent clients through one shared session —
so every request benefits from every previous request's memoized
homomorphism tests, kernels, target indexes and recorded answer lists.

The moving parts:

* **operations** — ``check`` (membership, one or many candidate mappings),
  ``solutions`` (full enumeration; the socket layer streams it in chunks),
  ``explain`` (the plan the planner resolves for the query against the live
  graph), ``update`` (online graph mutation: remove-then-add batches) and
  ``stats`` (the introspection snapshot);
* **consistency** — a :class:`~repro.service.gate.ReadWriteGate` serializes
  updates against in-flight queries: queries hold the gate shared, updates
  hold it exclusively, so every response is pinned to exactly one
  ``RDFGraph.version`` (reported on the response) and the session cache's
  version-keyed invalidation stays sound under threads;
* **admission control** — a bounded backlog (``max_pending``) in front of
  ``max_inflight`` worker threads; when the backlog is full, `submit`
  raises a typed :class:`~repro.exceptions.ServiceOverloadedError`
  *immediately* instead of queueing forever, so overload degrades into
  fast rejections rather than unbounded latency;
* **deadlines** — a per-request :class:`~repro.evaluation.budget.Budget` is
  created at admission, so queue wait, gate wait and evaluation all count
  against the same allowance; violations come back as typed
  ``DeadlineExceeded`` error responses, never hung clients;
* **introspection** — per-operation latency percentiles, rejection /
  deadline / error counters, cache and resilience counters of the
  underlying session, all in :meth:`QueryService.stats` (the ``stats`` op
  and ``repro serve``'s ``/stats``-style call).

Every failure mode resolves the client's :class:`PendingResponse` with a
typed error response — a submitted request **always** receives exactly one
response, including during shutdown (drained requests answer with
``ServiceClosedError``).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from time import monotonic
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union, cast

from ..evaluation.budget import Budget
from ..evaluation.session import Session
from ..rdf.graph import RDFGraph
from ..rdf.triples import Triple
from ..sparql.algebra import GraphPattern
from ..sparql.mappings import Mapping
from ..sparql.parser import parse_pattern
from .. import exceptions as _exceptions
from ..exceptions import (
    DeadlineExceeded,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from .gate import ReadWriteGate

__all__ = [
    "DEFAULT_GRAPH",
    "OPERATIONS",
    "PendingResponse",
    "QueryService",
    "Request",
    "Response",
    "ServiceStats",
]

#: The implicit graph name when a service is built over a single graph.
DEFAULT_GRAPH = "default"

#: The operations the service understands (also the protocol's ``op`` field).
OPERATIONS = ("check", "solutions", "explain", "update", "stats")


@dataclass
class Request:
    """One service request (the in-process face of a protocol message).

    ``mappings`` carries the candidate mappings of a ``check``; ``add`` /
    ``remove`` the triple batches of an ``update`` (removes are applied
    first, then adds, under one exclusive gate section).  ``deadline`` is
    the per-request wall-clock allowance in seconds (the service default
    applies when ``None``).
    """

    op: str
    query: Optional[str] = None
    graph: str = DEFAULT_GRAPH
    mappings: Sequence[Mapping] = ()
    method: str = "auto"
    width: Optional[int] = None
    deadline: Optional[float] = None
    add: Sequence[Triple] = ()
    remove: Sequence[Triple] = ()


@dataclass
class Response:
    """One service response; exactly one per submitted request.

    ``graph_version`` pins query responses to the ``RDFGraph.version`` the
    evaluation observed (the gate guarantees it did not move mid-request)
    and update responses to the version the mutation produced.  ``elapsed``
    is the client-visible latency in seconds — admission to completion,
    queue wait included.
    """

    op: str
    ok: bool
    result: object = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    graph_version: Optional[int] = None
    elapsed: float = 0.0
    request_id: int = -1

    def raise_for_error(self) -> "Response":
        """Re-raise a typed error response as its library exception.

        The ``error_type`` name resolves into the :class:`ReproError`
        taxonomy (:mod:`repro.exceptions`); unknown names fall back to
        :class:`ServiceError`.  Returns ``self`` when ``ok``.
        """
        if self.ok:
            return self
        kind = getattr(_exceptions, self.error_type or "", None)
        if not (isinstance(kind, type) and issubclass(kind, ReproError)):
            kind = ServiceError
        raise kind(self.error or "service request failed")


class PendingResponse:
    """The client's handle on a submitted request (a tiny future).

    The service resolves every pending exactly once — success, typed
    error, deadline, or shutdown drain — so :meth:`result` never hangs on
    a live service.
    """

    def __init__(self, request: Request, budget: Optional[Budget], position: int) -> None:
        self.request = request
        self.budget = budget
        #: The service-assigned submission sequence number (what a
        #: :class:`~repro.evaluation.faults.FaultPlan` targets).
        self.position = position
        self.submitted_at = monotonic()
        self._event = threading.Event()
        self._response: Optional[Response] = None

    def done(self) -> bool:
        """Whether the response has arrived."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Response:
        """Block for the response (*timeout* in seconds; ``None`` = forever)."""
        if not self._event.wait(timeout):
            raise ServiceError(
                f"no response to {self.request.op!r} request #{self.position} "
                f"within {timeout}s"
            )
        assert self._response is not None
        return self._response

    def _resolve(self, response: Response) -> None:
        if self._response is None:
            self._response = response
            self._event.set()


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(fraction * len(sorted_values))))
    return sorted_values[rank]


class ServiceStats:
    """Aggregate counters and latency samples of one :class:`QueryService`.

    All methods are thread-safe; :meth:`snapshot` is what the ``stats``
    operation returns.  Latency samples are bounded per operation (oldest
    dropped first), so a long-lived service's stats stay O(1) in memory.
    """

    def __init__(self, max_latency_samples: int = 4096) -> None:
        self._lock = threading.Lock()
        self._max_samples = max_latency_samples  # immutable after init
        self._started_at = monotonic()  # immutable after init
        self.admitted: Dict[str, int] = {}  # guarded-by: _lock
        self.completed = 0  # guarded-by: _lock
        self.ok = 0  # guarded-by: _lock
        self.errors = 0  # guarded-by: _lock
        self.rejected_overload = 0  # guarded-by: _lock
        self.deadline_trips = 0  # guarded-by: _lock
        self.updates_applied = 0  # guarded-by: _lock
        self.triples_added = 0  # guarded-by: _lock
        self.triples_removed = 0  # guarded-by: _lock
        self.error_types: Dict[str, int] = {}  # guarded-by: _lock
        self._latencies: Dict[str, List[float]] = {}  # guarded-by: _lock
        self.peak_inflight = 0  # guarded-by: _lock

    # --- recording ---------------------------------------------------------
    def note_admitted(self, op: str) -> None:
        with self._lock:
            self.admitted[op] = self.admitted.get(op, 0) + 1

    def note_rejected(self) -> None:
        with self._lock:
            self.rejected_overload += 1

    def note_inflight(self, inflight: int) -> None:
        with self._lock:
            if inflight > self.peak_inflight:
                self.peak_inflight = inflight

    def note_completed(self, response: Response) -> None:
        with self._lock:
            self.completed += 1
            if response.ok:
                self.ok += 1
            else:
                self.errors += 1
                kind = response.error_type or "unknown"
                self.error_types[kind] = self.error_types.get(kind, 0) + 1
                if response.error_type == "DeadlineExceeded":
                    self.deadline_trips += 1
            samples = self._latencies.setdefault(response.op, [])
            samples.append(response.elapsed)
            if len(samples) > self._max_samples:
                del samples[: len(samples) - self._max_samples]

    def note_update(self, added: int, removed: int) -> None:
        with self._lock:
            self.updates_applied += 1
            self.triples_added += added
            self.triples_removed += removed

    # --- reporting ---------------------------------------------------------
    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-operation (and overall) p50/p95/p99 latency in milliseconds."""
        with self._lock:
            samples = {op: list(values) for op, values in self._latencies.items()}
        samples["all"] = [value for values in samples.values() for value in values]
        summary: Dict[str, Dict[str, float]] = {}
        for op, values in samples.items():
            values.sort()
            summary[op] = {
                "count": len(values),
                "p50_ms": _percentile(values, 0.50) * 1000.0,
                "p95_ms": _percentile(values, 0.95) * 1000.0,
                "p99_ms": _percentile(values, 0.99) * 1000.0,
            }
        return summary

    def snapshot(self) -> dict:
        with self._lock:
            base = {
                "uptime_s": monotonic() - self._started_at,
                "admitted": dict(self.admitted),
                "completed": self.completed,
                "ok": self.ok,
                "errors": self.errors,
                "error_types": dict(self.error_types),
                "rejected_overload": self.rejected_overload,
                "deadline_trips": self.deadline_trips,
                "updates_applied": self.updates_applied,
                "triples_added": self.triples_added,
                "triples_removed": self.triples_removed,
                "peak_inflight": self.peak_inflight,
            }
        base["latency"] = self.latency_summary()
        return base


#: Internal queue sentinel telling one worker thread to exit.
class _Stop:
    pass


_STOP = _Stop()


class QueryService:
    """A thread-pool query server over one shared warm session (module docs).

    Parameters
    ----------
    graphs:
        The data being served: a single :class:`~repro.rdf.graph.RDFGraph`
        (registered under ``"default"``) or a ``{name: graph}`` mapping.
    session:
        The shared :class:`~repro.evaluation.session.Session`; a fresh one
        is created when omitted.  Long-lived services should bound it
        (``Session(max_entries_per_graph=..., max_engines=...)``).
    max_inflight:
        Worker threads — the number of requests evaluating concurrently.
    max_pending:
        Backlog bound: admitted-but-not-started requests beyond this are
        rejected with :class:`~repro.exceptions.ServiceOverloadedError`.
    default_deadline:
        Per-request wall-clock allowance in seconds applied when a request
        carries none (``None`` = unbounded).
    chunk_size:
        How many solutions the socket layer bundles per streamed chunk
        line (protocol requests may override per call).
    max_patterns:
        Bound on the query-text parse memo (oldest dropped first).
    faults:
        Test-only :class:`~repro.evaluation.faults.FaultPlan`; fired by
        request **position** (the submission sequence number) before the
        request executes.  ``None`` in production.

    >>> from repro.rdf import RDFGraph, Triple
    >>> from repro.sparql.mappings import Mapping
    >>> service = QueryService(RDFGraph([Triple.of("a", "knows", "b")]))
    >>> service.check("((?x knows ?y) OPT (?y email ?e))", Mapping.of(x="a", y="b"))
    True
    >>> service.close()
    """

    def __init__(
        self,
        graphs: Union[RDFGraph, Dict[str, RDFGraph]],
        session: Optional[Session] = None,
        max_inflight: int = 4,
        max_pending: int = 64,
        default_deadline: Optional[float] = None,
        chunk_size: int = 256,
        max_patterns: int = 256,
        faults: Optional[object] = None,
    ) -> None:
        if isinstance(graphs, RDFGraph):
            graphs = {DEFAULT_GRAPH: graphs}
        if not graphs:
            raise ServiceError("a QueryService needs at least one graph to serve")
        if max_inflight < 1:
            raise ServiceError("max_inflight must be a positive integer")
        if max_pending < 0:
            raise ServiceError("max_pending must be >= 0")
        if chunk_size < 1:
            raise ServiceError("chunk_size must be a positive integer")
        self._graphs: Dict[str, RDFGraph] = dict(graphs)
        self._session = session if session is not None else Session()
        self._gate = ReadWriteGate()
        self._stats = ServiceStats()
        self._max_inflight = max_inflight
        self._max_pending = max_pending
        self._default_deadline = default_deadline
        self.chunk_size = chunk_size
        self._max_patterns = max_patterns
        self._faults = faults
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._lock = threading.Lock()
        self._backlog = 0
        self._inflight = 0
        self._sequence = 0
        self._closed = False
        self._patterns: Dict[str, GraphPattern] = {}
        self._threads = [
            threading.Thread(
                target=self._serve_loop, name=f"repro-service-{i}", daemon=True
            )
            for i in range(max_inflight)
        ]
        for thread in self._threads:
            thread.start()

    # --- introspection -----------------------------------------------------
    @property
    def session(self) -> Session:
        """The shared session every request evaluates through."""
        return self._session

    @property
    def gate(self) -> ReadWriteGate:
        """The reader/writer gate serializing updates against queries."""
        return self._gate

    @property
    def graphs(self) -> Dict[str, RDFGraph]:
        """The registered graphs by name (live objects, not copies)."""
        return dict(self._graphs)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __repr__(self) -> str:
        with self._lock:
            backlog, closed = self._backlog, self._closed
        return (
            f"QueryService(<{len(self._graphs)} graphs, "
            f"workers={self._max_inflight}, backlog={backlog}, "
            f"closed={closed}>)"
        )

    def stats(self) -> dict:
        """The introspection snapshot (what the ``stats`` operation returns).

        Service-level counters and latency percentiles
        (:class:`ServiceStats`), the live backlog/inflight gauges, per-graph
        size and version, and the underlying session's cache and resilience
        counters.
        """
        snapshot = self._stats.snapshot()
        with self._lock:
            snapshot["backlog"] = self._backlog
            snapshot["inflight"] = self._inflight
            snapshot["max_pending"] = self._max_pending
            snapshot["max_inflight"] = self._max_inflight
        snapshot["graphs"] = {
            name: {"triples": len(graph), "version": graph.version}
            for name, graph in self._graphs.items()
        }
        snapshot["cache"] = self._session.cache.statistics.as_dict()
        snapshot["resilience"] = self._session.statistics.resilience_summary()
        snapshot["worker_mode"] = self._session.worker_mode()
        snapshot["engines"] = self._session.engine_count
        return snapshot

    # --- admission ---------------------------------------------------------
    def submit(self, request: Request) -> PendingResponse:
        """Admit *request* (non-blocking) and return its response handle.

        Raises :class:`~repro.exceptions.ServiceError` for unknown
        operations, :class:`~repro.exceptions.ServiceClosedError` after
        :meth:`close`, and :class:`~repro.exceptions.ServiceOverloadedError`
        when the backlog is full — the typed rejection of admission
        control.  The per-request :class:`~repro.evaluation.budget.Budget`
        starts **now**: time spent queued counts against the deadline.
        """
        if request.op not in OPERATIONS:
            raise ServiceError(
                f"unknown operation {request.op!r}; expected one of {OPERATIONS}"
            )
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed; no new requests")
            if self._backlog >= self._max_pending:
                self._stats.note_rejected()
                raise ServiceOverloadedError(
                    f"service overloaded: {self._backlog} request(s) pending "
                    f"(max_pending={self._max_pending}, "
                    f"max_inflight={self._max_inflight}); retry later",
                    pending=self._backlog,
                    max_pending=self._max_pending,
                )
            deadline = (
                request.deadline
                if request.deadline is not None
                else self._default_deadline
            )
            budget = Budget(deadline=deadline) if deadline is not None else None
            pending = PendingResponse(request, budget, self._sequence)
            self._sequence += 1
            self._backlog += 1
            self._stats.note_admitted(request.op)
            # put_nowait: identical to put() on an unbounded Queue, but
            # syntactically non-blocking — enqueueing must stay inside the
            # lock so close(drain=False) cannot drain between admission and
            # enqueue (the request would hang unresolved).
            self._queue.put_nowait(pending)
        return pending

    def request(self, request: Request, timeout: Optional[float] = None) -> Response:
        """Submit and block for the response (the closed-loop client shape)."""
        return self.submit(request).result(timeout)

    # --- convenience entry points ------------------------------------------
    def check(
        self,
        query: str,
        mappings: Union[Mapping, Sequence[Mapping]],
        graph: str = DEFAULT_GRAPH,
        method: str = "auto",
        width: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Union[bool, List[bool]]:
        """Membership through the service; raises typed errors on failure.

        A single :class:`~repro.sparql.mappings.Mapping` returns one bool;
        a sequence returns the verdict list in input order.
        """
        single = isinstance(mappings, Mapping)
        batch: Sequence[Mapping] = [mappings] if single else list(mappings)
        response = self.request(
            Request(
                op="check",
                query=query,
                graph=graph,
                mappings=batch,
                method=method,
                width=width,
                deadline=deadline,
            )
        ).raise_for_error()
        verdicts: List[bool] = response.result  # type: ignore[assignment]
        return verdicts[0] if single else verdicts

    def solutions(
        self,
        query: str,
        graph: str = DEFAULT_GRAPH,
        method: str = "auto",
        deadline: Optional[float] = None,
    ) -> Set[Mapping]:
        """Full enumeration ``⟦P⟧G`` through the service (typed errors raise)."""
        response = self.request(
            Request(
                op="solutions", query=query, graph=graph, method=method, deadline=deadline
            )
        ).raise_for_error()
        return response.result  # type: ignore[return-value]

    def explain(
        self, query: str, graph: str = DEFAULT_GRAPH, method: str = "auto"
    ) -> str:
        """The human-readable plan for *query* against the live graph."""
        response = self.request(
            Request(op="explain", query=query, graph=graph, method=method)
        ).raise_for_error()
        return response.result  # type: ignore[return-value]

    def update(
        self,
        graph: str = DEFAULT_GRAPH,
        add: Sequence[Triple] = (),
        remove: Sequence[Triple] = (),
        deadline: Optional[float] = None,
    ) -> dict:
        """Apply an online mutation batch (removes, then adds) exclusively."""
        response = self.request(
            Request(op="update", graph=graph, add=add, remove=remove, deadline=deadline)
        ).raise_for_error()
        return response.result  # type: ignore[return-value]

    # --- the request loop --------------------------------------------------
    def _serve_loop(self) -> None:
        """One worker thread: dequeue, gate, evaluate, always respond.

        Registered in the RP-TICK ``HOT_LOOPS`` registry: the loop ticks
        each request's budget at dequeue (the queue wait costs a step and
        stays deadline-responsive) and then takes an immediate
        :meth:`~repro.evaluation.budget.Budget.check`, so a request that
        expired while queued is rejected with a typed deadline response
        before any evaluation work happens.
        """
        while True:
            item = self._queue.get()
            if isinstance(item, _Stop):
                break
            pending = cast(PendingResponse, item)
            with self._lock:
                self._backlog -= 1
                self._inflight += 1
                self._stats.note_inflight(self._inflight)
            try:
                if pending.budget is not None:
                    pending.budget.tick()  # queue wait counts against the budget
                    pending.budget.check()  # expired while queued: reject now
                response = self._execute(pending)
            except DeadlineExceeded as error:
                response = self._error_response(pending, error)
            except ReproError as error:
                response = self._error_response(pending, error)
            except Exception as error:  # defensive: a bug must not hang clients
                response = self._error_response(
                    pending,
                    ServiceError(
                        f"internal service error: {type(error).__name__}: {error}"
                    ),
                )
            finally:
                with self._lock:
                    self._inflight -= 1
            self._finish(pending, response)

    def _finish(self, pending: PendingResponse, response: Response) -> None:
        response.elapsed = monotonic() - pending.submitted_at
        response.request_id = pending.position
        self._stats.note_completed(response)
        pending._resolve(response)

    def _error_response(self, pending: PendingResponse, error: ReproError) -> Response:
        return Response(
            op=pending.request.op,
            ok=False,
            error=str(error),
            error_type=type(error).__name__,
        )

    def _execute(self, pending: PendingResponse) -> Response:
        request = pending.request
        if self._faults is not None:
            self._faults.fire(  # type: ignore[union-attr]
                pending.position, self._graphs.get(request.graph)
            )
        handler = getattr(self, f"_op_{request.op}")
        return handler(pending)

    # --- operation handlers ------------------------------------------------
    def _pattern(self, request: Request) -> GraphPattern:
        if not request.query:
            raise ServiceError(f"operation {request.op!r} needs a query")
        with self._lock:
            pattern = self._patterns.get(request.query)
        if pattern is not None:
            return pattern
        pattern = parse_pattern(request.query)
        with self._lock:
            while len(self._patterns) >= self._max_patterns:
                self._patterns.pop(next(iter(self._patterns)))
            self._patterns[request.query] = pattern
        return pattern

    def _graph(self, request: Request) -> RDFGraph:
        graph = self._graphs.get(request.graph)
        if graph is None:
            raise ServiceError(
                f"unknown graph {request.graph!r}; registered: "
                f"{sorted(self._graphs)}"
            )
        return graph

    def _op_check(self, pending: PendingResponse) -> Response:
        request = pending.request
        pattern = self._pattern(request)
        graph = self._graph(request)
        mappings = list(request.mappings)
        if not mappings:
            raise ServiceError("operation 'check' needs at least one candidate mapping")
        with self._gate.read(pending.budget):
            verdicts = self._session.check_many(
                pattern,
                graph,
                mappings,
                method=request.method,
                width=request.width,
                budget=pending.budget,
            )
            version = graph.version
        return Response(op="check", ok=True, result=verdicts, graph_version=version)

    def _op_solutions(self, pending: PendingResponse) -> Response:
        request = pending.request
        pattern = self._pattern(request)
        graph = self._graph(request)
        with self._gate.read(pending.budget):
            answers = self._session.solutions(
                pattern, graph, method=request.method, budget=pending.budget
            )
            version = graph.version
        return Response(op="solutions", ok=True, result=answers, graph_version=version)

    def _op_explain(self, pending: PendingResponse) -> Response:
        request = pending.request
        pattern = self._pattern(request)
        graph = self._graph(request)
        with self._gate.read(pending.budget):
            text = self._session.explain(
                pattern, method=request.method, width=request.width, graph=graph
            )
            version = graph.version
        return Response(op="explain", ok=True, result=text, graph_version=version)

    def _op_update(self, pending: PendingResponse) -> Response:
        request = pending.request
        graph = self._graph(request)
        removes = list(request.remove)
        adds = list(request.add)
        with self._gate.write(pending.budget):
            removed = 0
            for triple in removes:
                if triple in graph:
                    graph.discard(triple)
                    removed += 1
            added = sum(1 for triple in adds if triple not in graph)
            if adds:
                graph.add_all(adds)
            version = graph.version
        self._stats.note_update(added, removed)
        return Response(
            op="update",
            ok=True,
            result={"added": added, "removed": removed, "version": version},
            graph_version=version,
        )

    def _op_stats(self, pending: PendingResponse) -> Response:
        return Response(op="stats", ok=True, result=self.stats())

    # --- chunked delivery ---------------------------------------------------
    def solution_chunks(
        self, response: Response, chunk_size: Optional[int] = None
    ) -> Iterator[List[Mapping]]:
        """A ``solutions`` response's answer set in deterministic chunks.

        The evaluation already ran (pinned to one graph version under the
        read gate); chunking happens from memory, so a slow consumer never
        holds the gate.  This is what the socket layer streams as
        ``chunk`` lines.
        """
        if not response.ok or response.op != "solutions":
            raise ServiceError("solution_chunks() needs a successful solutions response")
        size = chunk_size if chunk_size is not None else self.chunk_size
        answers: List[Mapping] = sorted(response.result, key=repr)  # type: ignore[arg-type]
        for start in range(0, len(answers), size):
            yield answers[start : start + size]

    # --- lifecycle ----------------------------------------------------------
    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut the service down; every outstanding request gets a response.

        With ``drain=True`` (default) queued requests are served first;
        with ``drain=False`` they are resolved immediately with typed
        :class:`~repro.exceptions.ServiceClosedError` responses.  Worker
        threads are joined (*timeout* per thread).  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(item, _Stop):
                    continue
                stranded = cast(PendingResponse, item)
                with self._lock:
                    self._backlog -= 1
                self._finish(
                    stranded,
                    self._error_response(
                        stranded,
                        ServiceClosedError("service closed before execution"),
                    ),
                )
        for _thread in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
