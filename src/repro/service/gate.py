"""A reader/writer gate serializing graph mutations against in-flight queries.

The query service evaluates requests on a pool of threads over **one**
shared :class:`~repro.evaluation.session.Session`.  Queries (membership,
enumeration, explain) only *read* the registered graphs; online updates
*mutate* them — and the whole cache architecture hangs off
``RDFGraph.version``: a mutation mid-query would invalidate cache entries
the query is in the middle of using and could record results under the
wrong version.  :class:`ReadWriteGate` is the concurrency contract that
makes the version counter meaningful under threads:

* any number of **readers** (queries) may hold the gate together;
* a **writer** (update) holds it exclusively — no query observes a graph
  mid-mutation, so every response is pinned to exactly one version;
* writers get priority: once an update is waiting, new readers queue
  behind it, so a steady stream of queries cannot starve mutations.

Acquisition is deadline-aware: both sides accept an optional timeout (the
service derives it from the request's
:class:`~repro.evaluation.budget.Budget`), so a request that cannot get the
gate in time fails with its own deadline instead of hanging a worker
thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from ..exceptions import DeadlineExceeded, ServiceError

__all__ = ["ReadWriteGate"]


class ReadWriteGate:
    """Many concurrent readers or one exclusive, prioritized writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # --- introspection -----------------------------------------------------
    @property
    def readers(self) -> int:
        """How many readers currently hold the gate (diagnostics only)."""
        with self._cond:
            return self._readers

    @property
    def writer_active(self) -> bool:
        """Whether a writer currently holds the gate (diagnostics only)."""
        with self._cond:
            return self._writer_active

    # --- acquisition -------------------------------------------------------
    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        """Enter as a reader; ``False`` when *timeout* elapses first.

        Blocks while a writer holds the gate **or is waiting for it**
        (writer priority).
        """
        with self._cond:
            if not self._cond.wait_for(
                lambda: not self._writer_active and not self._writers_waiting,
                timeout=timeout,
            ):
                return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise ServiceError("release_read() without a matching acquire_read()")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        """Enter as the exclusive writer; ``False`` on timeout."""
        with self._cond:
            self._writers_waiting += 1
            try:
                if not self._cond.wait_for(
                    lambda: not self._writer_active and self._readers == 0,
                    timeout=timeout,
                ):
                    return False
                self._writer_active = True
                return True
            finally:
                self._writers_waiting -= 1
                if not self._writer_active:
                    # Timed out: readers blocked on "no writers waiting" may
                    # proceed now that this writer gave up.
                    self._cond.notify_all()

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise ServiceError("release_write() without a matching acquire_write()")
            self._writer_active = False
            self._cond.notify_all()

    # --- context managers --------------------------------------------------
    @contextmanager
    def read(self, budget=None) -> Iterator[None]:
        """``with gate.read(budget):`` — deadline-aware reader section.

        With a *budget*, waits at most its remaining allowance and raises
        :class:`~repro.exceptions.DeadlineExceeded` when the gate could not
        be acquired in time (an update is holding or hogging it).
        """
        if not self.acquire_read(timeout=_allowance(budget)):
            raise DeadlineExceeded(
                "deadline exceeded while waiting for the read gate "
                "(a graph update held the service)",
                elapsed=budget.elapsed() if budget is not None else None,
                budget=budget,
            )
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self, budget=None) -> Iterator[None]:
        """``with gate.write(budget):`` — deadline-aware exclusive section."""
        if not self.acquire_write(timeout=_allowance(budget)):
            raise DeadlineExceeded(
                "deadline exceeded while waiting for the write gate "
                "(queries still in flight)",
                elapsed=budget.elapsed() if budget is not None else None,
                budget=budget,
            )
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._cond:
            return (
                f"ReadWriteGate(readers={self._readers}, "
                f"writer={self._writer_active}, waiting={self._writers_waiting})"
            )


def _allowance(budget) -> Optional[float]:
    """A budget's remaining wall-clock allowance as a wait timeout.

    ``None`` (no budget / no deadline) waits indefinitely; an expired
    budget turns into a zero timeout so the acquire fails immediately and
    the caller raises the deadline error.
    """
    if budget is None:
        return None
    remaining = budget.remaining()
    if remaining is None:
        return None
    return max(0.0, remaining)
