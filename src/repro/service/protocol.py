"""The line-delimited JSON wire protocol of the query service.

One request per line, one or more response lines per request.  Requests
are JSON objects with an ``op`` field (one of
:data:`~repro.service.core.OPERATIONS`) plus operation-specific fields;
the optional ``id`` field is echoed verbatim on every response line so
clients can pipeline requests over one connection:

.. code-block:: text

   → {"id": 1, "op": "check", "query": "(?x knows ?y)",
      "bindings": [{"x": "a", "y": "b"}], "deadline": 0.5}
   ← {"id": 1, "op": "check", "ok": true, "result": [true], "version": 1,
      "elapsed_ms": 0.4}

``solutions`` responses stream: zero or more ``chunk`` lines (each a list
of ``{variable: term}`` objects, ``seq``-numbered) followed by a final
``done`` line carrying the total count and the graph version the whole
answer set was computed against:

.. code-block:: text

   → {"id": 2, "op": "solutions", "query": "(?x knows ?y)", "chunk_size": 2}
   ← {"id": 2, "op": "solutions", "chunk": [{"x": "a", "y": "b"},
      {"x": "b", "y": "c"}], "seq": 0}
   ← {"id": 2, "op": "solutions", "ok": true, "done": true, "count": 2,
      "version": 1, "elapsed_ms": 1.3}

Errors — including admission-control rejections, which never reach a
worker thread — are single lines with ``ok: false`` and the
:class:`~repro.exceptions.ReproError` subtype name in ``error_type``:

.. code-block:: text

   ← {"id": 3, "op": "check", "ok": false,
      "error_type": "ServiceOverloadedError",
      "error": "service overloaded: 64 request(s) pending ..."}

Malformed lines (bad JSON, wrong shapes, oversized) are answered with a
``ProtocolError`` line and the connection stays usable.  This module is
pure data plumbing — no sockets; :mod:`repro.service.server` and
:mod:`repro.service.client` sit on either side of it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import ProtocolError
from ..rdf.terms import Variable
from ..rdf.triples import Triple, coerce_term
from ..sparql.mappings import Mapping
from .core import DEFAULT_GRAPH, OPERATIONS, Request, Response

__all__ = [
    "MAX_LINE_BYTES",
    "decode_line",
    "encode_line",
    "error_line",
    "mapping_from_wire",
    "mapping_to_wire",
    "request_from_wire",
    "response_lines",
    "triple_from_wire",
    "triple_to_wire",
]

#: Hard bound on one protocol line; longer lines are a :class:`ProtocolError`.
MAX_LINE_BYTES = 16 * 1024 * 1024


# --- framing ---------------------------------------------------------------
def encode_line(message: dict) -> bytes:
    """Serialize one protocol message as a newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def decode_line(raw: bytes) -> dict:
    """Parse one received line into a message object (typed errors)."""
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"protocol line of {len(raw)} bytes exceeds the "
            f"{MAX_LINE_BYTES} byte bound"
        )
    try:
        message = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed protocol line: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    return message


# --- value conversions -----------------------------------------------------
def _term_to_wire(term: object) -> str:
    value = getattr(term, "value", None)
    return value if isinstance(value, str) else str(term)


def mapping_to_wire(mu: Mapping) -> Dict[str, str]:
    """A mapping as a plain ``{variable_name: term}`` JSON object."""
    return {var.name: _term_to_wire(value) for var, value in mu.items()}


def mapping_from_wire(binding: object) -> Mapping:
    """The inverse of :func:`mapping_to_wire` (typed errors on bad shapes)."""
    if not isinstance(binding, dict):
        raise ProtocolError(
            f"bindings must be objects mapping variable names to terms, "
            f"got {type(binding).__name__}"
        )
    items = {}
    for name, value in binding.items():
        if not isinstance(name, str) or not isinstance(value, str):
            raise ProtocolError("binding entries must map string names to string terms")
        term = coerce_term(value)
        if isinstance(term, Variable):
            raise ProtocolError(
                f"binding value {value!r} for {name!r} is a variable, not a ground term"
            )
        items[Variable(name)] = term
    return Mapping(items)


def triple_to_wire(triple: Triple) -> List[str]:
    """A triple as a ``[subject, predicate, object]`` JSON array."""
    return [
        _term_to_wire(triple.subject),
        _term_to_wire(triple.predicate),
        _term_to_wire(triple.object),
    ]


def triple_from_wire(item: object) -> Triple:
    """The inverse of :func:`triple_to_wire` (typed errors on bad shapes)."""
    if (
        not isinstance(item, (list, tuple))
        or len(item) != 3
        or not all(isinstance(part, str) for part in item)
    ):
        raise ProtocolError(
            "update triples must be [subject, predicate, object] string arrays"
        )
    return Triple.of(*item)


# --- requests --------------------------------------------------------------
def _field(message: dict, name: str, kind: type, default: object) -> Any:
    # Any return: callers assign into precisely-typed Request fields after
    # this runtime check has enforced the shape.
    value = message.get(name, default)
    if value is default:
        return default
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool) and kind is not bool:
        raise ProtocolError(
            f"field {name!r} must be a {kind.__name__}, got {type(value).__name__}"
        )
    return value


def request_from_wire(message: dict) -> Tuple[Request, object, Optional[int]]:
    """Turn a decoded message into ``(request, echo_id, chunk_size)``.

    ``echo_id`` is whatever the client sent as ``id`` (echoed on every
    response line, ``None`` when absent); ``chunk_size`` is the requested
    ``solutions`` chunk size (``None`` = the service default).
    """
    op = message.get("op")
    if not isinstance(op, str) or op not in OPERATIONS:
        raise ProtocolError(f"field 'op' must be one of {list(OPERATIONS)}, got {op!r}")
    echo_id = message.get("id")
    chunk_size = _field(message, "chunk_size", int, None)
    if chunk_size is not None and chunk_size < 1:
        raise ProtocolError("field 'chunk_size' must be a positive integer")
    deadline = _field(message, "deadline", float, None)
    if deadline is not None and deadline <= 0:
        raise ProtocolError("field 'deadline' must be a positive number of seconds")
    bindings = message.get("bindings", [])
    if not isinstance(bindings, list):
        raise ProtocolError("field 'bindings' must be an array of binding objects")
    add = message.get("add", [])
    remove = message.get("remove", [])
    if not isinstance(add, list) or not isinstance(remove, list):
        raise ProtocolError("fields 'add'/'remove' must be arrays of triples")
    request = Request(
        op=op,
        query=_field(message, "query", str, None),
        graph=_field(message, "graph", str, DEFAULT_GRAPH),
        mappings=[mapping_from_wire(binding) for binding in bindings],
        method=_field(message, "method", str, "auto"),
        width=_field(message, "width", int, None),
        deadline=deadline,
        add=[triple_from_wire(item) for item in add],
        remove=[triple_from_wire(item) for item in remove],
    )
    return request, echo_id, chunk_size


# --- responses -------------------------------------------------------------
def _result_to_wire(response: Response) -> object:
    if response.op == "check":
        return list(response.result)  # type: ignore[call-overload]
    return response.result


def response_lines(
    response: Response,
    echo_id: object = None,
    chunks: Optional[Sequence[List[Mapping]]] = None,
) -> Iterator[dict]:
    """The wire lines of one response (chunk lines first, final line last).

    For successful ``solutions`` responses pass the already-chunked answer
    set (from :meth:`~repro.service.core.QueryService.solution_chunks`);
    everything else is a single line.
    """
    final: dict = {"op": response.op, "ok": response.ok}
    if echo_id is not None:
        final["id"] = echo_id
    final["elapsed_ms"] = round(response.elapsed * 1000.0, 3)
    if response.graph_version is not None:
        final["version"] = response.graph_version
    if not response.ok:
        final["error"] = response.error
        final["error_type"] = response.error_type
        yield final
        return
    if response.op == "solutions":
        count = 0
        for seq, chunk in enumerate(chunks or ()):
            count += len(chunk)
            line: dict = {
                "op": "solutions",
                "seq": seq,
                "chunk": [mapping_to_wire(mu) for mu in chunk],
            }
            if echo_id is not None:
                line["id"] = echo_id
            yield line
        final["done"] = True
        final["count"] = count
        yield final
        return
    final["result"] = _result_to_wire(response)
    yield final


def error_line(error: Exception, op: str = "?", echo_id: object = None) -> dict:
    """A single error response line for failures outside a worker thread.

    Covers admission-control rejections (overload, closed service) and
    protocol violations — cases where no :class:`Response` object exists.
    """
    line: dict = {
        "op": op,
        "ok": False,
        "error": str(error),
        "error_type": type(error).__name__,
    }
    if echo_id is not None:
        line["id"] = echo_id
    return line
