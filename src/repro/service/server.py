"""A stdlib socket front end for :class:`~repro.service.core.QueryService`.

:class:`ServiceServer` listens on a TCP socket and speaks the
line-delimited JSON protocol of :mod:`repro.service.protocol`: one thread
per connection reads request lines, drives the shared service, and writes
response lines (``solutions`` answers stream in chunks).  Heavy lifting —
thread pool, gate, admission control, deadlines, stats — lives in the
service; this layer only frames bytes.

Failure behaviour mirrors the service contract: protocol violations and
admission rejections are answered with typed single-line errors on the
same connection, and a client disconnect mid-response simply ends that
connection's thread.  ``repro serve`` (:mod:`repro.cli`) is a thin wrapper
around this class.
"""

from __future__ import annotations

import socket
import threading
from typing import Iterator, Optional, Tuple

from ..exceptions import ProtocolError, ReproError
from .core import QueryService
from .protocol import (
    decode_line,
    encode_line,
    error_line,
    request_from_wire,
    response_lines,
)

__all__ = ["ServiceServer"]


class ServiceServer:
    """Serve one :class:`QueryService` over a listening TCP socket.

    Parameters
    ----------
    service:
        The (already running) service to expose.
    host / port:
        Bind address; ``port=0`` picks a free port — read it back from
        :attr:`address` (the pattern the tests and ``repro serve`` use).
    max_requests:
        Optional total request bound across all connections; the server
        shuts down after answering that many lines (smoke tests, CI).
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_requests: Optional[int] = None,
    ) -> None:
        self._service = service
        self._listener = socket.create_server((host, port))
        self._max_requests = max_requests
        self._served = 0  # guarded-by: _lock
        self._lock = threading.Lock()
        self._closing = False  # guarded-by: _lock
        self._threads: list = []  # guarded-by: _lock

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        return self._listener.getsockname()[:2]

    @property
    def requests_served(self) -> int:
        with self._lock:
            return self._served

    # --- accept loop -------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown` (or ``max_requests``)."""
        while True:
            try:
                connection, _peer = self._listener.accept()
            except OSError:
                break  # listener closed by shutdown()
            with self._lock:
                closing = self._closing
            if closing:
                connection.close()
                break
            thread = threading.Thread(
                target=self._handle, args=(connection,), daemon=True
            )
            with self._lock:
                self._threads.append(thread)
            thread.start()

    def shutdown(self) -> None:
        """Stop accepting; live connection threads drain on their own."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
        # Closing a listening socket does not reliably interrupt a blocked
        # accept() on another thread; a self-connection wakes it so the
        # accept loop can observe _closing and exit.
        try:
            with socket.create_connection(self.address, timeout=1.0):
                pass
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # --- per-connection ----------------------------------------------------
    def _handle(self, connection: socket.socket) -> None:
        with connection:
            reader = connection.makefile("rb")
            for raw in reader:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    for line in self._process(raw):
                        connection.sendall(line)
                except OSError:
                    return  # client went away mid-response
                if self._count_request():
                    self.shutdown()
                    return

    def _count_request(self) -> bool:
        """Record one served request; ``True`` when the bound is reached."""
        with self._lock:
            self._served += 1
            return self._max_requests is not None and self._served >= self._max_requests

    def _process(self, raw: bytes) -> Iterator[bytes]:
        """All response lines for one request line (always at least one)."""
        echo_id = None
        op = "?"
        try:
            message = decode_line(raw)
            echo_id = message.get("id")
            request, echo_id, chunk_size = request_from_wire(message)
            op = request.op
            response = self._service.submit(request).result()
            chunks = None
            if response.ok and response.op == "solutions":
                chunks = list(self._service.solution_chunks(response, chunk_size))
            for line in response_lines(response, echo_id, chunks):
                yield encode_line(line)
        except (ProtocolError, ReproError) as error:
            # Admission rejections (overload / closed) and malformed lines
            # answer in-band; the connection stays usable.
            yield encode_line(error_line(error, op=op, echo_id=echo_id))
