"""The AND / OPTIONAL / UNION graph-pattern algebra.

Graph patterns are represented as an immutable abstract syntax tree:

* :class:`TriplePatternNode` — a single triple pattern (the base case);
* :class:`And` — ``P1 AND P2``;
* :class:`Opt` — ``P1 OPT P2``;
* :class:`Union` — ``P1 UNION P2``.

Convenience constructors :func:`tp`, :func:`conj` and the combinator methods
``.opt(...)``, ``.and_(...)``, ``.union(...)`` make building patterns in
examples and tests readable.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern

__all__ = [
    "GraphPattern",
    "TriplePatternNode",
    "And",
    "Opt",
    "Union",
    "tp",
    "conj",
    "opt_chain",
    "union_of",
]


class GraphPattern:
    """Abstract base class of SPARQL graph patterns (AND/OPT/UNION fragment)."""

    __slots__ = ()

    # --- structural queries -----------------------------------------------------
    def variables(self) -> frozenset[Variable]:
        """All variables occurring anywhere in the pattern."""
        raise NotImplementedError

    def triple_patterns(self) -> frozenset[TriplePattern]:
        """All triple patterns occurring anywhere in the pattern."""
        raise NotImplementedError

    def subpatterns(self) -> Iterator["GraphPattern"]:
        """Iterate over all subpatterns (including the pattern itself)."""
        raise NotImplementedError

    def operators(self) -> frozenset[str]:
        """The set of operators used (subset of {"AND", "OPT", "UNION"})."""
        ops: set[str] = set()
        for sub in self.subpatterns():
            if isinstance(sub, And):
                ops.add("AND")
            elif isinstance(sub, Opt):
                ops.add("OPT")
            elif isinstance(sub, Union):
                ops.add("UNION")
        return frozenset(ops)

    def is_union_free(self) -> bool:
        """``True`` when the pattern uses no UNION operator."""
        return "UNION" not in self.operators()

    def size(self) -> int:
        """Number of AST nodes — the query size parameter ``|P|`` of the paper."""
        return sum(1 for _ in self.subpatterns())

    # --- combinators -----------------------------------------------------------
    def and_(self, other: "GraphPattern") -> "And":
        """``self AND other``."""
        return And(self, other)

    def opt(self, other: "GraphPattern") -> "Opt":
        """``self OPT other``."""
        return Opt(self, other)

    def union(self, other: "GraphPattern") -> "Union":
        """``self UNION other``."""
        return Union(self, other)

    # --- helpers ----------------------------------------------------------------
    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))


class TriplePatternNode(GraphPattern):
    """A leaf of the algebra: a single triple pattern."""

    __slots__ = ("triple_pattern",)

    def __init__(self, triple_pattern: TriplePattern) -> None:
        if not isinstance(triple_pattern, TriplePattern):
            raise TypeError("TriplePatternNode wraps a TriplePattern")
        object.__setattr__(self, "triple_pattern", triple_pattern)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("graph patterns are immutable")

    def __reduce__(self):
        return (TriplePatternNode, (self.triple_pattern,))

    def variables(self) -> frozenset[Variable]:
        return self.triple_pattern.variables()

    def triple_patterns(self) -> frozenset[TriplePattern]:
        return frozenset({self.triple_pattern})

    def subpatterns(self) -> Iterator[GraphPattern]:
        yield self

    def _key(self) -> tuple:
        return (self.triple_pattern,)

    def __repr__(self) -> str:
        return f"TriplePatternNode({self.triple_pattern!r})"

    def __str__(self) -> str:
        return str(self.triple_pattern)


class _Binary(GraphPattern):
    """Common implementation of the three binary operators."""

    __slots__ = ("left", "right")

    OPERATOR = "?"

    def __init__(self, left: GraphPattern, right: GraphPattern) -> None:
        for side, value in (("left", left), ("right", right)):
            if not isinstance(value, GraphPattern):
                raise TypeError(f"{side} operand must be a GraphPattern, got {type(value).__name__}")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("graph patterns are immutable")

    def __reduce__(self):
        return (type(self), (self.left, self.right))

    def variables(self) -> frozenset[Variable]:
        return self.left.variables() | self.right.variables()

    def triple_patterns(self) -> frozenset[TriplePattern]:
        return self.left.triple_patterns() | self.right.triple_patterns()

    def subpatterns(self) -> Iterator[GraphPattern]:
        yield self
        yield from self.left.subpatterns()
        yield from self.right.subpatterns()

    def _key(self) -> tuple:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} {self.OPERATOR} {self.right})"


class And(_Binary):
    """``P1 AND P2`` — conjunction of graph patterns."""

    __slots__ = ()
    OPERATOR = "AND"


class Opt(_Binary):
    """``P1 OPT P2`` — the left-outer-join (OPTIONAL) operator."""

    __slots__ = ()
    OPERATOR = "OPT"


class Union(_Binary):
    """``P1 UNION P2``."""

    __slots__ = ()
    OPERATOR = "UNION"


def tp(subject: object, predicate: object, object_: object) -> TriplePatternNode:
    """Build a triple-pattern leaf from terms or convenience strings.

    >>> str(tp("?x", "p", "?y"))
    '(?x <p> ?y)'
    """
    return TriplePatternNode(TriplePattern.of(subject, predicate, object_))


def conj(patterns: Sequence[GraphPattern] | Iterable[GraphPattern]) -> GraphPattern:
    """Left-deep AND of a non-empty sequence of patterns."""
    items: List[GraphPattern] = list(patterns)
    if not items:
        raise ValueError("conj() requires at least one pattern")
    result = items[0]
    for item in items[1:]:
        result = And(result, item)
    return result


def opt_chain(root: GraphPattern, *optionals: GraphPattern) -> GraphPattern:
    """``((root OPT o1) OPT o2) ...`` — a left-deep chain of OPT operators."""
    result = root
    for optional in optionals:
        result = Opt(result, optional)
    return result


def union_of(patterns: Sequence[GraphPattern] | Iterable[GraphPattern]) -> GraphPattern:
    """Left-deep UNION of a non-empty sequence of patterns."""
    items: List[GraphPattern] = list(patterns)
    if not items:
        raise ValueError("union_of() requires at least one pattern")
    result = items[0]
    for item in items[1:]:
        result = Union(result, item)
    return result
