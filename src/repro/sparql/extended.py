"""The extended fragment: FILTER and SELECT (projection).

The paper's core results concern the AND/OPT/UNION fragment; Section 5
explains that once FILTER or SELECT enter the picture the clean dichotomy of
Theorem 3 fails (there are classes whose co-evaluation problem is NP-hard yet
fixed-parameter tractable).  To make that discussion concrete — and to give
the library the operators real SPARQL workloads use — this module adds:

* :class:`Filter` — ``P FILTER R`` with the condition language of
  :mod:`repro.sparql.filters`;
* :class:`Select` — projection ``SELECT W WHERE P``;
* the *safety* and extended well-designedness checks of Pérez et al.
  (``vars(R) ⊆ vars(P)`` for every FILTER subpattern, OPT condition as
  before, SELECT only at the top);
* an evaluator for the extended fragment (in
  :mod:`repro.evaluation.extended`).

The structural algorithms of the paper (pattern forests, width measures, the
pebble evaluation) intentionally keep operating on the core fragment only;
:func:`core_fragment_of` strips a top-level SELECT and rejects FILTER so the
caller can decide how to handle extended queries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .algebra import And, GraphPattern, Opt, Union
from .filters import FilterCondition
from .well_designed import WellDesignedViolation, union_operands
from ..rdf.terms import Variable
from ..exceptions import NotWellDesignedError

__all__ = [
    "Filter",
    "Select",
    "is_safe",
    "find_extended_violation",
    "is_well_designed_extended",
    "check_well_designed_extended",
    "core_fragment_of",
]


class Filter(GraphPattern):
    """``P FILTER R`` — keep only the solutions of ``P`` satisfying ``R``."""

    __slots__ = ("pattern", "condition")

    def __init__(self, pattern: GraphPattern, condition: FilterCondition) -> None:
        if not isinstance(pattern, GraphPattern):
            raise TypeError("Filter wraps a GraphPattern")
        if not isinstance(condition, FilterCondition):
            raise TypeError("Filter takes a FilterCondition")
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "condition", condition)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("graph patterns are immutable")

    def variables(self) -> frozenset[Variable]:
        return self.pattern.variables() | self.condition.variables()

    def triple_patterns(self):
        return self.pattern.triple_patterns()

    def subpatterns(self) -> Iterator[GraphPattern]:
        yield self
        yield from self.pattern.subpatterns()

    def _key(self) -> tuple:
        return (self.pattern, self.condition)

    def __repr__(self) -> str:
        return f"Filter({self.pattern!r}, {self.condition!r})"

    def __str__(self) -> str:
        return f"({self.pattern} FILTER {self.condition})"


class Select(GraphPattern):
    """``SELECT W WHERE P`` — project the solutions of ``P`` onto ``W``."""

    __slots__ = ("pattern", "projection")

    def __init__(self, pattern: GraphPattern, projection: Iterable[Variable]) -> None:
        if not isinstance(pattern, GraphPattern):
            raise TypeError("Select wraps a GraphPattern")
        projection = tuple(dict.fromkeys(projection))  # stable, deduplicated
        for variable in projection:
            if not isinstance(variable, Variable):
                raise TypeError("projection variables must be Variable instances")
        if not projection:
            raise ValueError("SELECT requires at least one projection variable")
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "projection", projection)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("graph patterns are immutable")

    def variables(self) -> frozenset[Variable]:
        return self.pattern.variables() | frozenset(self.projection)

    def triple_patterns(self):
        return self.pattern.triple_patterns()

    def subpatterns(self) -> Iterator[GraphPattern]:
        yield self
        yield from self.pattern.subpatterns()

    def _key(self) -> tuple:
        return (self.pattern, self.projection)

    def __repr__(self) -> str:
        return f"Select({self.pattern!r}, projection={self.projection!r})"

    def __str__(self) -> str:
        names = " ".join(str(v) for v in self.projection)
        return f"(SELECT {names} WHERE {self.pattern})"


def is_safe(pattern: GraphPattern) -> bool:
    """Safety: every FILTER condition only uses variables of its own pattern."""
    for sub in pattern.subpatterns():
        if isinstance(sub, Filter) and not sub.condition.variables() <= sub.pattern.variables():
            return False
    return True


def find_extended_violation(pattern: GraphPattern) -> Optional[WellDesignedViolation]:
    """Well-designedness for the extended fragment.

    Conditions (following Pérez et al.): at most one top-level SELECT; below
    it, a UNION combination of patterns where (i) every FILTER is safe and
    (ii) for every OPT subpattern the usual variable condition holds, with
    FILTER variables counting as occurrences.
    """
    if isinstance(pattern, Select):
        pattern = pattern.pattern
    # No nested SELECT.
    for sub in pattern.subpatterns():
        if isinstance(sub, Select):
            return WellDesignedViolation(path=(), variable=None, kind="nested-select")
    if not is_safe(pattern):
        return WellDesignedViolation(path=(), variable=None, kind="unsafe-filter")
    # Reduce to the core check by replacing FILTER subpatterns with their
    # operand AND'ed with pseudo-occurrences of the condition variables: for
    # the OPT condition it suffices to treat vars(R) as occurring at the
    # FILTER's position, which replacing the node by its operand already does
    # because safety guarantees vars(R) ⊆ vars(P).
    stripped = _strip_filters(pattern)
    from .well_designed import find_violation

    return find_violation(stripped)


def _strip_filters(pattern: GraphPattern) -> GraphPattern:
    if isinstance(pattern, Filter):
        return _strip_filters(pattern.pattern)
    if isinstance(pattern, And):
        return And(_strip_filters(pattern.left), _strip_filters(pattern.right))
    if isinstance(pattern, Opt):
        return Opt(_strip_filters(pattern.left), _strip_filters(pattern.right))
    if isinstance(pattern, Union):
        return Union(_strip_filters(pattern.left), _strip_filters(pattern.right))
    return pattern


def is_well_designed_extended(pattern: GraphPattern) -> bool:
    """``True`` iff the extended pattern is well-designed (and safe)."""
    return find_extended_violation(pattern) is None


def check_well_designed_extended(pattern: GraphPattern) -> None:
    """Raise :class:`NotWellDesignedError` unless the extended pattern is
    well-designed and safe."""
    violation = find_extended_violation(pattern)
    if violation is not None:
        raise NotWellDesignedError(
            f"extended pattern is not well-designed: {violation.kind}", violation=violation
        )


def core_fragment_of(pattern: GraphPattern) -> GraphPattern:
    """Return the AND/OPT/UNION core of an extended pattern.

    A single top-level SELECT is stripped (its projection is ignored by the
    structural machinery); FILTER anywhere raises, because the paper's width
    measures are not defined — and provably cannot give a dichotomy — for the
    FILTER fragment.
    """
    if isinstance(pattern, Select):
        pattern = pattern.pattern
    for sub in pattern.subpatterns():
        if isinstance(sub, Filter):
            raise NotWellDesignedError(
                "the structural algorithms operate on the AND/OPT/UNION fragment; "
                "FILTER is only supported by the naive evaluator"
            )
        if isinstance(sub, Select):
            raise NotWellDesignedError("SELECT may only appear at the top of the pattern")
    return pattern
