"""FILTER conditions (built-in constraints).

Section 5 of the paper discusses the FILTER operator: well-designed patterns
with FILTER can express conjunctive queries with inequalities, and the clean
PTIME / W[1]-hard dichotomy of Theorem 3 provably fails once FILTER is
allowed.  This module provides the condition language needed to state and
experiment with that discussion:

* comparisons between variables and constants (``=``, ``!=``),
* ``BOUND(?x)``,
* boolean combinations (``&&``, ``||``, ``!``).

Conditions are evaluated against solution mappings with the standard
three-valued error handling collapsed to "unbound comparisons are false"
(sufficient for the fragment studied here and documented as such).
"""

from __future__ import annotations

from typing import Optional

from ..rdf.terms import GroundTerm, Term, Variable, is_ground_term
from ..rdf.triples import coerce_term
from .mappings import Mapping

__all__ = [
    "FilterCondition",
    "Comparison",
    "Bound",
    "NotCondition",
    "AndCondition",
    "OrCondition",
    "eq",
    "neq",
    "bound",
]


class FilterCondition:
    """Abstract base class of FILTER conditions."""

    __slots__ = ()

    def evaluate(self, mapping: Mapping) -> bool:
        """Truth value of the condition under the mapping."""
        raise NotImplementedError

    def variables(self) -> frozenset[Variable]:
        """The variables mentioned by the condition (``vars(R)``)."""
        raise NotImplementedError

    # --- combinators ---------------------------------------------------------
    def __and__(self, other: "FilterCondition") -> "AndCondition":
        return AndCondition(self, other)

    def __or__(self, other: "FilterCondition") -> "OrCondition":
        return OrCondition(self, other)

    def __invert__(self) -> "NotCondition":
        return NotCondition(self)

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))


class Comparison(FilterCondition):
    """``left OP right`` where OP is ``=`` or ``!=`` and the operands are
    variables or ground terms."""

    __slots__ = ("left", "right", "operator")

    OPERATORS = ("=", "!=")

    def __init__(self, left: Term, right: Term, operator: str) -> None:
        if operator not in self.OPERATORS:
            raise ValueError(f"unsupported comparison operator {operator!r}")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "operator", operator)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("filter conditions are immutable")

    def _resolve(self, term: Term, mapping: Mapping) -> Optional[GroundTerm]:
        if isinstance(term, Variable):
            return mapping.get(term)
        assert is_ground_term(term)
        return term

    def evaluate(self, mapping: Mapping) -> bool:
        left = self._resolve(self.left, mapping)
        right = self._resolve(self.right, mapping)
        if left is None or right is None:
            # An unbound operand makes the comparison an error; errors are
            # filtered out, i.e. treated as false.
            return False
        return (left == right) if self.operator == "=" else (left != right)

    def variables(self) -> frozenset[Variable]:
        return frozenset(t for t in (self.left, self.right) if isinstance(t, Variable))

    def _key(self) -> tuple:
        return (self.left, self.right, self.operator)

    def __repr__(self) -> str:
        return f"Comparison({self.left} {self.operator} {self.right})"

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


class Bound(FilterCondition):
    """``BOUND(?x)`` — true when the variable is bound by the mapping."""

    __slots__ = ("variable",)

    def __init__(self, variable: Variable) -> None:
        if not isinstance(variable, Variable):
            raise TypeError("BOUND takes a variable")
        object.__setattr__(self, "variable", variable)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("filter conditions are immutable")

    def evaluate(self, mapping: Mapping) -> bool:
        return self.variable in mapping

    def variables(self) -> frozenset[Variable]:
        return frozenset({self.variable})

    def _key(self) -> tuple:
        return (self.variable,)

    def __repr__(self) -> str:
        return f"Bound({self.variable})"

    def __str__(self) -> str:
        return f"BOUND({self.variable})"


class NotCondition(FilterCondition):
    """Negation ``!R``."""

    __slots__ = ("operand",)

    def __init__(self, operand: FilterCondition) -> None:
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("filter conditions are immutable")

    def evaluate(self, mapping: Mapping) -> bool:
        return not self.operand.evaluate(mapping)

    def variables(self) -> frozenset[Variable]:
        return self.operand.variables()

    def _key(self) -> tuple:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(! {self.operand})"


class _BinaryCondition(FilterCondition):
    __slots__ = ("left", "right")
    CONNECTIVE = "?"

    def __init__(self, left: FilterCondition, right: FilterCondition) -> None:
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("filter conditions are immutable")

    def variables(self) -> frozenset[Variable]:
        return self.left.variables() | self.right.variables()

    def _key(self) -> tuple:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.CONNECTIVE} {self.right})"


class AndCondition(_BinaryCondition):
    """Conjunction ``R1 && R2``."""

    __slots__ = ()
    CONNECTIVE = "&&"

    def evaluate(self, mapping: Mapping) -> bool:
        return self.left.evaluate(mapping) and self.right.evaluate(mapping)


class OrCondition(_BinaryCondition):
    """Disjunction ``R1 || R2``."""

    __slots__ = ()
    CONNECTIVE = "||"

    def evaluate(self, mapping: Mapping) -> bool:
        return self.left.evaluate(mapping) or self.right.evaluate(mapping)


def eq(left: object, right: object) -> Comparison:
    """``left = right`` over terms or convenience strings (``"?x"``, IRIs)."""
    return Comparison(coerce_term(left), coerce_term(right), "=")


def neq(left: object, right: object) -> Comparison:
    """``left != right``."""
    return Comparison(coerce_term(left), coerce_term(right), "!=")


def bound(variable: object) -> Bound:
    """``BOUND(?x)``."""
    term = coerce_term(variable)
    if not isinstance(term, Variable):
        raise TypeError("BOUND takes a variable")
    return Bound(term)
