"""Solution mappings.

A *mapping* ``µ`` is a partial function from variables to ground terms.  This
module provides the immutable :class:`Mapping` value object together with the
compatibility and merge operations that define the SPARQL algebra of Pérez et
al. (and which the paper relies on throughout).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping as TMapping, Optional, Tuple

from ..rdf.terms import GroundTerm, Variable, is_ground_term
from ..rdf.triples import Triple, TriplePattern
from ..exceptions import EvaluationError

__all__ = ["Mapping", "compatible", "merge", "join_sets", "left_outer_join_sets", "union_sets"]


class Mapping:
    """An immutable partial function from variables to ground terms.

    >>> mu = Mapping({Variable("x"): IRI("http://example.org/a")})
    >>> Variable("x") in mu
    True
    >>> mu.is_compatible_with(Mapping({}))
    True
    """

    __slots__ = ("_bindings", "_hash")

    EMPTY: "Mapping"

    def __init__(self, bindings: TMapping[Variable, GroundTerm] | Iterable[Tuple[Variable, GroundTerm]] = ()) -> None:
        items: Dict[Variable, GroundTerm] = dict(bindings)
        for var, value in items.items():
            if not isinstance(var, Variable):
                raise TypeError(f"mapping keys must be variables, got {var!r}")
            if not is_ground_term(value):
                raise TypeError(f"mapping values must be ground terms, got {value!r}")
        object.__setattr__(self, "_bindings", items)
        object.__setattr__(self, "_hash", hash(frozenset(items.items())))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Mapping instances are immutable")

    def __reduce__(self):
        return (Mapping, (dict(self._bindings),))

    # --- constructors ---------------------------------------------------------
    @classmethod
    def of(cls, **bindings: object) -> "Mapping":
        """Convenience constructor: ``Mapping.of(x="http://e.org/a")``."""
        from ..rdf.triples import coerce_term

        items = {}
        for name, value in bindings.items():
            term = coerce_term(value)
            if isinstance(term, Variable):
                raise TypeError("mapping values must be ground terms")
            items[Variable(name)] = term
        return cls(items)

    # --- dict-like protocol ----------------------------------------------------
    def __getitem__(self, var: Variable) -> GroundTerm:
        return self._bindings[var]

    def get(self, var: Variable, default: Optional[GroundTerm] = None) -> Optional[GroundTerm]:
        return self._bindings.get(var, default)

    def __contains__(self, var: object) -> bool:
        return var in self._bindings

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def items(self) -> Iterable[Tuple[Variable, GroundTerm]]:
        return self._bindings.items()

    def as_dict(self) -> Dict[Variable, GroundTerm]:
        """A plain mutable copy of the bindings."""
        return dict(self._bindings)

    def domain(self) -> frozenset[Variable]:
        """``dom(µ)``."""
        return frozenset(self._bindings)

    # --- equality ----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Mapping) and self._bindings == other._bindings

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{var}={value}" for var, value in sorted(self._bindings.items(), key=lambda kv: kv[0].name)
        )
        return f"Mapping({{{inner}}})"

    # --- algebra -------------------------------------------------------------------
    def is_compatible_with(self, other: "Mapping") -> bool:
        """``µ1 ~ µ2``: the mappings agree on their common domain."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        for var, value in small.items():
            other_value = large.get(var)
            if other_value is not None and other_value != value:
                return False
        return True

    def merge(self, other: "Mapping") -> "Mapping":
        """``µ1 ∪ µ2`` for compatible mappings."""
        if not self.is_compatible_with(other):
            raise EvaluationError(f"cannot merge incompatible mappings {self} and {other}")
        combined = dict(self._bindings)
        combined.update(other._bindings)
        return Mapping(combined)

    def restrict(self, variables: Iterable[Variable]) -> "Mapping":
        """The restriction ``µ|V`` of the mapping to a set of variables."""
        keep = set(variables)
        return Mapping({v: t for v, t in self._bindings.items() if v in keep})

    def extend(self, var: Variable, value: GroundTerm) -> "Mapping":
        """A new mapping additionally binding *var* to *value*."""
        if var in self._bindings and self._bindings[var] != value:
            raise EvaluationError(f"variable {var} already bound to a different value")
        combined = dict(self._bindings)
        combined[var] = value
        return Mapping(combined)

    def apply(self, pattern: TriplePattern) -> Triple:
        """``µ(t)`` — instantiate a triple pattern into a ground triple."""
        return pattern.apply(self._bindings)

    def covers(self, pattern: TriplePattern) -> bool:
        """``vars(t) ⊆ dom(µ)``."""
        return pattern.variables() <= self.domain()


Mapping.EMPTY = Mapping({})


def compatible(mu1: Mapping, mu2: Mapping) -> bool:
    """Module-level alias of :meth:`Mapping.is_compatible_with`."""
    return mu1.is_compatible_with(mu2)


def merge(mu1: Mapping, mu2: Mapping) -> Mapping:
    """Module-level alias of :meth:`Mapping.merge`."""
    return mu1.merge(mu2)


def join_sets(omega1: Iterable[Mapping], omega2: Iterable[Mapping]) -> set[Mapping]:
    """``Ω1 ⋈ Ω2``: all merges of compatible pairs."""
    omega2 = list(omega2)
    result: set[Mapping] = set()
    for mu1 in omega1:
        for mu2 in omega2:
            if mu1.is_compatible_with(mu2):
                result.add(mu1.merge(mu2))
    return result


def left_outer_join_sets(omega1: Iterable[Mapping], omega2: Iterable[Mapping]) -> set[Mapping]:
    """``Ω1 ⟕ Ω2`` — the OPTIONAL semantics: join where possible, keep µ1 otherwise."""
    omega2 = list(omega2)
    result: set[Mapping] = set()
    for mu1 in omega1:
        extended = False
        for mu2 in omega2:
            if mu1.is_compatible_with(mu2):
                result.add(mu1.merge(mu2))
                extended = True
        if not extended:
            result.add(mu1)
    return result


def union_sets(omega1: Iterable[Mapping], omega2: Iterable[Mapping]) -> set[Mapping]:
    """``Ω1 ∪ Ω2``."""
    return set(omega1) | set(omega2)
