"""A parser and serialiser for a compact textual graph-pattern syntax.

The syntax mirrors the algebraic formalisation of Pérez et al. used in the
paper rather than the full W3C grammar:

* a triple pattern is written ``(?x <http://example.org/p> ?y)``; bare
  identifiers are shorthand for IRIs, so ``(?x p ?y)`` also works;
* ``AND``, ``OPT`` (or ``OPTIONAL``) and ``UNION`` combine patterns and are
  left-associative with equal precedence; parentheses group;
* string literals are written ``"value"``.

Example::

    ((?x p ?y) OPT (?z q ?x)) UNION ((?x p ?y) AND (?y r ?w))
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple, Optional

from .algebra import And, GraphPattern, Opt, TriplePatternNode, Union
from ..exceptions import ParseError
from ..rdf.terms import IRI, Literal, Term, Variable
from ..rdf.triples import TriplePattern

__all__ = ["parse_pattern", "to_text"]


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<lparen>\()
    | (?P<rparen>\))
    | (?P<iri_ref><[^>\s]+>)
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
    | (?P<word>[A-Za-z_][A-Za-z0-9_:/.#-]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OPT", "OPTIONAL", "UNION"}


def _tokenize(text: str) -> Iterator[_Token]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position=position)
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        yield _Token(kind, match.group(), match.start())
    yield _Token("eof", "", len(text))


class _Parser:
    """Recursive-descent parser for the pattern grammar."""

    def __init__(self, text: str) -> None:
        self._tokens: List[_Token] = list(_tokenize(text))
        self._index = 0

    # --- token helpers -----------------------------------------------------
    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._advance()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, got {token.value!r}", position=token.position)
        return token

    # --- grammar ------------------------------------------------------------
    def parse(self) -> GraphPattern:
        pattern = self._parse_expression()
        trailing = self._peek()
        if trailing.kind != "eof":
            raise ParseError(f"trailing input {trailing.value!r}", position=trailing.position)
        return pattern

    def _parse_expression(self) -> GraphPattern:
        left = self._parse_atom()
        while True:
            token = self._peek()
            if token.kind == "word" and token.value.upper() in _KEYWORDS:
                self._advance()
                right = self._parse_atom()
                operator = token.value.upper()
                if operator == "AND":
                    left = And(left, right)
                elif operator in ("OPT", "OPTIONAL"):
                    left = Opt(left, right)
                else:
                    left = Union(left, right)
            else:
                return left

    def _parse_atom(self) -> GraphPattern:
        token = self._peek()
        if token.kind != "lparen":
            raise ParseError(f"expected '(', got {token.value!r}", position=token.position)
        # Disambiguate triple pattern vs. grouped expression: a triple pattern
        # starts with a term token right after the parenthesis, a group starts
        # with another parenthesis.
        if self._peek(1).kind in ("var", "iri_ref", "string", "word") and (
            self._peek(1).kind != "word" or self._peek(1).value.upper() not in _KEYWORDS
        ):
            return self._parse_triple()
        self._expect("lparen")
        inner = self._parse_expression()
        self._expect("rparen")
        return inner

    def _parse_triple(self) -> TriplePatternNode:
        self._expect("lparen")
        terms = [self._parse_term(), self._parse_term(), self._parse_term()]
        self._expect("rparen")
        return TriplePatternNode(TriplePattern(*terms))

    def _parse_term(self) -> Term:
        token = self._advance()
        if token.kind == "var":
            return Variable(token.value)
        if token.kind == "iri_ref":
            return IRI(token.value[1:-1])
        if token.kind == "string":
            raw = token.value[1:-1]
            return Literal(raw.encode("utf-8").decode("unicode_escape"))
        if token.kind == "word":
            if token.value.upper() in _KEYWORDS:
                raise ParseError(
                    f"keyword {token.value!r} cannot be used as a term", position=token.position
                )
            return IRI(token.value)
        raise ParseError(f"expected a term, got {token.value!r}", position=token.position)


def parse_pattern(text: str) -> GraphPattern:
    """Parse the textual syntax into a :class:`GraphPattern`.

    >>> p = parse_pattern("((?x p ?y) OPT (?y q ?z))")
    >>> sorted(str(v) for v in p.variables())
    ['?x', '?y', '?z']
    """
    return _Parser(text).parse()


def _term_to_text(term: Term) -> str:
    if isinstance(term, Variable):
        return str(term)
    if isinstance(term, IRI):
        # Keep the short form when the IRI looks like a bare word.
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_:/.#-]*", term.value):
            return term.value
        return f"<{term.value}>"
    if isinstance(term, Literal):
        return f'"{term.value}"'
    raise TypeError(f"not a term: {term!r}")


def to_text(pattern: GraphPattern) -> str:
    """Serialise a pattern back into the textual syntax accepted by
    :func:`parse_pattern` (round-trips modulo whitespace)."""
    if isinstance(pattern, TriplePatternNode):
        t = pattern.triple_pattern
        return f"({_term_to_text(t.subject)} {_term_to_text(t.predicate)} {_term_to_text(t.object)})"
    if isinstance(pattern, And):
        return f"({to_text(pattern.left)} AND {to_text(pattern.right)})"
    if isinstance(pattern, Opt):
        return f"({to_text(pattern.left)} OPT {to_text(pattern.right)})"
    if isinstance(pattern, Union):
        return f"({to_text(pattern.left)} UNION {to_text(pattern.right)})"
    raise TypeError(f"not a graph pattern: {pattern!r}")
