"""Well-designedness checking and UNION normal form.

A UNION-free pattern ``P`` is *well-designed* when for every subpattern
``P' = (P1 OPT P2)`` of ``P``, every variable occurring in ``P2`` but not in
``P1`` does not occur outside ``P'`` in ``P``.  A general pattern is
well-designed when it is of the form ``P1 UNION ... UNION Pm`` (UNION only at
the top) with every ``Pi`` UNION-free and well-designed.

The functions here check the condition, report violations precisely (for
error messages and for tests that exercise the negative cases), and extract
the UNION normal form used by the pattern-forest translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .algebra import And, GraphPattern, Opt, TriplePatternNode, Union
from ..exceptions import NotWellDesignedError
from ..rdf.terms import Variable

__all__ = [
    "WellDesignedViolation",
    "find_violation",
    "is_well_designed",
    "check_well_designed",
    "union_operands",
    "is_union_free_well_designed",
]

#: A path addresses a subpattern: a sequence of 0 (left operand) / 1 (right operand).
Path = Tuple[int, ...]


@dataclass(frozen=True)
class WellDesignedViolation:
    """A witness that a pattern is not well-designed.

    Attributes
    ----------
    path:
        The path (sequence of 0/1 operand choices) of the offending OPT
        subpattern, or of the nested UNION when ``kind == "nested-union"``.
    variable:
        The variable violating the condition (``None`` for nested unions).
    kind:
        Either ``"opt-variable"`` or ``"nested-union"``.
    """

    path: Path
    variable: Optional[Variable]
    kind: str

    def describe(self) -> str:
        """A human-readable description of the violation."""
        if self.kind == "nested-union":
            return f"UNION operator nested below AND/OPT at path {list(self.path)}"
        return (
            f"variable {self.variable} occurs in the optional side of the OPT at path "
            f"{list(self.path)}, not in its mandatory side, and again outside that subpattern"
        )


def _subpatterns_with_paths(pattern: GraphPattern, prefix: Path = ()) -> Iterator[Tuple[Path, GraphPattern]]:
    """Enumerate (path, subpattern) pairs in pre-order."""
    yield prefix, pattern
    if isinstance(pattern, (And, Opt, Union)):
        yield from _subpatterns_with_paths(pattern.left, prefix + (0,))
        yield from _subpatterns_with_paths(pattern.right, prefix + (1,))


def _variables_outside(pattern: GraphPattern, excluded_path: Path) -> frozenset[Variable]:
    """Variables occurring in *pattern* outside the subpattern at *excluded_path*."""
    result: set[Variable] = set()
    for path, sub in _subpatterns_with_paths(pattern):
        if isinstance(sub, TriplePatternNode):
            inside = len(path) >= len(excluded_path) and path[: len(excluded_path)] == excluded_path
            if not inside:
                result.update(sub.variables())
    return frozenset(result)


def _find_union_free_violation(pattern: GraphPattern) -> Optional[WellDesignedViolation]:
    """Check the OPT condition for a UNION-free pattern."""
    for path, sub in _subpatterns_with_paths(pattern):
        if isinstance(sub, Union):
            return WellDesignedViolation(path=path, variable=None, kind="nested-union")
        if isinstance(sub, Opt):
            dangerous = sub.right.variables() - sub.left.variables()
            if not dangerous:
                continue
            outside = _variables_outside(pattern, path)
            for variable in sorted(dangerous, key=lambda v: v.name):
                if variable in outside:
                    return WellDesignedViolation(path=path, variable=variable, kind="opt-variable")
    return None


def union_operands(pattern: GraphPattern) -> List[GraphPattern]:
    """The operands ``P1, ..., Pm`` of the top-level UNION normal form.

    UNION operators may only appear at the top of the pattern; this function
    does not check well-designedness of the operands (use
    :func:`check_well_designed` for the full check).
    """
    if isinstance(pattern, Union):
        return union_operands(pattern.left) + union_operands(pattern.right)
    return [pattern]


def find_violation(pattern: GraphPattern) -> Optional[WellDesignedViolation]:
    """Return a violation witness, or ``None`` when the pattern is well-designed."""
    for operand in union_operands(pattern):
        violation = _find_union_free_violation(operand)
        if violation is not None:
            return violation
    return None


def is_well_designed(pattern: GraphPattern) -> bool:
    """``True`` iff *pattern* is a well-designed graph pattern.

    >>> from .parser import parse_pattern
    >>> is_well_designed(parse_pattern("((?x p ?y) OPT (?z q ?x))"))
    True
    >>> is_well_designed(parse_pattern(
    ...     "(((?x p ?y) OPT (?z q ?x)) OPT ((?y r ?z) AND (?z r ?w)))"))
    False
    """
    return find_violation(pattern) is None


def is_union_free_well_designed(pattern: GraphPattern) -> bool:
    """``True`` iff the pattern is UNION-free and well-designed."""
    return pattern.is_union_free() and is_well_designed(pattern)


def check_well_designed(pattern: GraphPattern) -> None:
    """Raise :class:`NotWellDesignedError` (with a witness) unless well-designed."""
    violation = find_violation(pattern)
    if violation is not None:
        raise NotWellDesignedError(
            f"pattern is not well-designed: {violation.describe()}", violation=violation
        )
