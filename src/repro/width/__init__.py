"""Width measures: domination width, branch treewidth and local width."""

from .domination import (
    is_dominating_set,
    is_k_dominated,
    minimum_domination_level,
    domination_width,
    domination_width_of_pattern,
    has_domination_width_at_most,
)
from .branch import branch_gtgraph, branch_treewidth, branch_treewidth_of_pattern
from .local import local_node_gtgraph, local_width, local_width_of_forest, local_width_of_pattern
from .classify import TractabilityReport, classify_pattern, classify_forest, classify_family, FamilyClassification

__all__ = [
    "is_dominating_set",
    "is_k_dominated",
    "minimum_domination_level",
    "domination_width",
    "domination_width_of_pattern",
    "has_domination_width_at_most",
    "branch_gtgraph",
    "branch_treewidth",
    "branch_treewidth_of_pattern",
    "local_node_gtgraph",
    "local_width",
    "local_width_of_pattern",
    "local_width_of_forest",
    "TractabilityReport",
    "classify_pattern",
    "classify_forest",
    "classify_family",
    "FamilyClassification",
]
