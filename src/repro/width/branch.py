"""Branch treewidth (Definition 3 of the paper).

For a wdPT ``T`` and a non-root node ``n``, the *branch* ``B_n`` is the set
of nodes on the path from the root to the parent of ``n``; the branch
t-graph is ``S^br_n = pat(n) ∪ ⋃_{n' ∈ B_n} pat(n')`` with distinguished
variables ``X^br_n = vars(⋃_{n' ∈ B_n} pat(n'))``.  The branch treewidth
``bw(T)`` is the least ``k`` bounding ``ctw(S^br_n, X^br_n)`` for every
non-root node ``n``.

Proposition 5 of the paper shows that for UNION-free well-designed patterns
``dw(P) = bw(P)``; the equality is exercised in the tests and in the
Proposition 5 benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hom.tgraph import GeneralizedTGraph
from ..hom.treewidth import ctw
from ..patterns.build import build_wdpt, wdpf
from ..patterns.tree import WDPatternTree
from ..sparql.algebra import GraphPattern
from ..exceptions import WidthComputationError

__all__ = ["branch_gtgraph", "branch_treewidth", "branch_treewidth_of_pattern"]


def branch_gtgraph(tree: WDPatternTree, node: int) -> GeneralizedTGraph:
    """The generalised t-graph ``(S^br_n, X^br_n)`` of a non-root node."""
    if node == tree.root:
        raise WidthComputationError("the root has no branch t-graph")
    branch_nodes = tree.branch(node)
    branch_pat = tree.pat_of_nodes(branch_nodes)
    full = branch_pat.union(tree.pat(node))
    return GeneralizedTGraph(full, branch_pat.variables())


def branch_treewidth(tree: WDPatternTree, per_node: Optional[Dict[int, int]] = None) -> int:
    """``bw(T)``: the maximum over non-root nodes of ``ctw(S^br_n, X^br_n)``
    (at least 1; a single-node tree has branch treewidth 1)."""
    width = 1
    for node in tree.node_ids():
        if node == tree.root:
            continue
        node_width = max(1, ctw(branch_gtgraph(tree, node)))
        if per_node is not None:
            per_node[node] = node_width
        width = max(width, node_width)
    return width


def branch_treewidth_of_pattern(pattern: GraphPattern) -> int:
    """``bw(P)`` for a UNION-free well-designed pattern."""
    if not pattern.is_union_free():
        raise WidthComputationError("branch treewidth is defined for UNION-free patterns")
    return branch_treewidth(build_wdpt(pattern))
