"""Tractability classification of well-designed queries and query classes.

This is the user-facing wrapper around the paper's Theorem 3: given a query
(or a parametrised family of queries), compute the width measures and report
on which side of the tractability frontier it falls, together with the width
bound to hand to the Theorem 1 evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from .branch import branch_treewidth
from .domination import domination_width
from .local import local_width_of_forest
from ..patterns.build import wdpf
from ..patterns.forest import WDPatternForest
from ..patterns.tree import WDPatternTree
from ..sparql.algebra import GraphPattern

__all__ = ["TractabilityReport", "classify_pattern", "classify_forest", "classify_family"]


@dataclass(frozen=True)
class TractabilityReport:
    """The width profile of a single query.

    Attributes
    ----------
    domination_width:
        ``dw(P)`` — the measure that characterises tractability (Theorem 3).
    branch_treewidth:
        ``bw(P)`` for UNION-free queries (equal to ``dw`` by Proposition 5),
        ``None`` otherwise.
    local_width:
        The local-tractability measure of Letelier et al.
    locally_tractable_at:
        The smallest bound under which the query is locally tractable
        (= ``local_width``); kept explicit for readability of reports.
    """

    domination_width: int
    branch_treewidth: Optional[int]
    local_width: int

    @property
    def recommended_pebble_width(self) -> int:
        """The width bound to pass to the Theorem 1 evaluator
        (``forest_contains_pebble`` / ``Engine(width_bound=...)``)."""
        return self.domination_width

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [f"dw={self.domination_width}"]
        if self.branch_treewidth is not None:
            parts.append(f"bw={self.branch_treewidth}")
        parts.append(f"local={self.local_width}")
        return ", ".join(parts)


def classify_forest(forest: WDPatternForest) -> TractabilityReport:
    """Width profile of a pattern forest."""
    bw: Optional[int] = None
    if len(forest) == 1:
        bw = branch_treewidth(forest[0])
    return TractabilityReport(
        domination_width=domination_width(forest),
        branch_treewidth=bw,
        local_width=local_width_of_forest(forest),
    )


def classify_pattern(pattern: GraphPattern) -> TractabilityReport:
    """Width profile of a well-designed graph pattern."""
    return classify_forest(wdpf(pattern))


@dataclass(frozen=True)
class FamilyClassification:
    """Classification of a parametrised class ``C = {P_k | k ∈ ks}``.

    ``bounded`` is the empirical verdict over the sampled parameters: the
    class is reported as bounded when the domination width does not grow over
    the sample.  (For a genuinely infinite class this is of course only
    evidence, not a proof — the paper's measure is about the supremum.)
    """

    parameters: Sequence[int]
    reports: Sequence[TractabilityReport]
    bounded: bool
    width_bound: Optional[int]

    def table(self) -> str:
        """Render the per-parameter profile as a small text table."""
        lines = ["  k | dw | bw | local"]
        for k, report in zip(self.parameters, self.reports):
            bw = report.branch_treewidth if report.branch_treewidth is not None else "-"
            lines.append(f"{k:>3} | {report.domination_width:>2} | {bw:>2} | {report.local_width:>5}")
        verdict = (
            f"bounded domination width (<= {self.width_bound}): PTIME by Theorem 1"
            if self.bounded
            else "domination width grows: not PTIME unless FPT = W[1] (Theorem 2)"
        )
        lines.append(verdict)
        return "\n".join(lines)


def classify_family(
    family: Callable[[int], "WDPatternForest | WDPatternTree | GraphPattern"],
    parameters: Iterable[int],
) -> FamilyClassification:
    """Classify a parametrised family of queries (e.g. the paper's ``F_k``)."""
    parameters = list(parameters)
    reports: List[TractabilityReport] = []
    for k in parameters:
        member = family(k)
        if isinstance(member, WDPatternForest):
            reports.append(classify_forest(member))
        elif isinstance(member, WDPatternTree):
            reports.append(classify_forest(WDPatternForest([member])))
        else:
            reports.append(classify_pattern(member))
    widths = [report.domination_width for report in reports]
    bounded = len(set(widths)) <= 1
    return FamilyClassification(
        parameters=parameters,
        reports=reports,
        bounded=bounded,
        width_bound=max(widths) if bounded and widths else None,
    )
