"""Domination width (Definition 2 of the paper).

For a wdPF ``F``, ``dw(F)`` is the least ``k ≥ 1`` such that for every
subtree ``T`` of ``F`` the set ``GtG(T)`` is *k-dominated*: the generalised
t-graphs of core treewidth at most ``k`` form a dominating set with respect
to the homomorphism relation ``→`` (every member of ``GtG(T)`` is the
homomorphic image of a member of core treewidth ≤ k).

For a well-designed graph pattern ``P``, ``dw(P) = dw(wdpf(P))``.

Computing the measure is inherently expensive (the recognition problem is
NP-hard already in the UNION-free case), so the functions here enumerate
subtrees and valid children assignments explicitly; they are meant for
query-sized inputs, which is all the paper's theory needs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..hom.homomorphism import maps_to
from ..hom.tgraph import GeneralizedTGraph
from ..hom.treewidth import ctw
from ..patterns.build import wdpf
from ..patterns.forest import WDPatternForest
from ..patterns.gtg import gtg
from ..patterns.tree import Subtree
from ..sparql.algebra import GraphPattern
from ..exceptions import WidthComputationError

__all__ = [
    "is_dominating_set",
    "is_k_dominated",
    "minimum_domination_level",
    "domination_width",
    "domination_width_of_pattern",
    "has_domination_width_at_most",
]


def is_dominating_set(
    candidates: Iterable[GeneralizedTGraph], collection: Iterable[GeneralizedTGraph]
) -> bool:
    """``True`` when every member of *collection* is dominated (receives a
    homomorphism) by some member of *candidates*."""
    candidates = list(candidates)
    for member in collection:
        if member in candidates:
            continue
        if not any(maps_to(candidate, member) for candidate in candidates):
            return False
    return True


def is_k_dominated(collection: Iterable[GeneralizedTGraph], k: int) -> bool:
    """Definition 1: the members of core treewidth ≤ k dominate the collection."""
    collection = list(collection)
    low_width = [member for member in collection if ctw(member) <= k]
    return is_dominating_set(low_width, collection)


def minimum_domination_level(collection: Iterable[GeneralizedTGraph]) -> int:
    """The least ``k ≥ 1`` such that the collection is k-dominated.

    The empty collection is trivially 1-dominated.
    """
    collection = list(collection)
    if not collection:
        return 1
    widths = sorted({max(1, ctw(member)) for member in collection})
    for k in widths:
        if is_k_dominated(collection, k):
            return max(1, k)
    # The collection is always dominated by itself at the maximal width.
    return max(1, widths[-1])


def domination_width(
    forest: WDPatternForest, per_subtree: Optional[Dict[Tuple[int, FrozenSet[int]], int]] = None
) -> int:
    """``dw(F)`` — the domination width of a pattern forest.

    When *per_subtree* is supplied it is filled with the minimum domination
    level of every subtree (keyed by ``(tree_index, node_set)``), which the
    experiment harness uses for reporting.
    """
    if not forest.is_nr_normal_form():
        raise WidthComputationError(
            "domination width is defined for forests in NR normal form; "
            "call to_nr_normal_form() first"
        )
    width = 1
    for tree_index, subtree in forest.subtrees():
        level = minimum_domination_level(gtg(forest, subtree))
        if per_subtree is not None:
            per_subtree[(tree_index, subtree.nodes)] = level
        width = max(width, level)
    return width


def domination_width_of_pattern(pattern: GraphPattern) -> int:
    """``dw(P) = dw(wdpf(P))`` for a well-designed graph pattern."""
    return domination_width(wdpf(pattern))


def has_domination_width_at_most(forest: WDPatternForest, k: int) -> bool:
    """Decide ``dw(F) ≤ k`` without computing the exact width (stops early)."""
    if k < 1:
        return False
    for _, subtree in forest.subtrees():
        if not is_k_dominated(gtg(forest, subtree), k):
            return False
    return True
