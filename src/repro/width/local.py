"""Local tractability (Letelier et al.), the baseline tractable restriction.

A class ``C`` is *locally tractable* when there is a constant ``k`` such
that for every pattern, every non-root node ``n`` of every tree of its wdPF
satisfies ``ctw(pat(n), vars(n) ∩ vars(n')) ≤ k`` where ``n'`` is the parent
of ``n``.  The corresponding per-pattern measure — the *local width* — is
computed here.  The paper shows bounded domination width strictly
generalises bounded local width (Example 5 and the Section 3.2 family), a
gap exercised by the E2/E5/E8 experiments.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hom.tgraph import GeneralizedTGraph
from ..hom.treewidth import ctw
from ..patterns.build import wdpf
from ..patterns.forest import WDPatternForest
from ..patterns.tree import WDPatternTree
from ..sparql.algebra import GraphPattern

__all__ = ["local_node_gtgraph", "local_width", "local_width_of_forest", "local_width_of_pattern"]


def local_node_gtgraph(tree: WDPatternTree, node: int) -> GeneralizedTGraph:
    """The generalised t-graph ``(pat(n), vars(n) ∩ vars(n'))`` of a non-root node."""
    parent = tree.parent_of(node)
    if parent is None:
        raise ValueError("the root has no local t-graph")
    shared = tree.vars(node) & tree.vars(parent)
    return GeneralizedTGraph(tree.pat(node), shared)


def local_width(tree: WDPatternTree, per_node: Optional[Dict[int, int]] = None) -> int:
    """The local width of a single wdPT (at least 1)."""
    width = 1
    for node in tree.node_ids():
        if node == tree.root:
            continue
        node_width = max(1, ctw(local_node_gtgraph(tree, node)))
        if per_node is not None:
            per_node[node] = node_width
        width = max(width, node_width)
    return width


def local_width_of_forest(forest: WDPatternForest) -> int:
    """The local width of a forest: the maximum over its trees."""
    return max(local_width(tree) for tree in forest)


def local_width_of_pattern(pattern: GraphPattern) -> int:
    """The local width of a well-designed graph pattern via its wdPF."""
    return local_width_of_forest(wdpf(pattern))
