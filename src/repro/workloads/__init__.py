"""Workload generators: the paper's query families, random well-designed
patterns and CLIQUE instances."""

from .families import (
    example1_patterns,
    example2_pattern,
    kk_tgraph,
    example3_gtgraphs,
    fk_forest,
    fk_pattern,
    tprime_tree,
    tprime_pattern,
    hard_clique_tree,
    hard_clique_pattern,
    chain_tree,
    chain_pattern,
    fk_data_graph,
    tprime_data_graph,
    clique_query_data_graph,
)
from .random_patterns import (
    random_wd_tree,
    random_wd_forest,
    random_wd_pattern,
    random_union_pattern,
)
from .clique_instances import (
    random_host_graph,
    plant_clique,
    clique_instance,
    has_clique_bruteforce,
)

__all__ = [
    "example1_patterns",
    "example2_pattern",
    "kk_tgraph",
    "example3_gtgraphs",
    "fk_forest",
    "fk_pattern",
    "tprime_tree",
    "tprime_pattern",
    "hard_clique_tree",
    "hard_clique_pattern",
    "chain_tree",
    "chain_pattern",
    "fk_data_graph",
    "tprime_data_graph",
    "clique_query_data_graph",
    "random_wd_tree",
    "random_wd_forest",
    "random_wd_pattern",
    "random_union_pattern",
    "random_host_graph",
    "plant_clique",
    "clique_instance",
    "has_clique_bruteforce",
]
