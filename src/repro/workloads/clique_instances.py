"""Instances of the CLIQUE problem for the hardness experiments.

Theorem 2 reduces p-CLIQUE to ``p-co-wdEVAL``; these helpers generate the
CLIQUE side of that reduction: random graphs with and without planted
cliques, both as networkx graphs (the reduction machinery's native format)
and as RDF graphs (for the direct ``Q_k`` experiments).
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Optional, Tuple

import networkx as nx

__all__ = [
    "random_host_graph",
    "plant_clique",
    "clique_instance",
    "has_clique_bruteforce",
]


def random_host_graph(num_nodes: int, edge_probability: float, seed: Optional[int] = None) -> nx.Graph:
    """An Erdős–Rényi random graph ``G(n, p)``."""
    return nx.gnp_random_graph(num_nodes, edge_probability, seed=seed)


def plant_clique(graph: nx.Graph, size: int, seed: Optional[int] = None) -> Tuple[nx.Graph, Tuple[int, ...]]:
    """Plant a clique of the given size into a copy of *graph*.

    Returns the new graph and the members of the planted clique.
    """
    if size > graph.number_of_nodes():
        raise ValueError("cannot plant a clique larger than the graph")
    rng = random.Random(seed)
    members = tuple(sorted(rng.sample(sorted(graph.nodes()), size)))
    planted = graph.copy()
    for u, v in combinations(members, 2):
        planted.add_edge(u, v)
    return planted, members


def clique_instance(
    num_nodes: int,
    clique_size: int,
    edge_probability: float = 0.3,
    planted: bool = True,
    seed: Optional[int] = None,
) -> Tuple[nx.Graph, int]:
    """A CLIQUE instance ``(H, k)``; with ``planted=True`` the answer is
    guaranteed to be "yes" (a k-clique is planted), otherwise the instance is
    a plain random graph (usually a "no" instance for sparse probabilities)."""
    host = random_host_graph(num_nodes, edge_probability, seed=seed)
    if planted:
        host, _ = plant_clique(host, clique_size, seed=seed)
    return host, clique_size


def has_clique_bruteforce(graph: nx.Graph, size: int) -> bool:
    """Reference decision procedure for CLIQUE (used to validate the reduction).

    Uses networkx's clique enumeration on small graphs.
    """
    if size <= 1:
        return graph.number_of_nodes() >= size
    if size == 2:
        return graph.number_of_edges() > 0
    for clique in nx.find_cliques(graph):
        if len(clique) >= size:
            return True
    return False
