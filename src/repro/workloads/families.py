"""The query families used in the paper, as generators.

Every worked example of the paper is reproduced here programmatically:

* :func:`example1_patterns` — the patterns ``P1`` (well-designed) and ``P2``
  (not well-designed) of Example 1;
* :func:`example2_pattern` — the UNION pattern ``P`` of Example 2 whose
  ``wdpf`` is ``{T1, T2}``;
* :func:`kk_tgraph` — the clique t-graph ``K_k(?o1, ..., ?ok)``;
* :func:`example3_gtgraphs` — the generalised t-graphs ``(S, X)`` and
  ``(S', X)`` of Figure 1 / Example 3;
* :func:`fk_forest` / :func:`fk_pattern` — the forest ``F_k = {T1, T2, T3}``
  of Figure 2 and Examples 4–5 (domination width 1, local width ``k − 1``);
* :func:`tprime_tree` / :func:`tprime_pattern` — the UNION-free family
  ``T'_k`` of Section 3.2 (branch treewidth 1, not locally tractable);
* :func:`hard_clique_tree` / :func:`hard_clique_pattern` — a family of
  *unbounded* branch treewidth (hence unbounded domination width), the
  workload of the hardness experiments;
* :func:`chain_tree` / :func:`chain_pattern` — a plain OPT chain (bounded
  everything), used as a control;
* data-graph generators tailored to those families.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..hom.tgraph import GeneralizedTGraph, TGraph
from ..patterns.forest import WDPatternForest
from ..patterns.tree import WDPatternTree
from ..rdf.generators import random_graph
from ..rdf.graph import RDFGraph
from ..rdf.namespace import EX
from ..rdf.terms import IRI
from ..rdf.triples import Triple
from ..sparql.algebra import GraphPattern, conj, opt_chain, tp, union_of
from ..sparql.parser import parse_pattern

__all__ = [
    "example1_patterns",
    "example2_pattern",
    "kk_tgraph",
    "example3_gtgraphs",
    "fk_forest",
    "fk_pattern",
    "tprime_tree",
    "tprime_pattern",
    "hard_clique_tree",
    "hard_clique_pattern",
    "chain_tree",
    "chain_pattern",
    "fk_data_graph",
    "tprime_data_graph",
    "clique_query_data_graph",
]


#: Predicate IRIs shared by the family queries and their data generators so
#: that generated data actually matches the queries.
P_PRED = EX.term("p").value
Q_PRED = EX.term("q").value
R_PRED = EX.term("r").value


# ---------------------------------------------------------------------------
# Examples 1-3
# ---------------------------------------------------------------------------


def example1_patterns() -> Tuple[GraphPattern, GraphPattern]:
    """The patterns ``P1`` (well-designed) and ``P2`` (not) of Example 1."""
    p1 = parse_pattern(
        "(((?x p ?y) OPT (?z q ?x)) OPT ((?y r ?o1) AND (?o1 r ?o2)))"
    )
    p2 = parse_pattern(
        "(((?x p ?y) OPT (?z q ?x)) OPT ((?y r ?z) AND (?z r ?o2)))"
    )
    return p1, p2


def example2_pattern(k: int = 2) -> GraphPattern:
    """The pattern ``P`` of Example 2: ``P1 UNION ((?x,p,?y) OPT ((?z,q,?x) AND (?w,q,?z)))``.

    For ``k = 2`` its ``wdpf`` is exactly ``{T1, T2}`` of Figure 2.
    """
    p1 = opt_chain(
        tp("?x", P_PRED, "?y").opt(tp("?z", Q_PRED, "?x")),
        conj([tp("?y", R_PRED, "?o1")] + [tp(s, p, o) for s, p, o in kk_tgraph(k)]),
    )
    p2 = tp("?x", P_PRED, "?y").opt(tp("?z", Q_PRED, "?x").and_(tp("?w", Q_PRED, "?z")))
    return p1.union(p2)


def kk_tgraph(k: int, prefix: str = "o", predicate: str | None = None) -> List[Tuple[str, str, str]]:
    """The clique t-graph ``K_k(?o1, ..., ?ok)`` of Example 3 as triple tuples.

    ``K_k := {(?oi, r, ?oj) | 1 ≤ i < j ≤ k}``.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if predicate is None:
        predicate = R_PRED
    return [
        (f"?{prefix}{i}", predicate, f"?{prefix}{j}")
        for i in range(1, k + 1)
        for j in range(i + 1, k + 1)
    ]


def example3_gtgraphs(k: int) -> Tuple[GeneralizedTGraph, GeneralizedTGraph]:
    """The generalised t-graphs ``(S, X)`` and ``(S', X)`` of Figure 1.

    ``X = {?x, ?y, ?z}``;
    ``S = {(?z,q,?x), (?x,p,?y), (?y,r,?o1)} ∪ K_k``;
    ``S' = S ∪ {(?y,r,?o), (?o,r,?o)}``.

    The paper shows ``ctw(S, X) = k − 1`` (S is a core whose Gaifman graph is
    the k-clique) while ``ctw(S', X) = 1`` and ``tw(S', X) = k − 1``.
    """
    if k < 2:
        raise ValueError("Example 3 requires k >= 2")
    base = [("?z", Q_PRED, "?x"), ("?x", P_PRED, "?y"), ("?y", R_PRED, "?o1")] + kk_tgraph(k)
    s = GeneralizedTGraph.of(base, ["x", "y", "z"])
    s_prime = GeneralizedTGraph.of(
        base + [("?y", R_PRED, "?o"), ("?o", R_PRED, "?o")], ["x", "y", "z"]
    )
    return s, s_prime


# ---------------------------------------------------------------------------
# Figure 2: the forest F_k of Examples 4-5
# ---------------------------------------------------------------------------


def fk_forest(k: int) -> WDPatternForest:
    """The wdPF ``F_k = {T1, T2, T3}`` of Figure 2.

    * ``T1``: root ``r1 = {(?x,p,?y)}`` with children
      ``n11 = {(?z,q,?x)}`` and ``n12 = {(?y,r,?o1)} ∪ K_k``;
    * ``T2``: root ``r2 = {(?x,p,?y)}`` with child
      ``n2 = {(?z,q,?x), (?w,q,?z)}``;
    * ``T3``: root ``r3 = {(?x,p,?y), (?z,q,?x)}`` with child
      ``n3 = {(?y,r,?o), (?o,r,?o)}``.

    Example 5 shows ``dw(F_k) = 1`` for every ``k ≥ 2`` even though the class
    is not locally tractable (node ``n12`` has local width ``k − 1``).
    """
    if k < 2:
        raise ValueError("the F_k family requires k >= 2")
    t1 = WDPatternTree.from_node_specs(
        [
            (None, [("?x", P_PRED, "?y")]),
            (0, [("?z", Q_PRED, "?x")]),
            (0, [("?y", R_PRED, "?o1")] + kk_tgraph(k)),
        ]
    )
    t2 = WDPatternTree.from_node_specs(
        [
            (None, [("?x", P_PRED, "?y")]),
            (0, [("?z", Q_PRED, "?x"), ("?w", Q_PRED, "?z")]),
        ]
    )
    t3 = WDPatternTree.from_node_specs(
        [
            (None, [("?x", P_PRED, "?y"), ("?z", Q_PRED, "?x")]),
            (0, [("?y", R_PRED, "?o"), ("?o", R_PRED, "?o")]),
        ]
    )
    return WDPatternForest([t1, t2, t3])


def fk_pattern(k: int) -> GraphPattern:
    """A well-designed graph pattern whose ``wdpf`` is (isomorphic to) ``F_k``."""
    if k < 2:
        raise ValueError("the F_k family requires k >= 2")
    p1 = opt_chain(
        tp("?x", P_PRED, "?y").opt(tp("?z", Q_PRED, "?x")),
        conj([tp("?y", R_PRED, "?o1")] + [tp(*t) for t in kk_tgraph(k)]),
    )
    p2 = tp("?x", P_PRED, "?y").opt(tp("?z", Q_PRED, "?x").and_(tp("?w", Q_PRED, "?z")))
    p3 = (tp("?x", P_PRED, "?y").and_(tp("?z", Q_PRED, "?x"))).opt(
        tp("?y", R_PRED, "?o").and_(tp("?o", R_PRED, "?o"))
    )
    return union_of([p1, p2, p3])


# ---------------------------------------------------------------------------
# Section 3.2: the UNION-free family T'_k
# ---------------------------------------------------------------------------


def tprime_tree(k: int) -> WDPatternTree:
    """The wdPT ``T'_k`` of Section 3.2.

    Root ``{(?y, r, ?y)}`` with a single child
    ``{(?y, r, ?o1)} ∪ K_k(?o1, ..., ?ok)``.  Branch treewidth 1 (the branch
    t-graph's core collapses onto the self-loop) but local width ``k − 1``,
    so the family is tractable by Theorem 1 yet not locally tractable.
    """
    if k < 2:
        raise ValueError("the T'_k family requires k >= 2")
    return WDPatternTree.from_node_specs(
        [
            (None, [("?y", R_PRED, "?y")]),
            (0, [("?y", R_PRED, "?o1")] + kk_tgraph(k)),
        ]
    )


def tprime_pattern(k: int) -> GraphPattern:
    """The graph pattern ``(?y,r,?y) OPT ({(?y,r,?o1)} ∪ K_k)`` of Section 3.2."""
    if k < 2:
        raise ValueError("the T'_k family requires k >= 2")
    return tp("?y", R_PRED, "?y").opt(
        conj([tp("?y", R_PRED, "?o1")] + [tp(*t) for t in kk_tgraph(k)])
    )


# ---------------------------------------------------------------------------
# A family of unbounded domination width (the hardness workload)
# ---------------------------------------------------------------------------


def hard_clique_tree(k: int) -> WDPatternTree:
    """The tree ``Q_k``: root ``{(?x, p, ?y)}``, child ``{(?y,r,?o1)} ∪ K_k``.

    Unlike ``T'_k`` the root carries no self-loop, so the branch t-graph's
    clique cannot collapse: ``bw(Q_k) = dw(Q_k) = k − 1``.  The class
    ``{Q_k | k ≥ 2}`` therefore has unbounded domination width and is the
    workload of the Theorem 2 experiments: refuting ``µ ∈ ⟦Q_k⟧G`` amounts to
    finding a k-clique in the ``r``-edges of ``G``.
    """
    if k < 2:
        raise ValueError("the Q_k family requires k >= 2")
    return WDPatternTree.from_node_specs(
        [
            (None, [("?x", P_PRED, "?y")]),
            (0, [("?y", R_PRED, "?o1")] + kk_tgraph(k)),
        ]
    )


def hard_clique_pattern(k: int) -> GraphPattern:
    """The graph pattern of ``Q_k``."""
    if k < 2:
        raise ValueError("the Q_k family requires k >= 2")
    return tp("?x", P_PRED, "?y").opt(
        conj([tp("?y", R_PRED, "?o1")] + [tp(*t) for t in kk_tgraph(k)])
    )


# ---------------------------------------------------------------------------
# Control family: an OPT chain (bounded local width)
# ---------------------------------------------------------------------------


def chain_tree(depth: int) -> WDPatternTree:
    """An OPT chain of the given depth: node ``i`` holds ``(?x_i, p, ?x_{i+1})``.

    Locally tractable (local width 1), hence also of domination width 1; used
    as a control workload.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    specs: List[Tuple[Optional[int], List[Tuple[str, str, str]]]] = [
        (None, [("?x0", P_PRED, "?x1")])
    ]
    for i in range(1, depth):
        specs.append((i - 1, [(f"?x{i}", P_PRED, f"?x{i + 1}")]))
    return WDPatternTree.from_node_specs(specs)


def chain_pattern(depth: int) -> GraphPattern:
    """The OPT-chain graph pattern of :func:`chain_tree`.

    The OPT operators nest to the *right* (``t0 OPT (t1 OPT (t2 ...))``):
    left-nesting would re-use the fresh variable of one optional part outside
    its OPT subpattern and break well-designedness.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    result: GraphPattern = tp(f"?x{depth - 1}", P_PRED, f"?x{depth}")
    for i in range(depth - 2, -1, -1):
        result = tp(f"?x{i}", P_PRED, f"?x{i + 1}").opt(result)
    return result


# ---------------------------------------------------------------------------
# Data graphs tailored to the families
# ---------------------------------------------------------------------------


def fk_data_graph(
    num_nodes: int,
    num_triples: int,
    clique_size: int = 0,
    seed: Optional[int] = None,
) -> RDFGraph:
    """A random data graph over predicates ``p``, ``q``, ``r`` for the ``F_k``
    and ``T'_k`` families, optionally containing an ``r``-clique of the given
    size (which makes the OPT extensions of the clique-shaped children
    succeed)."""
    rng = random.Random(seed)
    graph = random_graph(num_nodes, num_triples, predicates=("p", "q", "r"), seed=seed)
    if clique_size > 1:
        members = [EX.term(f"clique{i}") for i in range(clique_size)]
        r = EX.term("r")
        for i, u in enumerate(members):
            for j, v in enumerate(members):
                if i != j:
                    graph.add(Triple(u, r, v))
        # Attach the clique to a random existing node with an r-edge so that
        # the (?y, r, ?o1) connector triple can be satisfied.
        anchor = EX.term(f"node{rng.randrange(num_nodes)}")
        graph.add(Triple(anchor, r, members[0]))
    return graph


def tprime_data_graph(
    num_nodes: int,
    num_triples: int,
    with_self_loop: bool = True,
    seed: Optional[int] = None,
) -> RDFGraph:
    """A data graph for the ``T'_k`` family: random ``r``-edges plus an
    optional self-loop (the root pattern ``(?y, r, ?y)`` needs one)."""
    graph = random_graph(num_nodes, num_triples, predicates=("r",), seed=seed)
    if with_self_loop:
        loop_node = EX.term("loop")
        graph.add(Triple(loop_node, EX.term("r"), loop_node))
    return graph


def clique_query_data_graph(
    host_graph: "object",
    anchor_edges: int = 1,
    seed: Optional[int] = None,
) -> RDFGraph:
    """Encode a networkx graph as the ``r``-edges of an RDF graph and add a
    ``p``-edge anchor so that the root of ``Q_k`` matches.

    Returns a graph in which ``µ = {?x → a, ?y → b}`` (the anchor edge) is a
    solution of ``Q_k`` iff the host graph has no k-clique reachable from the
    anchor — the membership question the hardness experiments ask.
    """
    import networkx as nx

    from ..rdf.generators import from_networkx

    if not isinstance(host_graph, nx.Graph):
        raise TypeError("clique_query_data_graph expects a networkx Graph")
    graph = from_networkx(host_graph, predicate="r")
    rng = random.Random(seed)
    nodes = sorted(host_graph.nodes())
    anchor_subject = EX.term("anchor")
    p = EX.term("p")
    r = EX.term("r")
    for index in range(anchor_edges):
        target_node = nodes[index % len(nodes)] if nodes else 0
        target = EX.term(f"v{target_node}")
        graph.add(Triple(anchor_subject, p, target))
        # The connector (?y, r, ?o1) needs an r-edge out of the anchor target;
        # it already has one whenever the host node has a neighbour.
    return graph
