"""Random well-designed pattern generators.

Random wdPTs are generated directly as trees (which guarantees
well-designedness, NR normal form and the variable-connectivity condition by
construction) and can then be serialised back into AND/OPT graph patterns.
They are used by the property-based tests (semantics equivalence across the
three engines, Proposition 5) and by the E6 benchmark.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..patterns.build import pattern_of_forest, pattern_of_tree
from ..patterns.forest import WDPatternForest
from ..patterns.tree import WDPatternTree
from ..rdf.namespace import EX
from ..sparql.algebra import GraphPattern
from ..hom.tgraph import TGraph

#: Default predicate vocabulary, aligned with :mod:`repro.rdf.generators` so
#: that random patterns have matches in randomly generated graphs.
DEFAULT_PREDICATES = (EX.term("p").value, EX.term("q").value, EX.term("r").value)

__all__ = [
    "random_wd_tree",
    "random_wd_forest",
    "random_wd_pattern",
    "random_union_pattern",
]


def random_wd_tree(
    num_nodes: int = 4,
    max_triples_per_node: int = 2,
    max_fresh_vars_per_node: int = 2,
    predicates: Tuple[str, ...] = DEFAULT_PREDICATES,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> WDPatternTree:
    """A random wdPT in NR normal form.

    Each node introduces at least one fresh variable (which keeps the tree in
    NR normal form) and may only reuse variables occurring in its *parent's*
    label.  Because fresh variables are globally unique, every variable's
    occurrence set is then upward-closed towards its introducing node, which
    guarantees the variable-connectivity condition of wdPTs.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    rng = rng or random.Random(seed)
    var_counter = 0

    def fresh_var() -> str:
        nonlocal var_counter
        var_counter += 1
        return f"?v{var_counter}"

    labels: Dict[int, TGraph] = {}
    parent: Dict[int, int] = {}
    node_vars: Dict[int, List[str]] = {}

    for node in range(num_nodes):
        if node == 0:
            reusable: List[str] = []
        else:
            parent_node = rng.randrange(node)
            parent[node] = parent_node
            reusable = list(node_vars[parent_node])
        fresh = [fresh_var() for _ in range(rng.randint(1, max_fresh_vars_per_node))]
        usable = reusable + fresh
        triples: List[Tuple[str, str, str]] = []
        # The first triple links the node to its parent's variables whenever
        # possible and always uses the first fresh variable, so the node both
        # depends on its branch and satisfies NR normal form.
        first_subject = rng.choice(reusable) if reusable else rng.choice(fresh)
        triples.append((first_subject, rng.choice(predicates), fresh[0]))
        for _ in range(rng.randint(0, max_triples_per_node - 1)):
            triples.append((rng.choice(usable), rng.choice(predicates), rng.choice(usable)))
        labels[node] = TGraph.of(*triples)
        used_terms = {term for t in triples for term in t}
        node_vars[node] = [v for v in usable if v in used_terms]

    tree = WDPatternTree(labels, parent, root=0)
    return tree.to_nr_normal_form()


def random_wd_forest(
    num_trees: int = 2,
    num_nodes: int = 3,
    seed: Optional[int] = None,
    **tree_kwargs,
) -> WDPatternForest:
    """A random wdPF made of independent random wdPTs."""
    rng = random.Random(seed)
    trees = [
        random_wd_tree(num_nodes=num_nodes, rng=rng, **tree_kwargs) for _ in range(num_trees)
    ]
    return WDPatternForest(trees)


def random_wd_pattern(
    num_nodes: int = 4,
    seed: Optional[int] = None,
    **tree_kwargs,
) -> GraphPattern:
    """A random UNION-free well-designed graph pattern."""
    return pattern_of_tree(random_wd_tree(num_nodes=num_nodes, seed=seed, **tree_kwargs))


def random_union_pattern(
    num_trees: int = 2,
    num_nodes: int = 3,
    seed: Optional[int] = None,
    **tree_kwargs,
) -> GraphPattern:
    """A random well-designed pattern with a top-level UNION."""
    return pattern_of_forest(
        random_wd_forest(num_trees=num_trees, num_nodes=num_nodes, seed=seed, **tree_kwargs)
    )
