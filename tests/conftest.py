"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.rdf import RDFGraph, Triple
from repro.rdf.namespace import EX


@pytest.fixture
def small_graph() -> RDFGraph:
    """A tiny hand-written RDF graph used across several test modules.

    Edges (subject --predicate--> object)::

        a --p--> b      b --q--> c      c --r--> a
        a --p--> c      b --q--> a      d --r--> d
    """
    return RDFGraph(
        [
            Triple.of(EX.a, EX.p, EX.b),
            Triple.of(EX.a, EX.p, EX.c),
            Triple.of(EX.b, EX.q, EX.c),
            Triple.of(EX.b, EX.q, EX.a),
            Triple.of(EX.c, EX.r, EX.a),
            Triple.of(EX.d, EX.r, EX.d),
        ]
    )


def ex(name: str) -> str:
    """Shorthand for the example-namespace IRI string."""
    return EX.term(name).value
