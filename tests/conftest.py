"""Shared fixtures and helpers for the test suite.

Two pieces of harness configuration live here alongside the fixtures:

* a **per-test watchdog**: every test gets a hard wall-clock limit
  (``REPRO_TEST_TIMEOUT`` seconds, default 180) enforced with
  :func:`faulthandler.dump_traceback_later` — a hung test (e.g. a worker
  pool waiting on a task a killed worker will never finish) dumps the
  tracebacks of every thread and aborts the process instead of hanging CI
  forever (no ``pytest-timeout`` dependency needed);
* a **start-method override**: ``REPRO_START_METHOD=fork|spawn|forkserver``
  pins the multiprocessing start method for the whole run, which is how CI
  exercises the fault-injection suite under ``fork`` explicitly.
"""

from __future__ import annotations

import faulthandler
import multiprocessing
import os

import pytest

from repro.rdf import RDFGraph, Triple
from repro.rdf.namespace import EX

_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "180"))


def pytest_configure(config) -> None:
    method = os.environ.get("REPRO_START_METHOD")
    if method:
        multiprocessing.set_start_method(method, force=True)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_protocol(item, nextitem):
    """Hard per-test wall-clock limit (see the module docstring)."""
    if _TEST_TIMEOUT > 0 and faulthandler.is_enabled():
        faulthandler.dump_traceback_later(_TEST_TIMEOUT, exit=True)
        try:
            return (yield)
        finally:
            faulthandler.cancel_dump_traceback_later()
    return (yield)


@pytest.fixture
def small_graph() -> RDFGraph:
    """A tiny hand-written RDF graph used across several test modules.

    Edges (subject --predicate--> object)::

        a --p--> b      b --q--> c      c --r--> a
        a --p--> c      b --q--> a      d --r--> d
    """
    return RDFGraph(
        [
            Triple.of(EX.a, EX.p, EX.b),
            Triple.of(EX.a, EX.p, EX.c),
            Triple.of(EX.b, EX.q, EX.c),
            Triple.of(EX.b, EX.q, EX.a),
            Triple.of(EX.c, EX.r, EX.a),
            Triple.of(EX.d, EX.r, EX.d),
        ]
    )


def ex(name: str) -> str:
    """Shorthand for the example-namespace IRI string."""
    return EX.term(name).value
